"""ConCH hyper-parameters (paper §V-C defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class ConCHConfig:
    """Everything that controls a ConCH run.

    Paper defaults (§V-C): learning rate 0.001, dropout 0.5, ℓ2 penalty
    0.0005, early-stopping patience 100, output dim 128, k and L per
    dataset, λ tuned over {0.001, 0.01, 0.1, 1}.

    The scale-sensitive defaults here (dims, epochs) are tuned for the
    synthetic CPU-scale datasets; shapes match the paper.
    """

    # Model dimensions.
    hidden_dim: int = 64
    out_dim: int = 64
    context_dim: int = 64        # initial context feature dimensionality
    attention_dim: int = 32      # hidden width of the semantic-attention MLP
    classifier_hidden: int = 32  # hidden width of the 2-layer MLP head

    # Structure.
    k: int = 5                   # top-k neighbors kept per node (§IV-A)
    num_layers: int = 1          # bipartite-conv layers L
    # "pathsim" (paper) | "random" (ConCH_rd) | "hetesim" | "joinsim" |
    # "cosine" (alternative ranking functions, filtering ablation).
    neighbor_strategy: str = "pathsim"
    use_contexts: bool = True    # False => ConCH_nc (direct neighbor aggregation)
    use_attention: bool = True   # False => ConCH_ew (equal meta-path weights)
    # The paper's Eqs. 4-5 use the sum aggregator; at this reproduction's
    # scale the un-normalized sum destabilizes training (feature scales
    # grow with the context count), so the default is the degree-normalized
    # mean.  Both are implemented; benchmarks/test_ablation.py compares them.
    aggregator: str = "mean"     # "mean" (default here) | "sum" (paper text)
    # Algorithm 1 updates contexts before objects, so the object update
    # consumes the fresh context embeddings ("gauss_seidel").  "jacobi" is
    # the literal Eq.-5 superscript reading, kept for the ablation bench.
    update_order: str = "gauss_seidel"  # "gauss_seidel" | "jacobi"
    max_instances: int = 16      # per-pair cap in context enumeration

    # metapath2vec pretraining for the initial context features (§IV-B).
    embed_num_walks: int = 10
    embed_walk_length: int = 40
    embed_window: int = 5
    embed_epochs: int = 4

    # Substrate cache management (repro.hin.cache).  None = leave the
    # shared engine's current configuration untouched; a byte budget
    # bounds resident cached products/views (LRU eviction), a cache dir
    # enables the cross-run disk-backed product store.
    cache_memory_budget: Optional[int] = None
    cache_dir: Optional[str] = None

    # Self-supervision.
    lambda_ss: float = 0.3       # λ in Eq. 14; 0 disables (ConCH_su)
    training_mode: str = "multitask"  # "multitask" | "supervised" | "finetune"

    # Optimization.
    lr: float = 0.005
    dropout: float = 0.5
    weight_decay: float = 0.0005
    epochs: int = 300
    patience: int = 100
    pretrain_epochs: int = 100   # only used by training_mode="finetune"
    seed: int = 0

    def __post_init__(self):
        from repro.hin.neighbors import NeighborFilter

        if self.neighbor_strategy not in NeighborFilter.STRATEGIES:
            raise ValueError(f"unknown neighbor strategy {self.neighbor_strategy!r}")
        if self.aggregator not in ("sum", "mean"):
            raise ValueError(f"unknown aggregator {self.aggregator!r}")
        if self.update_order not in ("gauss_seidel", "jacobi"):
            raise ValueError(f"unknown update order {self.update_order!r}")
        if self.training_mode not in ("multitask", "supervised", "finetune"):
            raise ValueError(f"unknown training mode {self.training_mode!r}")
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.lambda_ss < 0:
            raise ValueError(f"lambda_ss must be >= 0, got {self.lambda_ss}")
        if self.cache_memory_budget is not None and self.cache_memory_budget < 0:
            raise ValueError(
                f"cache_memory_budget must be >= 0 or None, "
                f"got {self.cache_memory_budget}"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")

    def with_overrides(self, **kwargs) -> "ConCHConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)

    def fingerprint(self, stage: str = "fit") -> str:
        """Stable hash of the fields a pipeline stage reads.

        Stage-scoped and cumulative (``"fit"`` covers every field):
        combined with the HIN content hash it forms the content key of
        that stage's artifact — see :mod:`repro.api.artifacts`.
        """
        from repro.api.artifacts import config_fingerprint

        return config_fingerprint(self, stage)
