"""Prediction-confidence calibration.

Semi-supervised GNNs trained on 2% labels are routinely over-confident;
a downstream user acting on ConCH's softmax scores (Eq. 9) needs them to
mean what they say.  This module provides the standard post-hoc remedy:

- :func:`expected_calibration_error` / :func:`max_calibration_error` —
  the gap between confidence and accuracy, binned by confidence.
- :class:`TemperatureScaler` — single-parameter temperature scaling
  (Guo et al., ICML 2017): rescale logits by ``1/T`` with ``T`` chosen to
  minimize validation NLL.  Monotone per-class, so accuracy and argmax
  predictions are unchanged; only the confidence sharpness moves.
- :func:`reliability_table` — the per-bin diagnostic behind reliability
  diagrams.

Works on raw logits or on probability rows (``log p`` is a valid logit
representative for temperature scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import optimize


def _stable_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def _validate_probabilities(probabilities: np.ndarray, labels: np.ndarray):
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.ndim != 2:
        raise ValueError(f"probabilities must be 2-D, got {probabilities.shape}")
    if labels.shape != (probabilities.shape[0],):
        raise ValueError(
            f"labels {labels.shape} do not match probabilities "
            f"{probabilities.shape}"
        )
    if probabilities.shape[0] == 0:
        raise ValueError("empty probability matrix")
    return probabilities, labels


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    accuracy: float


def reliability_table(
    probabilities: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> List[ReliabilityBin]:
    """Equal-width confidence bins with per-bin accuracy.

    Empty bins are kept (count 0, confidence/accuracy 0) so callers can
    rely on exactly ``num_bins`` rows.
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    probabilities, labels = _validate_probabilities(probabilities, labels)
    confidences = probabilities.max(axis=1)
    predictions = probabilities.argmax(axis=1)
    correct = (predictions == labels).astype(np.float64)

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins: List[ReliabilityBin] = []
    for i in range(num_bins):
        lower, upper = edges[i], edges[i + 1]
        # Left-closed bins; the last bin includes confidence == 1.
        if i == num_bins - 1:
            mask = (confidences >= lower) & (confidences <= upper)
        else:
            mask = (confidences >= lower) & (confidences < upper)
        count = int(mask.sum())
        bins.append(
            ReliabilityBin(
                lower=float(lower),
                upper=float(upper),
                count=count,
                mean_confidence=float(confidences[mask].mean()) if count else 0.0,
                accuracy=float(correct[mask].mean()) if count else 0.0,
            )
        )
    return bins


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> float:
    """ECE: count-weighted mean |confidence − accuracy| over bins."""
    bins = reliability_table(probabilities, labels, num_bins)
    total = sum(b.count for b in bins)
    return float(
        sum(
            b.count * abs(b.mean_confidence - b.accuracy) for b in bins
        )
        / total
    )


def max_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, num_bins: int = 10
) -> float:
    """MCE: worst per-bin |confidence − accuracy| (non-empty bins)."""
    bins = reliability_table(probabilities, labels, num_bins)
    gaps = [abs(b.mean_confidence - b.accuracy) for b in bins if b.count]
    return float(max(gaps)) if gaps else 0.0


class TemperatureScaler:
    """Single-temperature post-hoc calibration.

    ``fit`` selects ``T > 0`` minimizing the negative log-likelihood of
    ``softmax(logits / T)`` on held-out (validation) data;
    ``transform`` applies it.  Argmax predictions are invariant to ``T``.
    """

    def __init__(self):
        self.temperature: float = 1.0
        self._fitted = False

    @staticmethod
    def _nll(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
        probs = _stable_softmax(logits / temperature)
        picked = probs[np.arange(labels.shape[0]), labels]
        return float(-np.mean(np.log(np.maximum(picked, 1e-12))))

    def fit(self, logits: np.ndarray, labels: np.ndarray) -> "TemperatureScaler":
        """Choose the temperature on validation logits + labels."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2 or labels.shape != (logits.shape[0],):
            raise ValueError(
                f"need (n, r) logits and (n,) labels, got {logits.shape}, "
                f"{labels.shape}"
            )
        if logits.shape[0] == 0:
            raise ValueError("cannot fit on empty validation data")
        result = optimize.minimize_scalar(
            lambda log_t: self._nll(logits, labels, float(np.exp(log_t))),
            bounds=(-4.0, 4.0),
            method="bounded",
        )
        self.temperature = float(np.exp(result.x))
        self._fitted = True
        return self

    def fit_from_probabilities(
        self, probabilities: np.ndarray, labels: np.ndarray
    ) -> "TemperatureScaler":
        """Fit when only softmax outputs are available (uses ``log p``)."""
        probabilities, labels = _validate_probabilities(probabilities, labels)
        return self.fit(np.log(np.maximum(probabilities, 1e-12)), labels)

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for new logits."""
        if not self._fitted:
            raise RuntimeError("TemperatureScaler.fit must be called first")
        logits = np.asarray(logits, dtype=np.float64)
        return _stable_softmax(logits / self.temperature)

    def transform_probabilities(self, probabilities: np.ndarray) -> np.ndarray:
        """Calibrated probabilities from uncalibrated softmax outputs."""
        if not self._fitted:
            raise RuntimeError("TemperatureScaler.fit must be called first")
        probabilities = np.asarray(probabilities, dtype=np.float64)
        return _stable_softmax(
            np.log(np.maximum(probabilities, 1e-12)) / self.temperature
        )
