"""ConCH: the paper's primary contribution (§IV).

Pipeline (Fig. 2):

1. :func:`~repro.core.trainer.prepare_conch_data` — preprocessing: PathSim
   top-k neighbor filtering, context enumeration, metapath2vec-based
   context features, and the per-meta-path object/context bipartite
   graphs.  This mirrors the paper's offline steps x–z.
2. :class:`~repro.core.model.ConCH` — the neural model: per-meta-path
   mutual object/context updates (:class:`~repro.core.bipartite_conv.BipartiteConv`,
   Eqs. 4–5), semantic attention fusion
   (:class:`~repro.core.semantic_attention.SemanticAttention`, Eqs. 6–8),
   a 2-layer MLP classifier (Eq. 9) and a DGI-style discriminator
   (:class:`~repro.core.discriminator.Discriminator`, Eqs. 12–13).
3. :class:`~repro.core.trainer.ConCHTrainer` — multi-task optimization
   ``L = L_sup + λ·L_ss`` (Eq. 14) with Adam, ℓ2 regularization and
   patience-based early stopping on validation accuracy.

Ablation variants (§V-E) live in :mod:`~repro.core.variants`:
``nc`` (no contexts), ``rd`` (random-k neighbors), ``su`` (supervised
only), ``ft`` (pretrain + finetune), ``ew`` (equal meta-path weights).
"""

from repro.core.config import ConCHConfig
from repro.core.context_features import build_context_features, path_instance_embedding
from repro.core.bipartite_conv import BipartiteConv, NeighborConv
from repro.core.semantic_attention import SemanticAttention
from repro.core.discriminator import Discriminator, shuffle_features
from repro.core.model import ConCH
from repro.core.trainer import ConCHTrainer, ConCHData, MetaPathData, prepare_conch_data
from repro.core.variants import VARIANTS, variant_config
from repro.core.classifier import ConCHClassifier
from repro.core.explain import Explanation, explain_node
from repro.core.serialize import load_model, save_model
from repro.core.minibatch import MiniBatchConCHTrainer
from repro.core.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    max_calibration_error,
    reliability_table,
)

__all__ = [
    "ConCHConfig",
    "build_context_features",
    "path_instance_embedding",
    "BipartiteConv",
    "NeighborConv",
    "SemanticAttention",
    "Discriminator",
    "shuffle_features",
    "ConCH",
    "ConCHTrainer",
    "ConCHData",
    "MetaPathData",
    "prepare_conch_data",
    "VARIANTS",
    "variant_config",
    "ConCHClassifier",
    "Explanation",
    "explain_node",
    "save_model",
    "load_model",
    "MiniBatchConCHTrainer",
    "TemperatureScaler",
    "expected_calibration_error",
    "max_calibration_error",
    "reliability_table",
]
