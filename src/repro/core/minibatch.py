"""Mini-batch ConCH training.

The paper trains full-batch and notes the per-meta-path computations are
independent, so ConCH "can be easily parallelized" (§IV-E).  The other
lever for scale is batching over *objects*: because the top-k filter
bounds every object's contexts by ``k`` and every context touches at most
two objects, slicing the bipartite graph to a batch of objects keeps at
most ``k·|batch|`` contexts — the working set is O(batch), not O(n).

:class:`MiniBatchConCHTrainer` trains on shuffled object batches:

- the supervised loss uses the labeled nodes inside the batch,
- the self-supervised loss contrasts the batch against its own summary
  vector (a minibatch estimate of Eq. 11's global mean),
- contexts whose second endpoint falls outside the batch still aggregate
  it — the operator rows are sliced, not the context set — so no
  boundary information is lost.

Inference always runs full-batch (deterministic, and cheap relative to
training).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, no_grad
from repro.core.config import ConCHConfig
from repro.core.discriminator import shuffle_features
from repro.core.model import ConCH
from repro.core.trainer import ConCHData
from repro.data.splits import Split
from repro.eval.metrics import macro_f1, micro_f1
from repro.eval.timing import ConvergenceRecorder
from repro.hin.cache import LRUByteCache, resident_nbytes
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.schedulers import EarlyStopping

#: Default byte budget for a trainer's private operator-slice cache.
DEFAULT_SLICE_CACHE_BUDGET = 64 * 1024 * 1024


def slice_operator(
    operator: sp.csr_matrix, batch: np.ndarray, square: bool
) -> sp.csr_matrix:
    """Restrict an operator to a batch of object rows.

    For the bipartite incidence (``square=False``) only rows are sliced:
    every context incident to a batch object is kept, including ones whose
    other endpoint is outside the batch.  For the neighbor adjacency of
    the ``ConCH_nc`` mode (``square=True``) both axes are sliced, keeping
    within-batch edges only.
    """
    sliced = operator.tocsr()[batch]
    if square:
        sliced = sliced.tocsc()[:, batch].tocsr()
    return sliced


def iterate_batches(
    num_objects: int, batch_size: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Shuffled index batches covering every object exactly once."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = rng.permutation(num_objects)
    for start in range(0, num_objects, batch_size):
        yield order[start: start + batch_size]


class MiniBatchConCHTrainer:
    """Trains ConCH on object mini-batches.

    Semantics match :class:`~repro.core.trainer.ConCHTrainer` with
    ``training_mode`` restricted to ``"multitask"`` and ``"supervised"``
    (fine-tuning's pretrain stage is full-batch by construction; use the
    full-batch trainer for ``ConCH_ft``).

    Parameters
    ----------
    data:
        Preprocessed inputs from
        :func:`~repro.core.trainer.prepare_conch_data`.
    config:
        Hyper-parameters.
    batch_size:
        Objects per batch; ``None`` or ``>= n`` degenerates to full-batch.
    slice_cache:
        The :class:`~repro.hin.cache.LRUByteCache` holding row-sliced
        operators, keyed by (tower, orientation, batch digest) — the
        engine cache tier extended to minibatch slices.  Pass a shared
        instance to pool slices across trainers (e.g. a seed sweep over
        the same data); ``None`` builds a private cache with a
        ``DEFAULT_SLICE_CACHE_BUDGET`` byte budget.  Re-sliced or
        cached, the operators are identical objects row-for-row, so
        training is bit-exact either way.
    """

    def __init__(
        self,
        data: ConCHData,
        config: ConCHConfig,
        batch_size: Optional[int] = None,
        slice_cache: Optional[LRUByteCache] = None,
    ):
        if config.training_mode == "finetune":
            raise ValueError(
                "mini-batch training supports multitask/supervised modes; "
                "use ConCHTrainer for the finetune ablation"
            )
        self.data = data
        self.config = config
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size if batch_size is not None else data.num_objects
        self.rng = np.random.default_rng(config.seed + 1)
        self.model = ConCH(
            feature_dim=data.feature_dim,
            context_dim=data.context_dim,
            num_metapaths=len(data.metapath_data),
            num_classes=data.num_classes,
            config=config,
            rng=np.random.default_rng(config.seed + 2),
        )
        self.recorder = ConvergenceRecorder(method="ConCH-minibatch")
        self._full_operators = [
            m.incidence if config.use_contexts else m.neighbor_adj
            for m in data.metapath_data
        ]
        self._context_tensors = [
            Tensor(m.context_features) for m in data.metapath_data
        ]
        self._slice_cache = (
            slice_cache
            if slice_cache is not None
            else LRUByteCache(budget=DEFAULT_SLICE_CACHE_BUDGET)
        )
        # Content tokens make slice keys safe in a *shared* cache:
        # trainers over the same data hit each other's slices, trainers
        # over different graphs can never collide.  O(nnz) once.
        self._operator_tokens = []
        for op in self._full_operators:
            op = op.tocsr()
            digest = hashlib.sha1()
            digest.update(np.int64(op.shape[1]).tobytes())
            digest.update(np.asarray(op.indptr).tobytes())
            digest.update(np.asarray(op.indices).tobytes())
            digest.update(np.asarray(op.data).tobytes())
            self._operator_tokens.append(digest.hexdigest()[:16])

    # ------------------------------------------------------------------ #
    # Batch machinery
    # ------------------------------------------------------------------ #

    def _batch_inputs(
        self, batch: np.ndarray, features: np.ndarray
    ) -> Tuple[Tensor, List[sp.csr_matrix]]:
        square = not self.config.use_contexts
        # Slices are cached by exact batch content (row order matters:
        # the slice's rows follow the batch), so a repeated batch — the
        # full-batch degenerate case, curriculum replays, or a shared
        # cache across seed-sweep trainers — pays the CSR gather once.
        digest = hashlib.sha1(
            np.ascontiguousarray(batch, dtype=np.int64).tobytes()
        ).hexdigest()
        operators = []
        for index, op in enumerate(self._full_operators):
            key = (
                "minibatch-slice",
                self._operator_tokens[index],
                square,
                digest,
            )
            sliced = self._slice_cache.get(key)
            if sliced is None:
                sliced = slice_operator(op, batch, square)
                self._slice_cache.put(
                    key, sliced, nbytes=resident_nbytes(sliced)
                )
            operators.append(sliced)
        return Tensor(features[batch]), operators

    def _batch_loss(
        self, batch: np.ndarray, train_mask: np.ndarray
    ) -> Optional[Tensor]:
        """Multi-task loss on one batch; None if it has nothing to learn from."""
        use_ss = (
            self.config.training_mode == "multitask" and self.config.lambda_ss > 0
        )
        x, operators = self._batch_inputs(batch, self.data.features)
        labeled = np.flatnonzero(train_mask[batch])
        if labeled.size == 0 and not use_ss:
            return None
        z = self.model.embed(x, operators, self._context_tensors)
        total: Optional[Tensor] = None
        if labeled.size:
            logits = self.model.classify(z)
            total = cross_entropy(
                logits[labeled], self.data.labels[batch][labeled]
            )
        if use_ss and batch.size >= 2:
            shuffled = Tensor(
                shuffle_features(self.data.features[batch], self.rng)
            )
            z_neg = self.model.embed(
                shuffled, operators, self._context_tensors, record_attention=False
            )
            weighted = (
                self.model.self_supervised_loss(z, z_neg) * self.config.lambda_ss
            )
            total = weighted if total is None else total + weighted
        return total

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(self, split: Split, verbose: bool = False) -> "MiniBatchConCHTrainer":
        """Mini-batch epochs with full-batch validation early stopping."""
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        train_mask = np.zeros(self.data.num_objects, dtype=bool)
        train_mask[split.train] = True
        stopper = EarlyStopping(patience=self.config.patience, mode="max")
        self.recorder.start()
        for epoch in range(self.config.epochs):
            self.model.train()
            epoch_losses: List[float] = []
            for batch in iterate_batches(
                self.data.num_objects, self.batch_size, self.rng
            ):
                loss = self._batch_loss(batch, train_mask)
                if loss is None:
                    continue
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())

            val_metric = self.evaluate(split.val)["micro_f1"]
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            self.recorder.log(epoch, mean_loss, val_metric)
            if verbose and epoch % 20 == 0:
                print(
                    f"[minibatch] epoch {epoch:3d} loss {mean_loss:.4f} "
                    f"val micro-F1 {val_metric:.4f}"
                )
            if stopper.step(val_metric, self.model, epoch):
                break
        stopper.restore(self.model)
        return self

    # ------------------------------------------------------------------ #
    # Inference (full-batch)
    # ------------------------------------------------------------------ #

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        self.model.eval()
        with no_grad():
            logits, _ = self.model(
                Tensor(self.data.features),
                self._full_operators,
                self._context_tensors,
            )
        predictions = logits.argmax(axis=1)
        if indices is None:
            return predictions
        return predictions[np.asarray(indices)]

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        indices = np.asarray(indices)
        predictions = self.predict(indices)
        truth = self.data.labels[indices]
        return {
            "micro_f1": micro_f1(truth, predictions),
            "macro_f1": macro_f1(truth, predictions, self.data.num_classes),
        }
