"""Ablation variants of ConCH (§V-E).

Each variant is a config transformation over a base
:class:`~repro.core.config.ConCHConfig`:

========  =====================================================
variant   change
========  =====================================================
``full``  the complete model (paper's ConCH)
``nc``    no mp-contexts — direct neighbor aggregation
``rd``    random-k neighbor selection instead of PathSim top-k
``su``    supervised loss only (no self-supervision)
``ft``    pretrain on L_ss, then fine-tune on L_sup
``ew``    equal meta-path weights (no semantic attention)
========  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.config import ConCHConfig


def _full(config: ConCHConfig) -> ConCHConfig:
    return config


def _nc(config: ConCHConfig) -> ConCHConfig:
    return config.with_overrides(use_contexts=False)


def _rd(config: ConCHConfig) -> ConCHConfig:
    return config.with_overrides(neighbor_strategy="random")


def _su(config: ConCHConfig) -> ConCHConfig:
    return config.with_overrides(training_mode="supervised", lambda_ss=0.0)


def _ft(config: ConCHConfig) -> ConCHConfig:
    return config.with_overrides(training_mode="finetune")


def _ew(config: ConCHConfig) -> ConCHConfig:
    return config.with_overrides(use_attention=False)


VARIANTS: Dict[str, Callable[[ConCHConfig], ConCHConfig]] = {
    "full": _full,
    "nc": _nc,
    "rd": _rd,
    "su": _su,
    "ft": _ft,
    "ew": _ew,
}


def variant_config(name: str, base: ConCHConfig) -> ConCHConfig:
    """Config for a named ablation variant derived from ``base``."""
    key = name.lower()
    if key not in VARIANTS:
        raise KeyError(f"unknown ConCH variant {name!r}; known: {sorted(VARIANTS)}")
    return VARIANTS[key](base)
