"""ConCH model checkpointing.

Saves everything needed to reconstruct a trained model — the
:class:`~repro.core.config.ConCHConfig`, the constructor dimensions, and
every parameter array — into one ``.npz`` archive.  The preprocessed
:class:`~repro.core.trainer.ConCHData` is *not* stored (it is derived
from the dataset; regenerate it with the saved config's ``k``/strategy
to guarantee matching operators).

Example
-------
>>> save_model(trainer.model, "conch.npz")          # doctest: +SKIP
>>> model = load_model("conch.npz")                 # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import ConCHConfig
from repro.core.model import ConCH

#: Bumped when the archive layout changes.
FORMAT_VERSION = 1


def model_header(model: ConCH) -> dict:
    """Reconstruction metadata of a ConCH model: config + constructor dims.

    The first conv layer's input dims are the constructor's
    feature/context dims; in ConCH_nc mode (NeighborConv) there is no
    context input, but the constructor still needs a value — the config's
    context_dim matches what the trainer passed.
    """
    first = model.towers[0].layers[0]
    feature_dim = getattr(first, "object_in_dim", None)
    if feature_dim is None:
        feature_dim = first.in_dim
    context_dim = getattr(first, "context_in_dim", model.config.context_dim)
    return {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "feature_dim": int(feature_dim),
        "context_dim": int(context_dim),
        "num_metapaths": int(model.num_metapaths),
        "num_classes": int(model.num_classes),
    }


def model_param_arrays(model: ConCH) -> dict:
    """``param/<name>`` arrays of a model's state dict (archive payload)."""
    return {f"param/{name}": value for name, value in model.state_dict().items()}


def model_from_archive(header: dict, archive) -> ConCH:
    """Rebuild a ConCH model from its header + an open npz archive."""
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {version} not supported (expected {FORMAT_VERSION})"
        )
    config = ConCHConfig(**header["config"])
    model = ConCH(
        feature_dim=header["feature_dim"],
        context_dim=header["context_dim"],
        num_metapaths=header["num_metapaths"],
        num_classes=header["num_classes"],
        config=config,
        rng=np.random.default_rng(config.seed),
    )
    state = {
        key[len("param/"):]: archive[key]
        for key in archive.files
        if key.startswith("param/")
    }
    model.load_state_dict(state)
    model.eval()
    return model


def save_model(model: ConCH, path: Union[str, Path]) -> None:
    """Write a trained ConCH model to ``path`` (``.npz``)."""
    arrays = model_param_arrays(model)
    arrays["__header"] = np.array(json.dumps(model_header(model)))
    np.savez_compressed(Path(path), **arrays)


def load_model(path: Union[str, Path]) -> ConCH:
    """Reconstruct a ConCH model saved by :func:`save_model`."""
    archive = np.load(Path(path), allow_pickle=False)
    if "__header" not in archive.files:
        raise ValueError(f"{path} is not a ConCH checkpoint (missing header)")
    header = json.loads(str(archive["__header"]))
    return model_from_archive(header, archive)
