"""Context feature construction (§IV-B, Eqs. 2–3).

A path instance's embedding is the MEAN of the initial (metapath2vec)
embeddings of the nodes along it (Eq. 2); a context's initial feature is
the MEAN of its instances' embeddings (Eq. 3).  Learning context
embeddings from scratch would add ``O(num_contexts × dim)`` parameters;
this construction keeps them as fixed inputs.

The batch path (:func:`context_features_from_batch`) computes both means
fully vectorized from the enumeration kernel's flat
``(total_instances, path_len)`` id matrix: Eq. 2 is a sum of per-position
embedding gathers, Eq. 3 a contiguous segment sum (``np.add.reduceat``
over the batch's instance boundaries) — no per-instance Python.  A pair whose context is empty
(its cap emptied it, or it has no instances at all) falls back to the
mean of its endpoint embeddings; such pairs carry ``truncated=True``
whenever instances exist but were not kept, so the fallback is always
visible to callers.  The per-instance helpers
(:func:`path_instance_embedding`, :func:`context_embedding`) remain for
single-context consumers and as the reference the vectorized path is
tested against.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hin.bipartite import BipartiteGraph
from repro.hin.context import ContextBatch, MetaPathContext
from repro.hin.metapath import MetaPath


def path_instance_embedding(
    instance: tuple,
    metapath: MetaPath,
    embeddings: Dict[str, np.ndarray],
) -> np.ndarray:
    """Eq. 2: mean of the node embeddings along one path instance."""
    node_types = metapath.node_types
    if len(instance) != len(node_types):
        raise ValueError(
            f"instance length {len(instance)} != meta-path length {len(node_types)}"
        )
    vectors = [embeddings[t][node] for t, node in zip(node_types, instance)]
    return np.mean(vectors, axis=0)


def context_embedding(
    context: MetaPathContext,
    metapath: MetaPath,
    embeddings: Dict[str, np.ndarray],
    dim: int,
) -> np.ndarray:
    """Eq. 3: mean of the context's instance embeddings.

    An empty context falls back to the mean of the endpoint embeddings.
    """
    if context.instances:
        instance_vectors = [
            path_instance_embedding(instance, metapath, embeddings)
            for instance in context.instances
        ]
        return np.mean(instance_vectors, axis=0)
    endpoint_type = metapath.source_type
    table = embeddings[endpoint_type]
    return 0.5 * (table[context.u] + table[context.v])


def _check_embeddings(
    metapath: MetaPath, embeddings: Dict[str, np.ndarray]
) -> int:
    missing = [t for t in metapath.node_types if t not in embeddings]
    if missing:
        raise KeyError(f"missing embeddings for node types {missing}")
    return embeddings[metapath.source_type].shape[1]


def context_features_from_batch(
    batch: ContextBatch,
    embeddings: Dict[str, np.ndarray],
) -> np.ndarray:
    """Vectorized Eqs. 2–3 over a :class:`ContextBatch`.

    Returns the ``(num_pairs, dim)`` feature matrix; pairs with no kept
    instances get the endpoint-mean fallback.
    """
    metapath = batch.metapath
    dim = _check_embeddings(metapath, embeddings)
    node_types = metapath.node_types
    ids = batch.instance_ids
    total = ids.shape[0]

    # Eq. 2 for every instance at once: per-position embedding gathers.
    instance_embeddings = np.zeros((total, dim))
    for position, node_type in enumerate(node_types):
        instance_embeddings += embeddings[node_type][ids[:, position]]
    instance_embeddings /= len(node_types)

    # Eq. 3: segment means over each pair's instance block.  Instances
    # are grouped contiguously per pair (ContextBatch.indptr), so one
    # reduceat over the non-empty segment starts sums every block; an
    # empty segment contributes no rows to its successor's span.
    features = np.zeros((batch.num_pairs, dim))
    sizes = batch.sizes
    covered = sizes > 0
    nonempty = np.flatnonzero(covered)
    if nonempty.size:
        starts = batch.indptr[nonempty]
        sums = np.add.reduceat(instance_embeddings, starts, axis=0)
        features[nonempty] = sums / sizes[nonempty, None]

    if not covered.all():
        table = embeddings[metapath.source_type]
        empty = ~covered
        features[empty] = 0.5 * (
            table[batch.pairs[empty, 0]] + table[batch.pairs[empty, 1]]
        )
    return features


def build_context_features(
    bipartite: BipartiteGraph,
    embeddings: Dict[str, np.ndarray],
) -> np.ndarray:
    """Feature matrix ``(num_contexts, dim)`` for one bipartite graph.

    Uses the flat :class:`ContextBatch` fast path when the graph carries
    one (anything built by
    :func:`repro.hin.bipartite.build_bipartite_graph` with
    ``enumerate_instances=True``); falls back to the per-context loop for
    hand-assembled graphs that only hold a context list.

    Parameters
    ----------
    bipartite:
        Must have been built with ``enumerate_instances=True`` so the
        per-pair instances are available.
    embeddings:
        Per-type initial embeddings, e.g. from
        :func:`repro.embedding.metapath2vec.metapath2vec_embeddings`.
    """
    if bipartite.context_batch is not None:
        return context_features_from_batch(bipartite.context_batch, embeddings)
    contexts: Optional[List[MetaPathContext]] = bipartite.contexts
    if contexts is None:
        raise ValueError(
            "bipartite graph lacks enumerated contexts; build it with "
            "enumerate_instances=True"
        )
    metapath = bipartite.metapath
    dim = _check_embeddings(metapath, embeddings)
    features = np.zeros((bipartite.num_contexts, dim))
    for index, context in enumerate(contexts):
        features[index] = context_embedding(context, metapath, embeddings, dim)
    return features
