"""Context feature construction (§IV-B, Eqs. 2–3).

A path instance's embedding is the MEAN of the initial (metapath2vec)
embeddings of the nodes along it (Eq. 2); a context's initial feature is
the MEAN of its instances' embeddings (Eq. 3).  Learning context
embeddings from scratch would add ``O(num_contexts × dim)`` parameters;
this construction keeps them as fixed inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hin.bipartite import BipartiteGraph
from repro.hin.context import MetaPathContext
from repro.hin.metapath import MetaPath


def path_instance_embedding(
    instance: tuple,
    metapath: MetaPath,
    embeddings: Dict[str, np.ndarray],
) -> np.ndarray:
    """Eq. 2: mean of the node embeddings along one path instance."""
    node_types = metapath.node_types
    if len(instance) != len(node_types):
        raise ValueError(
            f"instance length {len(instance)} != meta-path length {len(node_types)}"
        )
    vectors = [embeddings[t][node] for t, node in zip(node_types, instance)]
    return np.mean(vectors, axis=0)


def context_embedding(
    context: MetaPathContext,
    metapath: MetaPath,
    embeddings: Dict[str, np.ndarray],
    dim: int,
) -> np.ndarray:
    """Eq. 3: mean of the context's instance embeddings.

    An empty context (possible if enumeration was capped at zero, which
    should not happen for retained pairs) falls back to the mean of the
    endpoint embeddings.
    """
    if context.instances:
        instance_vectors = [
            path_instance_embedding(instance, metapath, embeddings)
            for instance in context.instances
        ]
        return np.mean(instance_vectors, axis=0)
    endpoint_type = metapath.source_type
    table = embeddings[endpoint_type]
    return 0.5 * (table[context.u] + table[context.v])


def build_context_features(
    bipartite: BipartiteGraph,
    embeddings: Dict[str, np.ndarray],
) -> np.ndarray:
    """Feature matrix ``(num_contexts, dim)`` for one bipartite graph.

    Parameters
    ----------
    bipartite:
        Must have been built with ``enumerate_instances=True`` so the
        per-pair instance lists are available.
    embeddings:
        Per-type initial embeddings, e.g. from
        :func:`repro.embedding.metapath2vec.metapath2vec_embeddings`.
    """
    if bipartite.contexts is None:
        raise ValueError(
            "bipartite graph lacks enumerated contexts; build it with "
            "enumerate_instances=True"
        )
    metapath = bipartite.metapath
    missing = [t for t in metapath.node_types if t not in embeddings]
    if missing:
        raise KeyError(f"missing embeddings for node types {missing}")
    dim = embeddings[metapath.source_type].shape[1]
    features = np.zeros((bipartite.num_contexts, dim))
    for index, context in enumerate(bipartite.contexts):
        features[index] = context_embedding(context, metapath, embeddings, dim)
    return features
