"""Semantic (meta-path-level) attention fusion (§IV-D, Eqs. 6–8).

Per node ``x_i`` and meta-path ``P``, a two-layer MLP scores the
per-meta-path embedding:

    w̃_i^P = a^T · ξ( W5 · tanh(W6 · h_i^P) )                  (Eq. 6)

scores are softmax-normalized across meta-paths (Eq. 7) and the final
embedding is ``z_i = ReLU(Σ_P w_i^P · h_i^P)`` (Eq. 8).

The ``ConCH_ew`` ablation bypasses the attention and uses equal weights.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform
from repro.nn.module import Module, Parameter


class SemanticAttention(Module):
    """Attention over per-meta-path node embeddings."""

    def __init__(
        self,
        in_dim: int,
        attention_dim: int,
        rng: np.random.Generator,
        negative_slope: float = 0.01,
    ):
        super().__init__()
        self.in_dim = in_dim
        self.attention_dim = attention_dim
        self.negative_slope = negative_slope
        self.w6 = Parameter(glorot_uniform((attention_dim, in_dim), rng), name="W6")
        self.w5 = Parameter(glorot_uniform((attention_dim, attention_dim), rng), name="W5")
        self.a = Parameter(glorot_uniform((attention_dim,), rng), name="a")
        self._last_weights: Optional[np.ndarray] = None

    def scores(self, per_path: List[Tensor]) -> Tensor:
        """Raw (pre-softmax) scores, shape ``(n, num_paths)``."""
        columns = []
        for h in per_path:
            hidden = (h @ self.w6.T).tanh()              # (n, att)
            hidden = (hidden @ self.w5.T).leaky_relu(self.negative_slope)
            columns.append(hidden @ self.a)              # (n,)
        return ops.stack(columns, axis=1)

    def forward(self, per_path: List[Tensor]) -> Tuple[Tensor, np.ndarray]:
        """Fuse per-meta-path embeddings.

        Returns
        -------
        (z, weights):
            ``z`` — fused embeddings ``(n, in_dim)`` (Eq. 8);
            ``weights`` — detached per-node attention weights
            ``(n, num_paths)`` for analysis (Fig. 6).
        """
        if not per_path:
            raise ValueError("semantic attention needs at least one meta-path")
        if len(per_path) == 1:
            z = per_path[0].relu()
            weights = np.ones((per_path[0].shape[0], 1))
            self._last_weights = weights
            return z, weights

        raw = self.scores(per_path)                      # (n, q)
        weights = ops.softmax(raw, axis=1)               # Eq. 7
        stacked = ops.stack(per_path, axis=1)            # (n, q, d)
        expanded = weights.reshape(weights.shape[0], weights.shape[1], 1)
        fused = (stacked * expanded).sum(axis=1)         # (n, d)
        z = fused.relu()                                 # Eq. 8
        self._last_weights = weights.data.copy()
        return z, self._last_weights

    def mean_weights(self) -> Optional[np.ndarray]:
        """Average attention weight per meta-path from the last forward."""
        if self._last_weights is None:
            return None
        return self._last_weights.mean(axis=0)


class EqualWeightFusion(Module):
    """``ConCH_ew``: average the per-meta-path embeddings with equal weights."""

    def forward(self, per_path: List[Tensor]) -> Tuple[Tensor, np.ndarray]:
        if not per_path:
            raise ValueError("fusion needs at least one meta-path")
        num_paths = len(per_path)
        total = per_path[0]
        for h in per_path[1:]:
            total = total + h
        z = (total * (1.0 / num_paths)).relu()
        weights = np.full((per_path[0].shape[0], num_paths), 1.0 / num_paths)
        return z, weights
