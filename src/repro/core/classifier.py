"""``ConCHClassifier``: a scikit-learn-style convenience wrapper.

Bundles preprocessing + training + prediction behind ``fit`` / ``predict``
/ ``predict_scores`` so downstream users who just want "an HIN classifier"
don't have to touch the pipeline pieces.  Also supports saving/loading
trained weights.

Example
-------
>>> from repro.core import ConCHClassifier
>>> from repro.data import load_dataset, stratified_split
>>> dataset = load_dataset("dblp")
>>> split = stratified_split(dataset.labels, 0.1)
>>> clf = ConCHClassifier(k=5, num_layers=2, epochs=100)
>>> clf.fit(dataset, split)                      # doctest: +SKIP
>>> predictions = clf.predict()                  # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.autograd.tensor import no_grad
from repro.core.config import ConCHConfig
from repro.core.trainer import ConCHData, ConCHTrainer, prepare_conch_data
from repro.data.base import HINDataset
from repro.data.splits import Split


class ConCHClassifier:
    """High-level fit/predict interface over the ConCH pipeline.

    Keyword arguments are forwarded to :class:`~repro.core.config.ConCHConfig`.
    """

    def __init__(self, config: Optional[ConCHConfig] = None, **config_kwargs):
        if config is not None and config_kwargs:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config or ConCHConfig(**config_kwargs)
        self._trainer: Optional[ConCHTrainer] = None
        self._data: Optional[ConCHData] = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        dataset: HINDataset,
        split: Split,
        verbose: bool = False,
    ) -> "ConCHClassifier":
        """Preprocess (cached per classifier) and train."""
        if self._data is None:
            self._data = prepare_conch_data(dataset, self.config)
        self._trainer = ConCHTrainer(self._data, self.config).fit(
            split, verbose=verbose
        )
        return self

    @property
    def is_fitted(self) -> bool:
        return self._trainer is not None

    def _require_fitted(self) -> ConCHTrainer:
        if self._trainer is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self._trainer

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted labels for ``indices`` (default: all target nodes)."""
        return self._require_fitted().predict(indices)

    def predict_scores(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Softmax class probabilities ``(n, num_classes)``."""
        trainer = self._require_fitted()
        trainer.model.eval()
        with no_grad():
            logits, _ = trainer.model(
                trainer._features, trainer._operators, trainer._context_tensors
            )
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        if indices is None:
            return probs
        return probs[np.asarray(indices)]

    def embeddings(self) -> np.ndarray:
        """Fused object embeddings ``z`` (Algorithm 1's output)."""
        return self._require_fitted().embeddings()

    def score(self, indices: np.ndarray) -> Dict[str, float]:
        """Micro/Macro-F1 on an index set."""
        return self._require_fitted().evaluate(indices)

    def metapath_weights(self) -> np.ndarray:
        """Learned semantic attention weights (Fig. 6)."""
        weights = self._require_fitted().attention_weights()
        assert weights is not None
        return weights

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save_weights(self, path: Union[str, Path]) -> None:
        """Save trained model weights to an ``.npz`` file."""
        trainer = self._require_fitted()
        state = trainer.model.state_dict()
        np.savez(Path(path), **state)

    def load_weights(self, path: Union[str, Path], dataset: HINDataset, split: Split) -> None:
        """Rebuild the model for ``dataset`` and load weights from disk.

        ``split`` is only used to build the trainer skeleton; no training
        happens.
        """
        if self._data is None:
            self._data = prepare_conch_data(dataset, self.config)
        self._trainer = ConCHTrainer(self._data, self.config)
        loaded = np.load(Path(path))
        self._trainer.model.load_state_dict({k: loaded[k] for k in loaded.files})
