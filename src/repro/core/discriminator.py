"""Self-supervised machinery (§IV-E, Eqs. 11–13).

ConCH maximizes mutual information between node embeddings and a global
summary vector ``s = MEAN({z_i})`` (Eq. 11) with a noise-contrastive
objective (Eq. 12).  The discriminator is the bilinear scorer

    D(z_i, s) = σ(z_i^T · W_D · s)                             (Eq. 13)

Negative samples come from a "negative" bipartite graph: same adjacency,
rows of the initial object feature matrix randomly shuffled (following
HDGI [49]).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.layers import Bilinear
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.module import Module


class Discriminator(Module):
    """Bilinear node-vs-summary discriminator (Eq. 13).

    ``forward`` returns raw logits; the sigmoid lives inside the stable
    BCE loss.
    """

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.bilinear = Bilinear(dim, dim, rng)

    def forward(self, z: Tensor, summary: Tensor) -> Tensor:
        return self.bilinear(z, summary)

    def loss(self, z_pos: Tensor, z_neg: Tensor, summary: Tensor) -> Tensor:
        """Eq. 12: BCE pushing positives to 1 and negatives to 0."""
        logits_pos = self.forward(z_pos, summary)
        logits_neg = self.forward(z_neg, summary)
        loss_pos = binary_cross_entropy_with_logits(
            logits_pos, np.ones(logits_pos.shape[0])
        )
        loss_neg = binary_cross_entropy_with_logits(
            logits_neg, np.zeros(logits_neg.shape[0])
        )
        return (loss_pos + loss_neg) * 0.5


def summary_vector(z: Tensor) -> Tensor:
    """Eq. 11: the mean of all object embeddings."""
    return z.mean(axis=0)


def shuffle_features(features: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Row-shuffle the object feature matrix (negative-graph construction).

    Guaranteed to be a proper derangement-ish shuffle for n >= 2: if the
    permutation happens to be the identity, it is rolled by one.
    """
    n = features.shape[0]
    permutation = rng.permutation(n)
    if n > 1 and np.array_equal(permutation, np.arange(n)):
        permutation = np.roll(permutation, 1)
    return features[permutation]
