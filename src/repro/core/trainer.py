"""ConCH preprocessing and training (§IV-E, Algorithm 1).

Preprocessing (:func:`prepare_conch_data`) is done once per (dataset, k,
strategy) — exactly as the paper performs neighbor filtering and context
feature extraction offline.  It is now a thin shim over the staged
:class:`repro.api.Pipeline` (``discover → compose → enumerate →
featurize``), which additionally persists per-stage artifacts and skips
completed stages when given a store directory.  Training
(:class:`ConCHTrainer`) then runs the multi-task objective with Adam and
early stopping; :class:`repro.api.ConCHEstimator` wraps it in the shared
estimator contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor, no_grad
from repro.core.config import ConCHConfig
from repro.core.discriminator import shuffle_features
from repro.core.model import ConCH
from repro.data.base import HINDataset
from repro.data.splits import Split
from repro.eval.metrics import macro_f1, micro_f1
from repro.eval.timing import ConvergenceRecorder
from repro.hin.metapath import MetaPath
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.schedulers import EarlyStopping


@dataclass
class MetaPathData:
    """Preprocessed per-meta-path inputs."""

    metapath: MetaPath
    incidence: sp.csr_matrix          # objects × contexts
    context_features: np.ndarray      # (num_contexts, context_dim)
    neighbor_adj: sp.csr_matrix       # objects × objects (for ConCH_nc)
    #: Contexts whose instance lists hit the per-pair cap (0 when the
    #: ConCH_nc path skips enumeration entirely).
    truncated_contexts: int = 0

    @property
    def num_contexts(self) -> int:
        return self.incidence.shape[1]


@dataclass
class ConCHData:
    """Everything the trainer needs, preprocessed."""

    name: str
    features: np.ndarray              # (n, feature_dim) target object features
    labels: np.ndarray                # (n,)
    num_classes: int
    metapath_data: List[MetaPathData]
    preprocess_seconds: float = 0.0
    #: Commuting-matrix engine telemetry captured after preprocessing
    #: (composed products, cache hits/misses) — see CommutingEngine.stats.
    substrate_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_objects(self) -> int:
        return self.features.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.features.shape[1]

    @property
    def context_dim(self) -> int:
        return self.metapath_data[0].context_features.shape[1]

    @property
    def metapaths(self) -> List[MetaPath]:
        return [m.metapath for m in self.metapath_data]


def prepare_conch_data(
    dataset: HINDataset,
    config: ConCHConfig,
    embeddings: Optional[Dict[str, np.ndarray]] = None,
) -> ConCHData:
    """Offline steps x–z of Fig. 2 plus context feature construction.

    .. deprecated:: 1.2
        Thin shim over the staged :class:`repro.api.Pipeline` (kept for
        back-compat — every call site works unchanged).  The pipeline
        runs the same stages — ``discover → compose → enumerate →
        featurize`` — in memory and returns a bit-identical
        :class:`ConCHData`; construct a :class:`~repro.api.Pipeline`
        directly to persist per-stage artifacts and skip completed
        stages on reruns.

    Parameters
    ----------
    dataset:
        A classification-ready HIN bundle.
    config:
        Controls ``k``, the neighbor strategy, the context embedding
        dimensionality and the per-pair instance cap.
    embeddings:
        Optional precomputed per-type initial embeddings (else
        metapath2vec is trained here, as in the paper).
    """
    from repro.api.pipeline import Pipeline

    return Pipeline(dataset, config=config).prepare(embeddings=embeddings)


class ConCHTrainer:
    """Trains a :class:`~repro.core.model.ConCH` model on prepared data.

    Supports the three training modes of the ablation study:

    - ``multitask`` (paper default): ``L = L_sup + λ·L_ss`` per epoch.
    - ``supervised`` (``ConCH_su``): ``L = L_sup`` only.
    - ``finetune`` (``ConCH_ft``): ``pretrain_epochs`` of ``L_ss`` only,
      then supervised fine-tuning with early stopping.
    """

    def __init__(self, data: ConCHData, config: ConCHConfig):
        self.data = data
        self.config = config
        self.rng = np.random.default_rng(config.seed + 1)
        self.model = ConCH(
            feature_dim=data.feature_dim,
            context_dim=data.context_dim,
            num_metapaths=len(data.metapath_data),
            num_classes=data.num_classes,
            config=config,
            rng=np.random.default_rng(config.seed + 2),
        )
        self.recorder = ConvergenceRecorder(method="ConCH")
        self._features = Tensor(data.features)
        self._context_tensors = [
            Tensor(m.context_features) for m in data.metapath_data
        ]
        self._operators = [
            m.incidence if config.use_contexts else m.neighbor_adj
            for m in data.metapath_data
        ]

    # ------------------------------------------------------------------ #
    # Forward helpers
    # ------------------------------------------------------------------ #

    def _embed(self, features: Tensor, record_attention: bool = True) -> Tensor:
        return self.model.embed(
            features, self._operators, self._context_tensors, record_attention
        )

    def _epoch_losses(self, split: Split, use_sup: bool, use_ss: bool):
        """One optimization step's loss; returns (total, z)."""
        z = self._embed(self._features)
        total = None
        if use_sup:
            logits = self.model.classify(z)
            total = cross_entropy(
                logits[split.train], self.data.labels[split.train]
            )
        if use_ss and self.config.lambda_ss > 0:
            shuffled = Tensor(shuffle_features(self.data.features, self.rng))
            z_neg = self._embed(shuffled, record_attention=False)
            loss_ss = self.model.self_supervised_loss(z, z_neg)
            weighted = loss_ss * self.config.lambda_ss
            total = weighted if total is None else total + weighted
        if total is None:
            raise RuntimeError("epoch requested with neither loss term enabled")
        return total, z

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(self, split: Split, verbose: bool = False) -> "ConCHTrainer":
        """Train with the configured mode; restores the best val weights."""
        mode = self.config.training_mode
        optimizer = Adam(
            self.model.parameters(),
            lr=self.config.lr,
            weight_decay=self.config.weight_decay,
        )
        self.recorder.start()

        if mode == "finetune":
            # Stage 1: self-supervised pretraining only.
            for _ in range(self.config.pretrain_epochs):
                self.model.train()
                optimizer.zero_grad()
                loss, _ = self._epoch_losses(split, use_sup=False, use_ss=True)
                loss.backward()
                optimizer.step()
            # Stage 2 below runs supervised-only.
            use_ss = False
        else:
            use_ss = mode == "multitask"

        stopper = EarlyStopping(patience=self.config.patience, mode="max")
        for epoch in range(self.config.epochs):
            self.model.train()
            optimizer.zero_grad()
            loss, _ = self._epoch_losses(split, use_sup=True, use_ss=use_ss)
            loss.backward()
            optimizer.step()

            val_metric = self.evaluate(split.val)["micro_f1"]
            self.recorder.log(epoch, loss.item(), val_metric)
            if verbose and epoch % 20 == 0:
                print(
                    f"[{self.data.name}] epoch {epoch:3d} "
                    f"loss {loss.item():.4f} val micro-F1 {val_metric:.4f}"
                )
            if stopper.step(val_metric, self.model, epoch):
                break
        stopper.restore(self.model)
        return self

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def _logits(self) -> np.ndarray:
        """One full-graph forward in eval mode; raw logits ``(n, r)``."""
        self.model.eval()
        with no_grad():
            logits, _ = self.model(
                self._features, self._operators, self._context_tensors
            )
        return logits.data

    def predict(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Predicted labels for the given indices (default: all objects)."""
        predictions = self._logits().argmax(axis=1)
        if indices is None:
            return predictions
        return predictions[np.asarray(indices)]

    def predict_proba(self, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Softmax class probabilities (the estimator-contract twin of
        :meth:`predict` — see :class:`repro.api.Estimator`)."""
        from repro.eval.metrics import softmax

        proba = softmax(self._logits())
        if indices is None:
            return proba
        return proba[np.asarray(indices)]

    def embeddings(self) -> np.ndarray:
        """Final fused object embeddings ``{z_i}`` (Algorithm 1 output)."""
        self.model.eval()
        with no_grad():
            z = self._embed(self._features)
        return z.data.copy()

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        """Micro/Macro-F1 on an index set."""
        indices = np.asarray(indices)
        predictions = self.predict(indices)
        truth = self.data.labels[indices]
        return {
            "micro_f1": micro_f1(truth, predictions),
            "macro_f1": macro_f1(truth, predictions, self.data.num_classes),
        }

    def attention_weights(self) -> Optional[np.ndarray]:
        """Mean learned meta-path weights (Fig. 6) from the last forward."""
        self.model.eval()
        with no_grad():
            self._embed(self._features)
        return self.model.mean_attention_weights()
