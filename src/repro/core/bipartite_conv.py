"""Mutual object/context graph convolution (§IV-C, Eqs. 4–5).

One :class:`BipartiteConv` layer performs the timestep update

    h_c^{t+1} = ReLU( W1·(h_u^t + h_v^t) + W2·h_c^t )          (Eq. 4)
    h_x^{t+1} = ReLU( W3·Σ_{c∋x} h_c^{t+1} + W4·h_x^t )        (Eq. 5)

vectorized through the bipartite incidence matrix ``B`` (objects ×
contexts): ``B.T @ H_x`` sums each context's two endpoints and
``B @ H_c`` sums each object's incident contexts.

Update order: Algorithm 1 (lines 14–15) updates contexts *first* and then
objects, so the object update consumes the timestep-``t+1`` context
embeddings (Gauss–Seidel).  This matters: with it, a single layer (the
paper's ``L=1`` setting on Yelp/Freebase) already propagates neighbor
features object → context → object.  Eq. 5's superscript reads ``(t)``,
but under that literal (Jacobi) reading an L=1 model would never see its
neighbors' features at all, which cannot reproduce the paper's L=1
results; we follow the algorithm's order.  A ``jacobi=True`` switch keeps
the literal reading available for the ablation benches.

:class:`NeighborConv` is the ``ConCH_nc`` ablation: contexts are dropped
and objects aggregate directly from their filtered meta-path neighbors
through the neighbor adjacency ``N``:

    h_x^{t+1} = ReLU( W3·Σ_{v∈N(x)} h_v^t + W4·h_x^t )
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd.sparse import row_normalize, sparse_matmul
from repro.autograd.tensor import Tensor
from repro.nn.init import glorot_uniform
from repro.nn.module import Module, Parameter


class BipartiteConv(Module):
    """One mutual-update layer over an object/context bipartite graph."""

    def __init__(
        self,
        object_in_dim: int,
        context_in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        aggregator: str = "sum",
        jacobi: bool = False,
    ):
        super().__init__()
        if aggregator not in ("sum", "mean"):
            raise ValueError(f"unknown aggregator {aggregator!r}")
        self.aggregator = aggregator
        self.jacobi = jacobi
        self.object_in_dim = object_in_dim
        self.context_in_dim = context_in_dim
        self.out_dim = out_dim
        # W1: endpoint-objects -> context update.
        self.w1 = Parameter(glorot_uniform((out_dim, object_in_dim), rng), name="W1")
        # W2: context self term.
        self.w2 = Parameter(glorot_uniform((out_dim, context_in_dim), rng), name="W2")
        # W3: incident-contexts -> object update.  Gauss-Seidel consumes the
        # freshly-updated contexts (dim out_dim); Jacobi the old ones.
        w3_in = context_in_dim if jacobi else out_dim
        self.w3 = Parameter(glorot_uniform((out_dim, w3_in), rng), name="W3")
        # W4: object self term.
        self.w4 = Parameter(glorot_uniform((out_dim, object_in_dim), rng), name="W4")

    def forward(
        self,
        incidence: sp.csr_matrix,
        h_objects: Tensor,
        h_contexts: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """Apply Eqs. 4–5; returns ``(new_objects, new_contexts)``."""
        if incidence.shape != (h_objects.shape[0], h_contexts.shape[0]):
            raise ValueError(
                f"incidence {incidence.shape} incompatible with objects "
                f"{h_objects.shape} / contexts {h_contexts.shape}"
            )
        forward_op = incidence
        backward_op = incidence.T.tocsr()
        if self.aggregator == "mean":
            forward_op = row_normalize(incidence)
            backward_op = row_normalize(backward_op)

        if h_contexts.shape[0] > 0:
            # Eq. 4 — context update from its (at most two) endpoint objects.
            endpoint_sum = sparse_matmul(backward_op, h_objects)     # (m, d_x)
            new_contexts = (
                endpoint_sum @ self.w1.T + h_contexts @ self.w2.T
            ).relu()
            # Eq. 5 — object update from incident contexts.  Gauss-Seidel
            # (Algorithm 1 order) consumes the new contexts; Jacobi the old.
            source = h_contexts if self.jacobi else new_contexts
            context_sum = sparse_matmul(forward_op, source)
        else:
            # Degenerate graph with no contexts: objects see only themselves.
            new_contexts = h_contexts @ self.w2.T
            w3_in = self.context_in_dim if self.jacobi else self.out_dim
            context_sum = Tensor(np.zeros((h_objects.shape[0], w3_in)))
        new_objects = (context_sum @ self.w3.T + h_objects @ self.w4.T).relu()
        return new_objects, new_contexts


class NeighborConv(Module):
    """Direct neighbor aggregation without contexts (``ConCH_nc``)."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        aggregator: str = "sum",
    ):
        super().__init__()
        if aggregator not in ("sum", "mean"):
            raise ValueError(f"unknown aggregator {aggregator!r}")
        self.aggregator = aggregator
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.w3 = Parameter(glorot_uniform((out_dim, in_dim), rng), name="W3")
        self.w4 = Parameter(glorot_uniform((out_dim, in_dim), rng), name="W4")

    def forward(self, neighbor_adj: sp.csr_matrix, h_objects: Tensor) -> Tensor:
        if neighbor_adj.shape[0] != h_objects.shape[0]:
            raise ValueError(
                f"adjacency {neighbor_adj.shape} incompatible with objects "
                f"{h_objects.shape}"
            )
        op = row_normalize(neighbor_adj) if self.aggregator == "mean" else neighbor_adj
        neighbor_sum = sparse_matmul(op, h_objects)
        return (neighbor_sum @ self.w3.T + h_objects @ self.w4.T).relu()


def neighbor_adjacency_from_pairs(pairs: np.ndarray, num_objects: int) -> sp.csr_matrix:
    """Symmetric n×n adjacency over the retained top-k pairs."""
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return sp.csr_matrix((num_objects, num_objects), dtype=np.float64)
    rows = np.concatenate([pairs[:, 0], pairs[:, 1]])
    cols = np.concatenate([pairs[:, 1], pairs[:, 0]])
    data = np.ones(rows.shape[0], dtype=np.float64)
    adj = sp.csr_matrix((data, (rows, cols)), shape=(num_objects, num_objects))
    adj.data[:] = 1.0
    return adj
