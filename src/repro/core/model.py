"""The ConCH model (§IV, Fig. 2).

Per meta-path, a stack of :class:`~repro.core.bipartite_conv.BipartiteConv`
layers mutually updates object and context embeddings (steps { in Fig. 2);
semantic attention fuses the per-meta-path object embeddings (step |);
a two-layer MLP predicts labels (step }, Eq. 9); and a bilinear
discriminator scores node/summary pairs for the self-supervised loss
(steps ~/, Eqs. 11–13).

The same ``embed`` pass is reused for the "negative" bipartite graphs by
feeding shuffled object features (the adjacency stays fixed).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.core.bipartite_conv import BipartiteConv, NeighborConv
from repro.core.config import ConCHConfig
from repro.core.discriminator import Discriminator, summary_vector
from repro.core.semantic_attention import EqualWeightFusion, SemanticAttention
from repro.nn.layers import Dropout, MLP
from repro.nn.module import Module, ModuleList


class _MetaPathStack(Module):
    """The per-meta-path tower: L conv layers (with or without contexts)."""

    def __init__(
        self,
        feature_dim: int,
        context_dim: int,
        config: ConCHConfig,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.use_contexts = config.use_contexts
        self.layers = ModuleList()
        dims_out = [
            config.hidden_dim if layer < config.num_layers - 1 else config.out_dim
            for layer in range(config.num_layers)
        ]
        obj_in, ctx_in = feature_dim, context_dim
        for out_dim in dims_out:
            if self.use_contexts:
                self.layers.append(
                    BipartiteConv(
                        obj_in,
                        ctx_in,
                        out_dim,
                        rng,
                        config.aggregator,
                        jacobi=config.update_order == "jacobi",
                    )
                )
            else:
                self.layers.append(
                    NeighborConv(obj_in, out_dim, rng, config.aggregator)
                )
            obj_in = ctx_in = out_dim

    def forward(
        self,
        operator: sp.csr_matrix,
        h_objects: Tensor,
        h_contexts: Optional[Tensor],
    ) -> Tensor:
        for layer in self.layers:
            if self.use_contexts:
                h_objects, h_contexts = layer(operator, h_objects, h_contexts)
            else:
                h_objects = layer(operator, h_objects)
        return h_objects


class ConCH(Module):
    """ConCH: context-aware heterogeneous graph classification model.

    Parameters
    ----------
    feature_dim:
        Dimensionality of the target objects' input features.
    context_dim:
        Dimensionality of the initial context features (metapath2vec dim).
    num_metapaths:
        Number of meta-paths (towers).
    num_classes:
        Label count ``r``.
    config:
        Hyper-parameters; see :class:`~repro.core.config.ConCHConfig`.
    rng:
        Generator used for initialization and dropout.
    """

    def __init__(
        self,
        feature_dim: int,
        context_dim: int,
        num_metapaths: int,
        num_classes: int,
        config: ConCHConfig,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if num_metapaths < 1:
            raise ValueError("ConCH needs at least one meta-path")
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.config = config
        self.num_metapaths = num_metapaths
        self.num_classes = num_classes

        self.input_dropout = Dropout(config.dropout, rng)
        self.towers = ModuleList(
            [
                _MetaPathStack(feature_dim, context_dim, config, rng)
                for _ in range(num_metapaths)
            ]
        )
        if config.use_attention:
            self.fusion = SemanticAttention(config.out_dim, config.attention_dim, rng)
        else:
            self.fusion = EqualWeightFusion()
        # Eq. 9: two-layer MLP label head (W7 · ReLU(W8 · z)).
        self.classifier = MLP(
            [config.out_dim, config.classifier_hidden, num_classes],
            rng,
            dropout=config.dropout,
        )
        self.discriminator = Discriminator(config.out_dim, rng)
        self._last_attention: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #

    def embed(
        self,
        features: Tensor,
        operators: Sequence[sp.csr_matrix],
        context_features: Sequence[Optional[Tensor]],
        record_attention: bool = True,
    ) -> Tensor:
        """Steps {–| of Fig. 2: per-meta-path conv then semantic fusion.

        Parameters
        ----------
        features:
            Object feature matrix ``(n, feature_dim)``.
        operators:
            Per meta-path, the bipartite incidence (contexts mode) or the
            filtered neighbor adjacency (``ConCH_nc`` mode).
        context_features:
            Per meta-path, the initial context features ``(m_P, context_dim)``
            (ignored / may be None in ``ConCH_nc`` mode).
        """
        if len(operators) != self.num_metapaths:
            raise ValueError(
                f"expected {self.num_metapaths} operators, got {len(operators)}"
            )
        h0 = self.input_dropout(features)
        per_path: List[Tensor] = []
        for tower, operator, ctx in zip(self.towers, operators, context_features):
            per_path.append(tower(operator, h0, ctx))
        z, weights = self.fusion(per_path)
        if record_attention:
            self._last_attention = weights
        return z

    def classify(self, z: Tensor) -> Tensor:
        """Eq. 9: logits ``(n, num_classes)`` from fused embeddings."""
        return self.classifier(z)

    def forward(
        self,
        features: Tensor,
        operators: Sequence[sp.csr_matrix],
        context_features: Sequence[Optional[Tensor]],
    ) -> Tuple[Tensor, Tensor]:
        """Full pass; returns ``(logits, z)``."""
        z = self.embed(features, operators, context_features)
        return self.classify(z), z

    # ------------------------------------------------------------------ #
    # Self-supervision helpers
    # ------------------------------------------------------------------ #

    def self_supervised_loss(self, z_pos: Tensor, z_neg: Tensor) -> Tensor:
        """Eqs. 11–13 with the summary from the positive pass."""
        summary = summary_vector(z_pos)
        return self.discriminator.loss(z_pos, z_neg, summary)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def attention_weights(self) -> Optional[np.ndarray]:
        """Per-node meta-path attention weights from the last forward."""
        return self._last_attention

    def mean_attention_weights(self) -> Optional[np.ndarray]:
        """Fig. 6: average learned weight of each meta-path."""
        if self._last_attention is None:
            return None
        return self._last_attention.mean(axis=0)
