"""Prediction explanations: why did ConCH label node *x* with class *c*?

ConCH's structure makes its predictions unusually inspectable: every
object embedding is built from (1) a small set of PathSim-selected
neighbors per meta-path, (2) the contexts (path instances) connecting
them, and (3) learned per-meta-path attention weights.  This module
surfaces all three for a given node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.trainer import ConCHData, ConCHTrainer
from repro.data.base import HINDataset
from repro.hin.context import enumerate_contexts
from repro.hin.metapath import MetaPath
from repro.hin.pathsim import pathsim_single


@dataclass
class NeighborEvidence:
    """One retained neighbor of the explained node under one meta-path."""

    neighbor: int
    pathsim: float
    neighbor_label: Optional[int]
    instances: List[Tuple[int, ...]] = field(default_factory=list)


@dataclass
class MetaPathEvidence:
    """Everything one meta-path contributes to a node's prediction."""

    metapath_name: str
    attention_weight: float
    neighbors: List[NeighborEvidence] = field(default_factory=list)


@dataclass
class Explanation:
    """Full explanation of one node's predicted label."""

    node: int
    predicted_label: int
    true_label: Optional[int]
    class_scores: np.ndarray
    evidence: List[MetaPathEvidence] = field(default_factory=list)

    def render(self, class_names: Optional[Sequence[str]] = None) -> str:
        """Readable multi-line summary."""
        def name_of(label):
            if label is None:
                return "?"
            if class_names is not None:
                return class_names[label]
            return str(label)

        lines = [
            f"node {self.node}: predicted {name_of(self.predicted_label)}"
            + (f" (true {name_of(self.true_label)})" if self.true_label is not None else "")
        ]
        for evidence in self.evidence:
            lines.append(
                f"  {evidence.metapath_name} (attention {evidence.attention_weight:.3f})"
            )
            for item in evidence.neighbors:
                label = name_of(item.neighbor_label)
                lines.append(
                    f"    neighbor {item.neighbor} [{label}] "
                    f"PathSim {item.pathsim:.3f}, "
                    f"{len(item.instances)} instance(s)"
                )
        return "\n".join(lines)


def explain_node(
    trainer: ConCHTrainer,
    dataset: HINDataset,
    node: int,
    max_neighbors: int = 5,
    max_instances: int = 4,
) -> Explanation:
    """Explain a trained ConCH model's prediction for one node.

    Parameters
    ----------
    trainer:
        A fitted :class:`~repro.core.trainer.ConCHTrainer`.
    dataset:
        The dataset the trainer was prepared on (for the HIN and labels).
    node:
        Target-type node id.
    max_neighbors:
        Neighbors listed per meta-path (strongest PathSim first).
    max_instances:
        Path instances enumerated per neighbor pair.
    """
    data: ConCHData = trainer.data
    if not 0 <= node < data.num_objects:
        raise IndexError(f"node {node} out of range [0, {data.num_objects})")

    predictions = trainer.predict()
    hin = dataset.hin

    # Per-node attention weights from a fresh eval-mode forward pass.
    trainer.model.eval()
    from repro.autograd.tensor import no_grad

    with no_grad():
        trainer._embed(trainer._features)
    per_node_attention = trainer.model.attention_weights()
    node_attention = (
        per_node_attention[node]
        if per_node_attention is not None
        else np.full(len(data.metapath_data), 1.0 / len(data.metapath_data))
    )

    labels = data.labels
    evidence: List[MetaPathEvidence] = []
    for index, mp_data in enumerate(data.metapath_data):
        metapath: MetaPath = mp_data.metapath
        mp_evidence = MetaPathEvidence(
            metapath_name=metapath.name,
            attention_weight=float(node_attention[index]),
        )
        # Neighbors of `node` among the retained pairs.
        row = mp_data.neighbor_adj.tocsr()
        neighbors = row.indices[row.indptr[node]: row.indptr[node + 1]]
        scored = [
            (int(v), pathsim_single(hin, metapath, node, int(v))) for v in neighbors
        ]
        scored.sort(key=lambda item: -item[1])
        top = scored[:max_neighbors]
        # One batched kernel call per meta-path covers every listed
        # neighbor; the kernel canonicalizes each (node, neighbor) pair,
        # so instance tuples run context.u -> context.v regardless of
        # which endpoint is being explained.
        pair_array = np.array(
            [[node, neighbor] for neighbor, _ in top], dtype=np.int64
        ).reshape(-1, 2)
        batch = enumerate_contexts(
            hin, metapath, pair_array, max_instances=max_instances
        )
        for position, (neighbor, score) in enumerate(top):
            mp_evidence.neighbors.append(
                NeighborEvidence(
                    neighbor=neighbor,
                    pathsim=score,
                    neighbor_label=int(labels[neighbor]),
                    instances=batch.context(position).instances,
                )
            )
        evidence.append(mp_evidence)

    # Class scores from the classifier head.
    from repro.autograd.tensor import no_grad

    trainer.model.eval()
    with no_grad():
        logits, _ = trainer.model(
            trainer._features, trainer._operators, trainer._context_tensors
        )
    scores = logits.data[node]

    return Explanation(
        node=node,
        predicted_label=int(predictions[node]),
        true_label=int(labels[node]),
        class_scores=scores,
        evidence=evidence,
    )
