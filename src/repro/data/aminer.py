"""Synthetic AMiner-scale bibliographic HIN (paper §V-G).

The paper's scalability study extracts a dblp-4area subgraph from the
AMiner citation network (416,554 papers / 537,435 authors / 2,649
conferences) and classifies *papers* into four research areas using
meta-paths {PAP, PCP}.

This generator produces the same shape — papers as the target type, with
authors and conferences as context types — at a configurable scale
(default ~2k papers; ``scale`` multiplies all sizes so efficiency studies
can stress larger graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.base import HINDataset, class_prototypes, mixture_labels
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath

CLASS_NAMES = ["DB", "DM", "ML", "IR"]


@dataclass
class AMinerConfig:
    """Knobs for the synthetic AMiner generator."""

    num_papers: int = 2000
    num_authors: int = 2600
    num_conferences: int = 40
    feature_dim: int = 64
    authors_per_paper_max: int = 3
    author_affinity: float = 0.8
    venue_affinity: float = 0.85
    feature_separation: float = 1.8
    feature_noise: float = 0.8
    scale: float = 1.0
    seed: int = 0

    def scaled(self) -> "AMinerConfig":
        """Return a copy with node counts multiplied by ``scale``."""
        if self.scale == 1.0:
            return self
        return AMinerConfig(
            num_papers=max(len(CLASS_NAMES), int(self.num_papers * self.scale)),
            num_authors=max(len(CLASS_NAMES), int(self.num_authors * self.scale)),
            num_conferences=max(len(CLASS_NAMES), int(self.num_conferences * self.scale)),
            feature_dim=self.feature_dim,
            authors_per_paper_max=self.authors_per_paper_max,
            author_affinity=self.author_affinity,
            venue_affinity=self.venue_affinity,
            feature_separation=self.feature_separation,
            feature_noise=self.feature_noise,
            scale=1.0,
            seed=self.seed,
        )


def make_aminer(config: AMinerConfig | None = None) -> HINDataset:
    """Generate the synthetic AMiner paper-classification dataset."""
    config = (config or AMinerConfig()).scaled()
    rng = np.random.default_rng(config.seed)
    num_classes = len(CLASS_NAMES)

    paper_labels = mixture_labels(rng, config.num_papers, num_classes)
    author_area = mixture_labels(rng, config.num_authors, num_classes)
    conference_area = mixture_labels(rng, config.num_conferences, num_classes)
    author_pools = [np.flatnonzero(author_area == c) for c in range(num_classes)]
    conference_pools = [
        np.flatnonzero(conference_area == c) for c in range(num_classes)
    ]

    pa_src: List[int] = []  # paper -> author
    pa_dst: List[int] = []
    pc_src: List[int] = []  # paper -> conference
    pc_dst: List[int] = []

    for paper, area in enumerate(paper_labels):
        count = 1 + int(rng.integers(0, config.authors_per_paper_max))
        chosen = set()
        for _ in range(count):
            if rng.random() < config.author_affinity and author_pools[area].size:
                author = int(rng.choice(author_pools[area]))
            else:
                author = int(rng.integers(0, config.num_authors))
            if author not in chosen:
                chosen.add(author)
                pa_src.append(paper)
                pa_dst.append(author)
        if rng.random() < config.venue_affinity and conference_pools[area].size:
            venue = int(rng.choice(conference_pools[area]))
        else:
            venue = int(rng.integers(0, config.num_conferences))
        pc_src.append(paper)
        pc_dst.append(venue)

    hin = HIN(name="aminer-synthetic")
    hin.add_node_type("P", config.num_papers)
    hin.add_node_type("A", config.num_authors)
    hin.add_node_type("C", config.num_conferences)
    hin.add_edges("written_by", "P", "A", pa_src, pa_dst)
    hin.add_edges("published_at", "P", "C", pc_src, pc_dst)

    prototypes = class_prototypes(
        rng, num_classes, config.feature_dim, separation=config.feature_separation
    )
    paper_features = prototypes[paper_labels] + rng.normal(
        0.0, config.feature_noise, size=(config.num_papers, config.feature_dim)
    )
    author_features = prototypes[author_area] + rng.normal(
        0.0, config.feature_noise, size=(config.num_authors, config.feature_dim)
    )
    conference_features = prototypes[conference_area] + rng.normal(
        0.0, config.feature_noise, size=(config.num_conferences, config.feature_dim)
    )

    hin.set_features("P", paper_features)
    hin.set_features("A", author_features)
    hin.set_features("C", conference_features)
    hin.set_labels("P", paper_labels)

    metapaths = [MetaPath.parse("PAP"), MetaPath.parse("PCP")]
    return HINDataset(
        name="aminer",
        hin=hin,
        target_type="P",
        metapaths=metapaths,
        class_names=list(CLASS_NAMES),
    ).validate()
