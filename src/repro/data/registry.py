"""Dataset registry: name -> generator, with per-dataset paper defaults.

The registry also records the paper's per-dataset ConCH hyper-parameters
(§V-C): ``k`` in the neighbor filter and the number of layers ``L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.data.aminer import AMinerConfig, make_aminer
from repro.data.base import HINDataset
from repro.data.dblp import DBLPConfig, make_dblp
from repro.data.freebase import FreebaseConfig, make_freebase
from repro.data.yelp import YelpConfig, make_yelp


@dataclass(frozen=True)
class DatasetEntry:
    """A registered dataset with its per-dataset ConCH hyper-parameters.

    ``k`` follows the paper (§V-C).  ``num_layers`` follows the paper
    except on Freebase, where our smaller synthetic graph benefits from
    L=2 (the paper uses L=1 at 10x our movie count); ``lambda_ss`` is the
    per-dataset tuned value (the paper tunes λ per dataset from a grid).
    ``context_dim`` is scaled down with the rest of the reproduction.
    """

    factory: Callable[..., HINDataset]
    config_cls: type
    k: int                   # neighbor-filter size (paper §V-C)
    num_layers: int          # bipartite-conv layers L
    context_dim: int         # initial context embedding dimensionality
    lambda_ss: float         # self-supervision weight λ (Eq. 14)


DATASETS: Dict[str, DatasetEntry] = {
    "dblp": DatasetEntry(
        make_dblp, DBLPConfig, k=5, num_layers=2, context_dim=32, lambda_ss=0.3
    ),
    "yelp": DatasetEntry(
        make_yelp, YelpConfig, k=10, num_layers=1, context_dim=32, lambda_ss=0.3
    ),
    "freebase": DatasetEntry(
        make_freebase, FreebaseConfig, k=10, num_layers=2, context_dim=32,
        lambda_ss=0.5,
    ),
    "aminer": DatasetEntry(
        make_aminer, AMinerConfig, k=5, num_layers=1, context_dim=32, lambda_ss=0.3
    ),
}


def load_dataset(name: str, seed: int = 0, config: Optional[object] = None) -> HINDataset:
    """Instantiate a registered dataset by name.

    Parameters
    ----------
    name:
        One of ``"dblp"``, ``"yelp"``, ``"freebase"``, ``"aminer"``.
    seed:
        Generator seed (ignored if an explicit ``config`` is given).
    config:
        Optional fully-specified config dataclass instance.
    """
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    entry = DATASETS[key]
    if config is None:
        config = entry.config_cls(seed=seed)
    elif not isinstance(config, entry.config_cls):
        raise TypeError(
            f"config for {name!r} must be {entry.config_cls.__name__}, "
            f"got {type(config).__name__}"
        )
    return entry.factory(config)


def dataset_hyperparams(name: str) -> DatasetEntry:
    """Paper hyper-parameters (k, L, context dim) for a dataset."""
    key = name.lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]


def default_conch_config(name: str, **overrides):
    """A :class:`~repro.core.config.ConCHConfig` with this dataset's
    per-paper hyper-parameters (§V-C: ``k``, ``L``, context dim, λ),
    overridable field-by-field.  Unregistered names fall back to the
    global defaults — ad-hoc :class:`HINDataset` bundles stay usable.
    """
    from repro.core.config import ConCHConfig

    base = {}
    entry = DATASETS.get(name.lower())
    if entry is not None:
        base = dict(
            k=entry.k,
            num_layers=entry.num_layers,
            context_dim=entry.context_dim,
            lambda_ss=entry.lambda_ss,
        )
    base.update(overrides)
    return ConCHConfig(**base)
