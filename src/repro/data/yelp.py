"""Synthetic Yelp-Restaurant HIN.

Schema (paper §V-A): Businesses (B), Reviews (R), Users (U), Keywords (K);
relations B–R, U–R, K–R.  The task is to classify restaurants into three
food categories {Fast Food, Sushi Bars, American New}.  Meta-paths:
{BRURB, BRKRB}.

Planted structure mirrors the paper's findings:

- Each review mentions 1–3 food keywords; keywords are mostly
  category-specific, so ``BRKRB`` (same keyword in reviews) is a strong
  signal — its learned attention weight dominates in Fig. 6b.
- Users review restaurants across categories (mild preference only), so
  ``BRURB`` (shared customer) is weak.
- Restaurant attributes are just two categoricals (reservation, service),
  weakly correlated with the category — matching the paper's setup where
  the input features alone are nearly uninformative and structure must do
  the work (this is why mp-contexts matter most on Yelp, Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.base import HINDataset, mixture_labels
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath

CLASS_NAMES = ["Fast Food", "Sushi Bars", "American New"]


@dataclass
class YelpConfig:
    """Knobs for the synthetic Yelp generator (~8x scale-down)."""

    num_businesses: int = 300
    num_reviews: int = 2400
    num_users: int = 180
    num_keywords: int = 82
    keywords_per_review_max: int = 3
    keyword_affinity: float = 0.85   # P(review keyword is category-specific)
    user_affinity: float = 0.45      # P(user reviews within their favourite category)
    attribute_affinity: float = 0.7  # P(categorical attribute matches class mode)
    seed: int = 0


def make_yelp(config: YelpConfig | None = None) -> HINDataset:
    """Generate the synthetic Yelp-Restaurant dataset."""
    config = config or YelpConfig()
    rng = np.random.default_rng(config.seed)
    num_classes = len(CLASS_NAMES)
    if config.num_keywords < num_classes:
        raise ValueError("need at least one keyword per category")

    business_labels = mixture_labels(rng, config.num_businesses, num_classes)
    keyword_category = mixture_labels(rng, config.num_keywords, num_classes)
    keyword_pools = [np.flatnonzero(keyword_category == c) for c in range(num_classes)]
    user_favourite = mixture_labels(rng, config.num_users, num_classes)
    business_pools = [np.flatnonzero(business_labels == c) for c in range(num_classes)]

    br_src: List[int] = []  # business -> review
    br_dst: List[int] = []
    ur_src: List[int] = []  # user -> review
    ur_dst: List[int] = []
    kr_src: List[int] = []  # keyword -> review
    kr_dst: List[int] = []

    # Every review: written by one user about one business, with keywords.
    for review in range(config.num_reviews):
        user = int(rng.integers(0, config.num_users))
        favourite = user_favourite[user]
        if rng.random() < config.user_affinity and business_pools[favourite].size:
            business = int(rng.choice(business_pools[favourite]))
        else:
            business = int(rng.integers(0, config.num_businesses))
        category = business_labels[business]

        br_src.append(business)
        br_dst.append(review)
        ur_src.append(user)
        ur_dst.append(review)

        num_kw = 1 + int(rng.integers(0, config.keywords_per_review_max))
        seen = set()
        for _ in range(num_kw):
            if rng.random() < config.keyword_affinity and keyword_pools[category].size:
                keyword = int(rng.choice(keyword_pools[category]))
            else:
                keyword = int(rng.integers(0, config.num_keywords))
            if keyword not in seen:
                seen.add(keyword)
                kr_src.append(keyword)
                kr_dst.append(review)

    # Guarantee every business has at least one review.
    covered = set(br_src)
    extra_review = config.num_reviews
    extra_reviews_needed = [b for b in range(config.num_businesses) if b not in covered]
    total_reviews = config.num_reviews + len(extra_reviews_needed)
    for business in extra_reviews_needed:
        review = extra_review
        extra_review += 1
        category = business_labels[business]
        br_src.append(business)
        br_dst.append(review)
        user = int(rng.integers(0, config.num_users))
        ur_src.append(user)
        ur_dst.append(review)
        keyword = int(rng.choice(keyword_pools[category]))
        kr_src.append(keyword)
        kr_dst.append(review)

    hin = HIN(name="yelp-synthetic")
    hin.add_node_type("B", config.num_businesses)
    hin.add_node_type("R", total_reviews)
    hin.add_node_type("U", config.num_users)
    hin.add_node_type("K", config.num_keywords)
    hin.add_edges("receives", "B", "R", br_src, br_dst)
    hin.add_edges("writes", "U", "R", ur_src, ur_dst)
    hin.add_edges("mentioned_in", "K", "R", kr_src, kr_dst)

    # --- Features ------------------------------------------------------ #
    # Businesses: two categorical attributes, one-hot encoded (4 dims),
    # weakly correlated with the class: class 0 (fast food) tends to have
    # no reservation / no waiter service, class 1 (sushi) the opposite.
    class_reservation_prob = np.array([0.15, 0.85, 0.6])
    class_service_prob = np.array([0.1, 0.9, 0.75])
    reservation = (
        rng.random(config.num_businesses)
        < class_reservation_prob[business_labels]
    ).astype(np.float64)
    service = (
        rng.random(config.num_businesses) < class_service_prob[business_labels]
    ).astype(np.float64)
    # Blur the attributes so they are weak evidence, not a giveaway.
    flip = rng.random(config.num_businesses) > config.attribute_affinity
    reservation[flip] = 1.0 - reservation[flip]
    business_features = np.stack(
        [reservation, 1.0 - reservation, service, 1.0 - service], axis=1
    )

    # Reviews / users / keywords get random identifier-like features only:
    # the *category of a keyword is not observable from its features* (in
    # the real Yelp data keywords are just strings).  Methods must recover
    # the signal from structure, exactly as in the paper.
    review_features = rng.normal(0.0, 1.0, size=(total_reviews, 8))
    user_features = rng.normal(0.0, 1.0, size=(config.num_users, 8))
    keyword_features = rng.normal(0.0, 1.0, size=(config.num_keywords, 8))

    hin.set_features("B", business_features)
    hin.set_features("R", review_features)
    hin.set_features("U", user_features)
    hin.set_features("K", keyword_features)
    hin.set_labels("B", business_labels)

    metapaths = [MetaPath.parse("BRURB"), MetaPath.parse("BRKRB")]
    return HINDataset(
        name="yelp",
        hin=hin,
        target_type="B",
        metapaths=metapaths,
        class_names=list(CLASS_NAMES),
    ).validate()
