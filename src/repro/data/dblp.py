"""Synthetic DBLP-like bibliographic HIN.

Schema (paper §V-A): Authors (A), Papers (P), Conferences (C); relations
A–P (authorship) and P–C (venue).  The task is to classify authors into
four research areas {DB, DM, ML, IR}.  Meta-paths: {APA, APAPA, APCPA}.

Planted structure mirrors the paper's qualitative findings:

- Conferences are area-pure with high probability, so the *venue
  co-attendance* meta-path ``APCPA`` is a dense, reliable label signal —
  the paper's attention analysis (Fig. 6a) finds its weight ≈ 1.
- Papers have only 1–3 authors drawn mostly from one area, so
  co-authorship ``APA`` is sparse — informative but low-coverage, and
  subsumed by ``APCPA`` (its learned weight ≈ 0 in the paper).
- Author features emulate "averaged word embeddings of the author's paper
  keywords": a per-area prototype plus noise, averaged over the author's
  papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.data.base import HINDataset, class_prototypes, mixture_labels
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath

CLASS_NAMES = ["DB", "DM", "ML", "IR"]


@dataclass
class DBLPConfig:
    """Knobs for the synthetic DBLP generator.

    Defaults are a ~10x scale-down of the paper's extract (4,057 authors /
    14,376 papers / 20 conferences) so the full experiment grid runs on
    CPU in minutes.
    """

    num_authors: int = 400
    num_papers: int = 1400
    num_conferences: int = 20
    feature_dim: int = 64
    papers_per_author_mean: float = 3.5
    authors_per_paper_max: int = 3
    venue_affinity: float = 0.85     # P(paper's venue is in its own area)
    coauthor_affinity: float = 0.8   # P(extra author shares the paper's area)
    author_area_affinity: float = 0.85  # P(an author's paper is in their area)
    feature_separation: float = 1.8  # class-prototype norm in feature space
    feature_noise: float = 0.8
    seed: int = 0


def make_dblp(config: DBLPConfig | None = None) -> HINDataset:
    """Generate the synthetic DBLP dataset."""
    config = config or DBLPConfig()
    rng = np.random.default_rng(config.seed)
    num_classes = len(CLASS_NAMES)
    if config.num_conferences < num_classes:
        raise ValueError("need at least one conference per research area")

    # --- Plant labels -------------------------------------------------- #
    author_labels = mixture_labels(rng, config.num_authors, num_classes)
    conference_areas = mixture_labels(rng, config.num_conferences, num_classes)
    conference_pools = [
        np.flatnonzero(conference_areas == c) for c in range(num_classes)
    ]
    author_pools = [np.flatnonzero(author_labels == c) for c in range(num_classes)]

    # --- Papers: area, venue, authors ---------------------------------- #
    # Each paper is seeded by a "first author"; its area usually matches.
    paper_area = np.empty(config.num_papers, dtype=np.int64)
    paper_conference = np.empty(config.num_papers, dtype=np.int64)
    ap_src: List[int] = []
    ap_dst: List[int] = []
    pc_src: List[int] = []
    pc_dst: List[int] = []

    first_authors = rng.integers(0, config.num_authors, size=config.num_papers)
    for paper, author in enumerate(first_authors):
        own_area = author_labels[author]
        if rng.random() < config.author_area_affinity:
            area = own_area
        else:
            area = int(rng.integers(0, num_classes))
        paper_area[paper] = area

        # Venue: mostly a conference of the paper's area.
        if rng.random() < config.venue_affinity and conference_pools[area].size:
            venue = int(rng.choice(conference_pools[area]))
        else:
            venue = int(rng.integers(0, config.num_conferences))
        paper_conference[paper] = venue
        pc_src.append(paper)
        pc_dst.append(venue)

        # Authors: the seed author plus 0..max-1 co-authors.
        authors = {int(author)}
        extra = int(rng.integers(0, config.authors_per_paper_max))
        for _ in range(extra):
            if rng.random() < config.coauthor_affinity and author_pools[area].size:
                candidate = int(rng.choice(author_pools[area]))
            else:
                candidate = int(rng.integers(0, config.num_authors))
            authors.add(candidate)
        for a in authors:
            ap_src.append(a)
            ap_dst.append(paper)

    # Guarantee every author has at least one paper (attach to a same-area
    # paper if the random process left them isolated).
    covered = set(ap_src)
    for author in range(config.num_authors):
        if author in covered:
            continue
        area = author_labels[author]
        candidates = np.flatnonzero(paper_area == area)
        paper = int(rng.choice(candidates)) if candidates.size else int(
            rng.integers(0, config.num_papers)
        )
        ap_src.append(author)
        ap_dst.append(paper)

    # --- Assemble the network ------------------------------------------ #
    hin = HIN(name="dblp-synthetic")
    hin.add_node_type("A", config.num_authors)
    hin.add_node_type("P", config.num_papers)
    hin.add_node_type("C", config.num_conferences)
    hin.add_edges("writes", "A", "P", ap_src, ap_dst)
    hin.add_edges("published_at", "P", "C", pc_src, pc_dst)

    # --- Features ------------------------------------------------------ #
    prototypes = class_prototypes(
        rng, num_classes, config.feature_dim, separation=config.feature_separation
    )
    paper_features = prototypes[paper_area] + rng.normal(
        0.0, config.feature_noise, size=(config.num_papers, config.feature_dim)
    )
    # Author features = mean of their papers' features ("averaged word
    # embeddings of the author's keywords") + small noise.
    author_features = np.zeros((config.num_authors, config.feature_dim))
    paper_lists: List[List[int]] = [[] for _ in range(config.num_authors)]
    for a, p in zip(ap_src, ap_dst):
        paper_lists[a].append(p)
    for author, papers in enumerate(paper_lists):
        author_features[author] = paper_features[papers].mean(axis=0)
    author_features += rng.normal(
        0.0, 0.5 * config.feature_noise, size=author_features.shape
    )
    conference_features = prototypes[conference_areas] + rng.normal(
        0.0, config.feature_noise, size=(config.num_conferences, config.feature_dim)
    )

    hin.set_features("A", author_features)
    hin.set_features("P", paper_features)
    hin.set_features("C", conference_features)
    hin.set_labels("A", author_labels)

    metapaths = [MetaPath.parse("APA"), MetaPath.parse("APAPA"), MetaPath.parse("APCPA")]
    return HINDataset(
        name="dblp",
        hin=hin,
        target_type="A",
        metapaths=metapaths,
        class_names=list(CLASS_NAMES),
    ).validate()
