"""Train/validation/test split machinery.

The paper varies the training-set fraction over {2%, 5%, 10%, 20%}
(Table I) and feeds *the same splits* to every method.  Splits here are
stratified by class and guarantee at least one training node per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

TRAIN_FRACTIONS = (0.02, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class Split:
    """Index sets for one train/val/test partition."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self):
        total = self.train.size + self.val.size + self.test.size
        combined = np.concatenate([self.train, self.val, self.test])
        if np.unique(combined).size != total:
            raise ValueError("split index sets overlap")

    @property
    def sizes(self) -> Dict[str, int]:
        return {"train": self.train.size, "val": self.val.size, "test": self.test.size}


def stratified_split(
    labels: np.ndarray,
    train_fraction: float,
    val_fraction: float = 0.10,
    rng: np.random.Generator | None = None,
    seed: int = 0,
) -> Split:
    """Class-stratified split with a fixed validation fraction.

    Each class contributes ``round(train_fraction * class_size)`` training
    nodes (at least 1) and ``round(val_fraction * class_size)`` validation
    nodes (at least 1); the rest are test nodes.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train + val fractions must leave room for a test set")
    labels = np.asarray(labels)
    if rng is None:
        rng = np.random.default_rng(seed)

    train_idx: List[np.ndarray] = []
    val_idx: List[np.ndarray] = []
    test_idx: List[np.ndarray] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        if members.size < 3:
            raise ValueError(
                f"class {cls} has only {members.size} members; cannot split 3 ways"
            )
        members = rng.permutation(members)
        n_train = max(1, int(round(train_fraction * members.size)))
        n_val = max(1, int(round(val_fraction * members.size)))
        # Keep at least one test node per class.
        n_train = min(n_train, members.size - 2)
        n_val = min(n_val, members.size - n_train - 1)
        train_idx.append(members[:n_train])
        val_idx.append(members[n_train: n_train + n_val])
        test_idx.append(members[n_train + n_val:])

    return Split(
        train=np.sort(np.concatenate(train_idx)),
        val=np.sort(np.concatenate(val_idx)),
        test=np.sort(np.concatenate(test_idx)),
    )


def split_grid(
    labels: np.ndarray,
    fractions: Sequence[float] = TRAIN_FRACTIONS,
    repeats: int = 1,
    val_fraction: float = 0.10,
    seed: int = 0,
) -> Dict[float, List[Split]]:
    """The full Table-I grid: per train fraction, ``repeats`` random splits.

    Every method in a contest is evaluated on the identical splits, as the
    paper does ("we feed all the methods the same training/validation/test
    set splits").
    """
    grid: Dict[float, List[Split]] = {}
    for fraction in fractions:
        grid[fraction] = [
            stratified_split(
                labels, fraction, val_fraction=val_fraction,
                seed=seed * 10_000 + int(fraction * 1000) * 100 + repeat,
            )
            for repeat in range(repeats)
        ]
    return grid


def corrupt_labels(
    labels: np.ndarray,
    indices: np.ndarray,
    noise_rate: float,
    num_classes: int,
    rng: np.random.Generator | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Copy of ``labels`` with a fraction of ``indices`` flipped uniformly.

    Robustness-study helper: flips ``round(noise_rate * len(indices))``
    entries (training labels, typically) to a *different* uniformly-random
    class.  The returned array is a copy; entries outside ``indices`` are
    untouched.
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise ValueError(f"noise_rate must be in [0, 1], got {noise_rate}")
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes to flip, got {num_classes}")
    labels = np.asarray(labels).copy()
    indices = np.asarray(indices)
    if rng is None:
        rng = np.random.default_rng(seed)
    n_flip = int(round(noise_rate * indices.size))
    if n_flip == 0:
        return labels
    victims = rng.choice(indices, size=n_flip, replace=False)
    # Shift by a nonzero offset mod num_classes: always a different class.
    offsets = rng.integers(1, num_classes, size=n_flip)
    labels[victims] = (labels[victims] + offsets) % num_classes
    return labels
