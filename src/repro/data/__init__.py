"""Synthetic HIN dataset generators.

The paper evaluates on DBLP, Yelp, Freebase and (for scale) AMiner.  Those
dumps are not available offline, so this package provides schema-faithful
synthetic generators with *planted* label structure that reproduces the
semantics the paper's analysis relies on:

- :mod:`~repro.data.dblp` — authors/papers/conferences; the venue
  meta-path ``APCPA`` is a strong label signal while co-authorship ``APA``
  is sparse (Fig. 6a's attention finding).
- :mod:`~repro.data.yelp` — businesses/reviews/users/keywords; review
  keywords (``BRKRB``) indicate the food category directly while user
  co-visits (``BRURB``) are weak (Fig. 6b).
- :mod:`~repro.data.freebase` — movies/actors/directors/producers; all
  three meta-paths carry moderate genre signal and the task is noisy
  (Fig. 6c, lower absolute F1 as in Table I).
- :mod:`~repro.data.aminer` — a larger paper-classification network with
  ``{PAP, PCP}`` used by the scalability study (Table II / Fig. 8).

All generators take a dataclass config (sizes, noise levels, seed) and
return an :class:`~repro.data.base.HINDataset`.
"""

from repro.data.base import HINDataset, class_prototypes, noisy_features
from repro.data.dblp import DBLPConfig, make_dblp
from repro.data.yelp import YelpConfig, make_yelp
from repro.data.freebase import FreebaseConfig, make_freebase
from repro.data.aminer import AMinerConfig, make_aminer
from repro.data.splits import Split, corrupt_labels, stratified_split, split_grid
from repro.data.registry import DATASETS, load_dataset

__all__ = [
    "HINDataset",
    "class_prototypes",
    "noisy_features",
    "DBLPConfig",
    "make_dblp",
    "YelpConfig",
    "make_yelp",
    "FreebaseConfig",
    "make_freebase",
    "AMinerConfig",
    "make_aminer",
    "Split",
    "stratified_split",
    "split_grid",
    "corrupt_labels",
    "DATASETS",
    "load_dataset",
]
