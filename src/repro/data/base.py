"""Shared dataset plumbing: the :class:`HINDataset` container and feature
synthesis helpers used by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


@dataclass
class HINDataset:
    """A classification-ready HIN bundle.

    Attributes
    ----------
    name:
        Dataset identifier (``"dblp"``, ``"yelp"``, ...).
    hin:
        The network; features for every node type and labels for
        ``target_type`` are already attached.
    target_type:
        The node type to classify.
    metapaths:
        The paper's meta-path set for this dataset.
    class_names:
        Human-readable label names, index-aligned with label ids.
    """

    name: str
    hin: HIN
    target_type: str
    metapaths: List[MetaPath]
    class_names: List[str]

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def labels(self) -> np.ndarray:
        return self.hin.labels(self.target_type)

    @property
    def features(self) -> np.ndarray:
        return self.hin.features(self.target_type)

    @property
    def num_targets(self) -> int:
        return self.hin.num_nodes(self.target_type)

    def validate(self) -> "HINDataset":
        """Sanity-check the bundle; raises on inconsistency."""
        schema = self.hin.schema()
        for metapath in self.metapaths:
            metapath.validate(schema)
            if not metapath.endpoints_match(self.target_type):
                raise ValueError(
                    f"meta-path {metapath.name!r} does not start/end at "
                    f"target type {self.target_type!r}"
                )
        labels = self.labels
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise ValueError("labels out of range for declared classes")
        present = np.unique(labels)
        if present.size < self.num_classes:
            raise ValueError(
                f"only {present.size}/{self.num_classes} classes present in labels"
            )
        return self

    def __repr__(self) -> str:
        paths = ", ".join(m.name for m in self.metapaths)
        return (
            f"HINDataset({self.name!r}, target={self.target_type!r}, "
            f"n={self.num_targets}, classes={self.num_classes}, metapaths=[{paths}])"
        )


def class_prototypes(
    rng: np.random.Generator, num_classes: int, dim: int, separation: float = 1.0
) -> np.ndarray:
    """Random unit-ish prototype vector per class, scaled by ``separation``.

    Stands in for "the average GloVe embedding of an area's keywords": each
    class gets a direction in feature space; instances scatter around it.
    """
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, dim))
    norms = np.linalg.norm(prototypes, axis=1, keepdims=True)
    return separation * prototypes / norms


def noisy_features(
    prototypes: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    noise: float = 1.0,
) -> np.ndarray:
    """Per-node features = class prototype + isotropic Gaussian noise."""
    labels = np.asarray(labels)
    dim = prototypes.shape[1]
    return prototypes[labels] + rng.normal(0.0, noise, size=(labels.shape[0], dim))


def mixture_labels(
    rng: np.random.Generator, count: int, num_classes: int, skew: Optional[np.ndarray] = None
) -> np.ndarray:
    """Sample labels, optionally with a non-uniform class prior ``skew``.

    Guarantees every class appears at least once (resamples the first
    ``num_classes`` entries deterministically if needed).
    """
    if count < num_classes:
        raise ValueError(f"need at least {num_classes} nodes, got {count}")
    if skew is None:
        labels = rng.integers(0, num_classes, size=count)
    else:
        skew = np.asarray(skew, dtype=np.float64)
        skew = skew / skew.sum()
        labels = rng.choice(num_classes, size=count, p=skew)
    # Ensure coverage of all classes.
    present = set(np.unique(labels).tolist())
    missing = [c for c in range(num_classes) if c not in present]
    for slot, cls in enumerate(missing):
        labels[slot] = cls
    return labels.astype(np.int64)


def biased_choice(
    rng: np.random.Generator,
    own_pool: np.ndarray,
    other_pool: np.ndarray,
    affinity: float,
) -> int:
    """Pick from ``own_pool`` with probability ``affinity``, else from the other.

    The basic mechanism for planting label-correlated edges: e.g. an author
    publishing at a venue of their own research area with probability
    ``affinity``.
    """
    use_own = own_pool.size > 0 and (other_pool.size == 0 or rng.random() < affinity)
    pool = own_pool if use_own else other_pool
    return int(pool[rng.integers(0, pool.size)])
