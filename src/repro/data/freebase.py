"""Synthetic Freebase-Movie HIN.

Schema (paper §V-A): Movies (M), Actors (A), Directors (D), Producers (P);
relations M–A, M–D, M–P.  The task is to classify movies into three genres
{Action, Comedy, Drama}.  Meta-paths: {MAM, MDM, MPM}.

Planted structure mirrors the paper's findings:

- Actors, directors and producers all have *moderate* genre affinity, so
  all three meta-paths are useful with ``MAM``/``MDM`` slightly stronger
  than ``MPM`` (Fig. 6c).
- Movies carry only one-hot identity features (the paper encodes movies
  one-hot), so absolutely everything must come from structure — and the
  genre signal is deliberately noisy, which keeps absolute F1 well below
  DBLP/Yelp as in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.data.base import HINDataset, mixture_labels
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath

CLASS_NAMES = ["Action", "Comedy", "Drama"]


@dataclass
class FreebaseConfig:
    """Knobs for the synthetic Freebase generator (~6x scale-down).

    The movie count is kept high enough that a 2% training fraction still
    yields ~12 labeled movies; at a 10x scale-down the 2% regime would
    have only ~7 labels, far harsher than the paper's (~70 labels).
    """

    num_movies: int = 600
    num_actors: int = 1800
    num_directors: int = 300
    num_producers: int = 500
    actors_per_movie: int = 6
    directors_per_movie: int = 1
    producers_per_movie: int = 2
    actor_affinity: float = 0.62
    director_affinity: float = 0.66
    producer_affinity: float = 0.55
    seed: int = 0


def _attach(
    rng: np.random.Generator,
    movie_labels: np.ndarray,
    pools: List[np.ndarray],
    per_movie: int,
    affinity: float,
    population: int,
) -> tuple:
    """Connect each movie to ``per_movie`` crew members with genre affinity."""
    src: List[int] = []
    dst: List[int] = []
    for movie, genre in enumerate(movie_labels):
        chosen = set()
        for _ in range(per_movie):
            if rng.random() < affinity and pools[genre].size:
                person = int(rng.choice(pools[genre]))
            else:
                person = int(rng.integers(0, population))
            if person not in chosen:
                chosen.add(person)
                src.append(movie)
                dst.append(person)
    return src, dst


def make_freebase(config: FreebaseConfig | None = None) -> HINDataset:
    """Generate the synthetic Freebase-Movie dataset."""
    config = config or FreebaseConfig()
    rng = np.random.default_rng(config.seed)
    num_classes = len(CLASS_NAMES)

    movie_labels = mixture_labels(rng, config.num_movies, num_classes)
    actor_genre = mixture_labels(rng, config.num_actors, num_classes)
    director_genre = mixture_labels(rng, config.num_directors, num_classes)
    producer_genre = mixture_labels(rng, config.num_producers, num_classes)

    actor_pools = [np.flatnonzero(actor_genre == c) for c in range(num_classes)]
    director_pools = [np.flatnonzero(director_genre == c) for c in range(num_classes)]
    producer_pools = [np.flatnonzero(producer_genre == c) for c in range(num_classes)]

    ma_src, ma_dst = _attach(
        rng, movie_labels, actor_pools, config.actors_per_movie,
        config.actor_affinity, config.num_actors,
    )
    md_src, md_dst = _attach(
        rng, movie_labels, director_pools, config.directors_per_movie,
        config.director_affinity, config.num_directors,
    )
    mp_src, mp_dst = _attach(
        rng, movie_labels, producer_pools, config.producers_per_movie,
        config.producer_affinity, config.num_producers,
    )

    hin = HIN(name="freebase-synthetic")
    hin.add_node_type("M", config.num_movies)
    hin.add_node_type("A", config.num_actors)
    hin.add_node_type("D", config.num_directors)
    hin.add_node_type("P", config.num_producers)
    hin.add_edges("stars", "M", "A", ma_src, ma_dst)
    hin.add_edges("directed_by", "M", "D", md_src, md_dst)
    hin.add_edges("produced_by", "M", "P", mp_src, mp_dst)

    # One-hot movie features, exactly as in the paper.  Crew features are
    # random identifiers: a person's genre affinity is latent (it shows up
    # only through which movies they work on), as in the real Freebase data.
    hin.set_features("M", np.eye(config.num_movies))
    hin.set_features("A", rng.normal(0.0, 1.0, size=(config.num_actors, 8)))
    hin.set_features("D", rng.normal(0.0, 1.0, size=(config.num_directors, 8)))
    hin.set_features("P", rng.normal(0.0, 1.0, size=(config.num_producers, 8)))
    hin.set_labels("M", movie_labels)

    metapaths = [MetaPath.parse("MAM"), MetaPath.parse("MDM"), MetaPath.parse("MPM")]
    return HINDataset(
        name="freebase",
        hin=hin,
        target_type="M",
        metapaths=metapaths,
        class_names=list(CLASS_NAMES),
    ).validate()
