"""Plain-text table rendering for experiment outputs.

The benches print Table-I-style grids (methods × contests) so the paper's
rows can be compared side by side with the reproduction's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render a fixed-width table.

    Numeric cells are formatted with ``float_format``; everything else via
    ``str``.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_contest_table(
    results: Dict[str, Dict[str, float]],
    methods: Sequence[str],
    contests: Sequence[str],
    title: Optional[str] = None,
    highlight_best: bool = True,
) -> str:
    """Render ``results[method][contest] -> score`` with per-contest winners.

    The winner of each contest column is marked with ``*`` (mirroring the
    paper's bold entries in Table I).
    """
    best: Dict[str, float] = {}
    for contest in contests:
        scores = [
            results[m][contest]
            for m in methods
            if contest in results.get(m, {})
        ]
        best[contest] = max(scores) if scores else float("nan")

    rows: List[List[str]] = []
    for method in methods:
        row: List[str] = [method]
        for contest in contests:
            value = results.get(method, {}).get(contest)
            if value is None:
                row.append("-")
                continue
            cell = f"{value:.4f}"
            if highlight_best and value == best[contest]:
                cell += "*"
            row.append(cell)
        rows.append(row)
    return format_table(["method"] + list(contests), rows, title=title)
