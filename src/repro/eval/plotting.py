"""Terminal (ASCII) plotting for experiment outputs.

The paper's Figs. 7–9 are line charts; in a terminal-only environment we
render them as fixed-size ASCII grids so the benchmark output is directly
eyeballable.  Deterministic and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, float]


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_plot(
    series: Dict[str, Sequence[Point]],
    width: int = 70,
    height: int = 16,
    title: Optional[str] = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on one ASCII grid.

    Each series is drawn with its own marker character (``*``, ``o``,
    ``+``, ...); a legend maps markers to names.  Returns the plot as a
    string (the caller prints it).
    """
    markers = "*o+x#@%&"
    all_points = [p for points in series.values() for p in points]
    if not all_points:
        return "(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            col = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_high:.3f} ┤" if ylabel == "" else f"{ylabel} {y_high:.3f} ┤")
    for row in grid:
        lines.append("       │" + "".join(row))
    lines.append(f"{y_low:.3f} ┼" + "─" * width)
    lines.append(f"        {x_low:.2f}{' ' * max(1, width - 18)}{x_high:.2f}  {xlabel}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append("        " + legend)
    return "\n".join(lines)


def ascii_bars(
    values: Dict[str, float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart for weight-style outputs (Fig. 6)."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    scale = width / peak if peak > 0 else 0.0
    name_width = max(len(name) for name in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * int(round(value * scale))
        lines.append(f"  {name.ljust(name_width)} {value:.3f} {bar}")
    return "\n".join(lines)


def convergence_plot(
    recorders: Dict[str, "object"],
    width: int = 70,
    height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Fig.-7-style plot from named ConvergenceRecorder objects."""
    series = {
        name: recorder.curve()
        for name, recorder in recorders.items()
        if getattr(recorder, "records", None)
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        title=title,
        xlabel="seconds",
    )
