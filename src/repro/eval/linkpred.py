"""Link-prediction evaluation of embedding quality.

The second standard downstream task for network embeddings (§II of the
paper: "link prediction, classification and recommendation"): hold out a
fraction of one relation's edges, re-embed the reduced HIN, and check
that held-out (positive) pairs outscore never-linked (negative) pairs.

Protocol
--------
1. :func:`holdout_relation_split` removes a random fraction of a chosen
   relation's edges and returns the reduced HIN plus positive/negative
   pair sets in **global id space** (negatives are sampled type-correctly
   from unlinked pairs of the same relation).
2. Any embedding method runs on the reduced HIN.
3. :func:`link_prediction_report` scores pairs (dot / cosine / Hadamard)
   and reports ROC-AUC and average precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.hin.graph import HIN


@dataclass
class LinkSplit:
    """A link-prediction task instance.

    Attributes
    ----------
    hin:
        The reduced network (held-out edges removed, everything else —
        node types, features, labels, other relations — preserved).
    relation:
        Name of the relation evaluated.
    positives / negatives:
        ``(m, 2)`` global-id pairs: held-out true edges, and sampled
        never-linked pairs of the same (src type, dst type) signature.
    """

    hin: HIN
    relation: str
    positives: np.ndarray
    negatives: np.ndarray


def _rebuild_without(
    hin: HIN, relation_name: str, keep_mask: np.ndarray
) -> HIN:
    """Copy an HIN, dropping the masked-out edges of one forward relation."""
    reduced = HIN(name=f"{hin.name}-holdout")
    for node_type in hin.node_types:
        reduced.add_node_type(node_type, hin.num_nodes(node_type))
        if hin.has_features(node_type):
            reduced.set_features(node_type, hin.features(node_type))
        if hin.has_labels(node_type):
            reduced.set_labels(node_type, hin.labels(node_type))
    for relation in hin.relations:
        if relation.name.endswith("_rev"):
            continue
        matrix = hin.relation_matrix(relation.name).tocoo()
        src, dst = matrix.row, matrix.col
        if relation.name == relation_name:
            src, dst = src[keep_mask], dst[keep_mask]
        reduced.add_edges(relation.name, relation.src_type, relation.dst_type, src, dst)
    return reduced


def holdout_relation_split(
    hin: HIN,
    relation_name: str,
    fraction: float = 0.2,
    negatives_per_positive: int = 1,
    seed: int = 0,
) -> LinkSplit:
    """Hold out ``fraction`` of a forward relation's edges for evaluation.

    Negative pairs are drawn uniformly from (src, dst) combinations of the
    relation's type signature that are *not* edges in the full graph, one
    batch of ``negatives_per_positive`` per held-out edge.
    """
    if relation_name.endswith("_rev"):
        raise ValueError("hold out the forward relation, not its reverse")
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    if negatives_per_positive < 1:
        raise ValueError("negatives_per_positive must be >= 1")
    relation = hin.relation_info(relation_name)
    matrix = hin.relation_matrix(relation_name).tocoo()
    num_edges = matrix.nnz
    if num_edges < 2:
        raise ValueError(f"relation {relation_name!r} has too few edges to split")

    rng = np.random.default_rng(seed)
    num_held = max(1, int(round(fraction * num_edges)))
    held = np.zeros(num_edges, dtype=bool)
    held[rng.choice(num_edges, size=num_held, replace=False)] = True

    offsets = hin.global_offsets()
    src_offset = offsets[relation.src_type]
    dst_offset = offsets[relation.dst_type]
    positives = np.stack(
        [matrix.row[held] + src_offset, matrix.col[held] + dst_offset], axis=1
    )

    # Rejection-sample type-correct negatives absent from the *full* graph.
    existing = set(zip(matrix.row.tolist(), matrix.col.tolist()))
    n_src = hin.num_nodes(relation.src_type)
    n_dst = hin.num_nodes(relation.dst_type)
    if len(existing) >= n_src * n_dst:
        raise ValueError("relation is complete; no negative pairs exist")
    wanted = num_held * negatives_per_positive
    negatives = []
    while len(negatives) < wanted:
        batch_src = rng.integers(0, n_src, size=2 * wanted)
        batch_dst = rng.integers(0, n_dst, size=2 * wanted)
        for s, d in zip(batch_src.tolist(), batch_dst.tolist()):
            if (s, d) not in existing:
                existing.add((s, d))  # avoid duplicate negatives
                negatives.append((s + src_offset, d + dst_offset))
                if len(negatives) == wanted:
                    break
    reduced = _rebuild_without(hin, relation_name, ~held)
    return LinkSplit(
        hin=reduced,
        relation=relation_name,
        positives=positives,
        negatives=np.asarray(negatives, dtype=np.int64),
    )


def score_pairs(
    embeddings: np.ndarray,
    pairs: np.ndarray,
    op: str = "dot",
    context_embeddings: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Score candidate links from node embeddings.

    ``op`` is one of ``"dot"``, ``"cosine"``, or ``"hadamard"`` (the sum
    of the elementwise product — identical ranking to dot, kept for
    parity with common link-prediction toolkits that expose it).

    For *second-order* SGNS embeddings (LINE-2nd, PTE) pass the context
    table as ``context_embeddings``: the destination endpoint is then
    looked up in the context table, which is the score those objectives
    actually optimize.  Symmetric embeddings leave it ``None``.
    """
    pairs = np.asarray(pairs)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must be (m, 2), got {pairs.shape}")
    destination_table = (
        embeddings if context_embeddings is None else context_embeddings
    )
    if destination_table.shape != embeddings.shape:
        raise ValueError("context_embeddings must match embeddings' shape")
    u = embeddings[pairs[:, 0]]
    v = destination_table[pairs[:, 1]]
    if op == "dot" or op == "hadamard":
        return (u * v).sum(axis=1)
    if op == "cosine":
        norms = np.linalg.norm(u, axis=1) * np.linalg.norm(v, axis=1)
        return (u * v).sum(axis=1) / np.maximum(norms, 1e-12)
    raise ValueError(f"unknown op {op!r}; use 'dot', 'cosine' or 'hadamard'")


def roc_auc(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """AUC via the Mann–Whitney rank statistic (ties count half)."""
    positive_scores = np.asarray(positive_scores, dtype=np.float64)
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if positive_scores.size == 0 or negative_scores.size == 0:
        raise ValueError("need at least one positive and one negative score")
    all_scores = np.concatenate([positive_scores, negative_scores])
    order = np.argsort(all_scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, all_scores.size + 1)
    # Average ranks within tied groups.
    sorted_scores = all_scores[order]
    tie_start = 0
    for index in range(1, all_scores.size + 1):
        if index == all_scores.size or sorted_scores[index] != sorted_scores[tie_start]:
            ranks[order[tie_start:index]] = 0.5 * (tie_start + 1 + index)
            tie_start = index
    n_pos = positive_scores.size
    n_neg = negative_scores.size
    rank_sum = ranks[:n_pos].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def average_precision(
    positive_scores: np.ndarray, negative_scores: np.ndarray
) -> float:
    """AP = mean over positives of precision at each positive's rank."""
    positive_scores = np.asarray(positive_scores, dtype=np.float64)
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if positive_scores.size == 0 or negative_scores.size == 0:
        raise ValueError("need at least one positive and one negative score")
    scores = np.concatenate([positive_scores, negative_scores])
    labels = np.concatenate(
        [np.ones(positive_scores.size), np.zeros(negative_scores.size)]
    )
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    hits = np.cumsum(labels)
    precision_at = hits / np.arange(1, labels.size + 1)
    return float((precision_at * labels).sum() / labels.sum())


def link_prediction_report(
    embeddings: np.ndarray,
    split: LinkSplit,
    op: str = "dot",
    context_embeddings: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """AUC/AP of an embedding table (global id space) on a link split."""
    positive = score_pairs(
        embeddings, split.positives, op=op, context_embeddings=context_embeddings
    )
    negative = score_pairs(
        embeddings, split.negatives, op=op, context_embeddings=context_embeddings
    )
    return {
        "auc": roc_auc(positive, negative),
        "ap": average_precision(positive, negative),
        "num_positives": float(split.positives.shape[0]),
        "num_negatives": float(split.negatives.shape[0]),
    }
