"""Markdown report generation from contest results.

Turns :class:`~repro.eval.harness.ContestResult` lists into the artifacts
the paper presents: a Table-I-style score grid (winner bolded per
contest), a win-count summary, and a pairwise-comparison section — ready
to paste into EXPERIMENTS.md or a README.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.harness import ContestResult
from repro.eval.statistics import compare_methods, count_wins, scores_by_contest


def _contest_sort_key(contest_id: str):
    dataset, fraction = contest_id.split("@")
    return (dataset, int(fraction.rstrip("%")))


def markdown_score_table(
    results: Sequence[ContestResult],
    metric: str = "micro_f1",
    bold_winners: bool = True,
    decimals: int = 4,
) -> str:
    """Markdown grid ``method × contest``; per-contest winners in bold."""
    table = scores_by_contest(results, metric)
    if not table:
        raise ValueError("no results to tabulate")
    contests = sorted(table, key=_contest_sort_key)
    methods = sorted({m for scores in table.values() for m in scores})

    lines = ["| method | " + " | ".join(contests) + " |"]
    lines.append("|---" * (len(contests) + 1) + "|")
    for method in methods:
        cells: List[str] = []
        for contest in contests:
            scores = table[contest]
            if method not in scores:
                cells.append("—")
                continue
            value = f"{scores[method]:.{decimals}f}"
            if bold_winners and scores[method] == max(scores.values()):
                value = f"**{value}**"
            cells.append(value)
        lines.append(f"| {method} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def markdown_win_summary(
    results: Sequence[ContestResult],
    metric: str = "micro_f1",
    tie_tolerance: float = 0.0,
) -> str:
    """One-line-per-method win counts, best first."""
    wins = count_wins(results, metric, tie_tolerance=tie_tolerance)
    num_contests = len(scores_by_contest(results, metric))
    lines = [f"Contests won ({metric}, tie tolerance {tie_tolerance:g}):", ""]
    for method, won in sorted(wins.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"- **{method}**: {won}/{num_contests}")
    return "\n".join(lines)


def markdown_pairwise_section(
    results: Sequence[ContestResult],
    reference: str,
    metric: str = "micro_f1",
) -> str:
    """Reference-vs-everyone comparison table with mean gaps and p-values."""
    table = scores_by_contest(results, metric)
    methods = sorted({m for scores in table.values() for m in scores})
    if reference not in methods:
        raise ValueError(f"unknown reference method {reference!r}")
    lines = [
        f"| {reference} vs | contests | wins | losses | ties | mean gap | p (paired t) |",
        "|---|---|---|---|---|---|---|",
    ]
    for other in methods:
        if other == reference:
            continue
        c = compare_methods(results, reference, other, metric)
        lines.append(
            f"| {other} | {c.contests} | {c.wins_a} | {c.wins_b} | {c.ties} "
            f"| {c.mean_gap:+.4f} | {c.p_value:.3f} |"
        )
    return "\n".join(lines)


def markdown_report(
    results: Sequence[ContestResult],
    title: str,
    reference: Optional[str] = None,
    metric: str = "micro_f1",
    tie_tolerance: float = 0.0,
) -> str:
    """Full report: title, score grid, win summary, optional pairwise section."""
    sections = [
        f"# {title}",
        "",
        f"Metric: `{metric}`.",
        "",
        markdown_score_table(results, metric),
        "",
        markdown_win_summary(results, metric, tie_tolerance=tie_tolerance),
    ]
    if reference is not None:
        sections += ["", markdown_pairwise_section(results, reference, metric)]
    return "\n".join(sections) + "\n"
