"""Convergence recording for the efficiency study (Fig. 7 / Fig. 8).

Trainers append an :class:`EpochRecord` per epoch; benches plot/compare
"seconds elapsed vs validation Micro-F1" curves across methods.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class EpochRecord:
    """One epoch's bookkeeping."""

    epoch: int
    elapsed_seconds: float
    train_loss: float
    val_metric: float


@dataclass
class ConvergenceRecorder:
    """Wall-clock + metric trace of one training run."""

    method: str = ""
    records: List[EpochRecord] = field(default_factory=list)
    _start: Optional[float] = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def log(self, epoch: int, train_loss: float, val_metric: float) -> None:
        if self._start is None:
            self.start()
        self.records.append(
            EpochRecord(
                epoch=epoch,
                elapsed_seconds=time.perf_counter() - self._start,
                train_loss=float(train_loss),
                val_metric=float(val_metric),
            )
        )

    @property
    def total_seconds(self) -> float:
        return self.records[-1].elapsed_seconds if self.records else 0.0

    @property
    def best_val(self) -> float:
        return max((r.val_metric for r in self.records), default=float("nan"))

    def time_to_reach(self, threshold: float) -> Optional[float]:
        """Seconds until the validation metric first reached ``threshold``."""
        for record in self.records:
            if record.val_metric >= threshold:
                return record.elapsed_seconds
        return None

    def curve(self) -> List[tuple]:
        """(seconds, val_metric) pairs, ready for plotting or tabulation."""
        return [(r.elapsed_seconds, r.val_metric) for r in self.records]
