"""The contest harness: run methods × datasets × train-fractions grids.

A *method* here is any callable with the signature

    method(dataset: HINDataset, split: Split, seed: int) -> MethodOutput

returning test-set predictions (and optionally a convergence trace).  The
baseline registry (:mod:`repro.baselines.registry`) provides such
callables for every method in Table I; ConCH's comes from
:mod:`repro.core`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.base import HINDataset
from repro.data.splits import Split, stratified_split
from repro.eval.metrics import macro_f1, micro_f1
from repro.eval.timing import ConvergenceRecorder


@dataclass
class MethodOutput:
    """What a method returns for one (dataset, split) run."""

    test_predictions: np.ndarray
    recorder: Optional[ConvergenceRecorder] = None
    extras: Dict[str, object] = field(default_factory=dict)
    #: Optional per-class scores ``(len(split.test), num_classes)`` for
    #: the same test nodes, higher = more likely.  Any consistent scale
    #: works: probabilities pass through, non-negative scores are
    #: row-normalized, anything with negatives is treated as logits
    #: (softmax) — see :func:`scores_to_proba`.  Methods that only
    #: produce hard labels leave this ``None`` and probability consumers
    #: (``MethodEstimator.predict_proba``) degrade to one-hot.
    test_scores: Optional[np.ndarray] = None


def scores_to_proba(scores: np.ndarray) -> np.ndarray:
    """Normalize a ``(n, r)`` class-score matrix into row distributions.

    Probability-shaped inputs (non-negative) are row-normalized — a
    no-op when rows already sum to 1 — with all-zero rows mapped to the
    uniform distribution (the method expressed no preference).  Inputs
    with negative entries are read as logits and pushed through a
    numerically-stable softmax.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D (n, r), got shape {scores.shape}")
    if scores.size == 0:
        return scores.copy()
    if scores.min() >= 0.0:
        row_sums = scores.sum(axis=1, keepdims=True)
        proba = np.divide(
            scores,
            row_sums,
            out=np.full_like(scores, 1.0 / scores.shape[1]),
            where=row_sums > 0,
        )
        return proba
    from repro.eval.metrics import softmax

    return softmax(scores)


MethodFn = Callable[[HINDataset, Split, int], MethodOutput]


def method_from_estimator(
    factory: Callable[[HINDataset, int], "object"],
) -> MethodFn:
    """Adapt an estimator factory to the harness ``MethodFn`` contract.

    ``factory(dataset, seed)`` must return an unfitted
    :class:`repro.api.Estimator`; the wrapper fits it on the contest
    split and reports test-set predictions.  The inverse of
    :class:`repro.api.MethodEstimator` — together they make estimators
    and harness methods fully interchangeable.
    """

    def method(dataset: HINDataset, split: Split, seed: int) -> MethodOutput:
        estimator = factory(dataset, seed).fit(split)
        return MethodOutput(
            test_predictions=estimator.predict(split.test),
            test_scores=estimator.predict_proba(split.test),
        )

    return method


@dataclass
class ContestResult:
    """Scores of one method on one contest (possibly averaged over repeats)."""

    method: str
    dataset: str
    train_fraction: float
    micro_f1: float
    macro_f1: float
    micro_std: float = 0.0
    macro_std: float = 0.0
    seconds: float = 0.0

    @property
    def contest_id(self) -> str:
        return f"{self.dataset}@{int(self.train_fraction * 100)}%"


def run_method_on_split(
    method: MethodFn,
    dataset: HINDataset,
    split: Split,
    seed: int = 0,
) -> Dict[str, float]:
    """Run one method once; returns micro/macro F1 and wall-clock seconds."""
    start = time.perf_counter()
    output = method(dataset, split, seed)
    elapsed = time.perf_counter() - start
    truth = dataset.labels[split.test]
    predictions = np.asarray(output.test_predictions)
    if predictions.shape != truth.shape:
        raise ValueError(
            f"method returned {predictions.shape} predictions for "
            f"{truth.shape} test nodes"
        )
    return {
        "micro_f1": micro_f1(truth, predictions),
        "macro_f1": macro_f1(truth, predictions, dataset.num_classes),
        "seconds": elapsed,
    }


def run_contest(
    methods: Dict[str, MethodFn],
    dataset: HINDataset,
    train_fractions: Sequence[float] = (0.02, 0.05, 0.10, 0.20),
    repeats: int = 1,
    val_fraction: float = 0.10,
    seed: int = 0,
    verbose: bool = False,
) -> List[ContestResult]:
    """The Table-I protocol: same splits fed to every method.

    For each train fraction, ``repeats`` random stratified splits are
    generated once and shared across methods; scores are averaged.
    """
    results: List[ContestResult] = []
    for fraction in train_fractions:
        splits = [
            stratified_split(
                dataset.labels,
                fraction,
                val_fraction=val_fraction,
                seed=seed * 1000 + int(fraction * 1000) + repeat,
            )
            for repeat in range(repeats)
        ]
        for name, method in methods.items():
            micro_scores: List[float] = []
            macro_scores: List[float] = []
            seconds = 0.0
            for repeat, split in enumerate(splits):
                scores = run_method_on_split(
                    method, dataset, split, seed=seed + repeat
                )
                micro_scores.append(scores["micro_f1"])
                macro_scores.append(scores["macro_f1"])
                seconds += scores["seconds"]
            result = ContestResult(
                method=name,
                dataset=dataset.name,
                train_fraction=fraction,
                micro_f1=float(np.mean(micro_scores)),
                macro_f1=float(np.mean(macro_scores)),
                micro_std=float(np.std(micro_scores)),
                macro_std=float(np.std(macro_scores)),
                seconds=seconds / max(1, repeats),
            )
            results.append(result)
            if verbose:
                print(
                    f"{dataset.name} {int(fraction * 100):>2}% {name:<14} "
                    f"micro {result.micro_f1:.4f} macro {result.macro_f1:.4f} "
                    f"({result.seconds:.1f}s)"
                )
    return results


def summarize_results(
    results: Sequence[ContestResult], metric: str = "micro_f1"
) -> Dict[str, Dict[str, float]]:
    """Pivot results into ``{method: {contest_id: score}}`` for tabulation."""
    if metric not in ("micro_f1", "macro_f1"):
        raise ValueError(f"unknown metric {metric!r}")
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.method, {})[result.contest_id] = getattr(
            result, metric
        )
    return table
