"""Clustering-based evaluation of embedding quality.

HIN-embedding papers (metapath2vec, HIN2Vec, MAGNN, ...) complement the
classification contest with an *unsupervised* downstream task: k-means on
the learned target-node embeddings, scored against the ground-truth
classes with NMI / ARI / purity.  This module provides that protocol in
numpy so the embedding substrates (:mod:`repro.embedding`) and ConCH's
own embeddings can be compared off the classification axis.

All metrics take plain integer label arrays and are symmetric in the
cluster labelling (invariant to permuting cluster ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Joint count table ``C[i, j] = #{x : a[x] = i and b[x] = j}``."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("label arrays must be 1-D and the same length")
    if a.size == 0:
        raise ValueError("label arrays must be non-empty")
    if a.min() < 0 or b.min() < 0:
        raise ValueError("labels must be non-negative integers")
    table = np.zeros((a.max() + 1, b.max() + 1), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def _entropy(counts: np.ndarray) -> float:
    total = counts.sum()
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log(probabilities)).sum())


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization, in ``[0, 1]``.

    Returns 1.0 when the two labellings are identical up to renaming and
    0.0 when either labelling is constant (no information to share).
    """
    table = _contingency(a, b)
    n = table.sum()
    row = table.sum(axis=1)
    col = table.sum(axis=0)
    h_a = _entropy(row)
    h_b = _entropy(col)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both labellings constant: identical partitions
    if h_a == 0.0 or h_b == 0.0:
        return 0.0  # one side carries no information
    nonzero = table > 0
    joint = table[nonzero] / n
    outer = np.outer(row, col)[nonzero] / (n * n)
    mutual = float((joint * np.log(joint / outer)).sum())
    return max(0.0, mutual / (0.5 * (h_a + h_b)))


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """ARI: 1 for identical partitions, ~0 in expectation for random ones."""
    table = _contingency(a, b)
    n = table.sum()
    if n < 2:
        raise ValueError("ARI needs at least two samples")

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(np.float64)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(np.float64)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(np.float64)).sum()
    total = comb2(np.float64(n))
    expected = sum_rows * sum_cols / total
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def purity(truth: np.ndarray, clusters: np.ndarray) -> float:
    """Fraction of samples in their cluster's majority class, in ``(0, 1]``."""
    table = _contingency(clusters, truth)
    return float(table.max(axis=1).sum() / table.sum())


@dataclass
class KMeansResult:
    """Output of :func:`kmeans`: assignments, centers, and final inertia."""

    labels: np.ndarray
    centers: np.ndarray
    inertia: float


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared distance."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    centers[0] = points[rng.integers(0, n)]
    closest = ((points - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest.sum()
        if total == 0:
            centers[index:] = points[rng.integers(0, n, size=k - index)]
            break
        probabilities = closest / total
        centers[index] = points[rng.choice(n, p=probabilities)]
        distance = ((points - centers[index]) ** 2).sum(axis=1)
        closest = np.minimum(closest, distance)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    n_init: int = 4,
    tol: float = 1e-7,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding; best of ``n_init`` restarts.

    Empty clusters are re-seeded with the point farthest from its center,
    so the result always has exactly ``k`` non-empty clusters when
    ``k <= n``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n; got k={k}, n={n}")
    rng = np.random.default_rng(seed)

    best: KMeansResult | None = None
    for _ in range(max(1, n_init)):
        centers = _plus_plus_init(points, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        inertia = np.inf
        for _ in range(max_iter):
            distances = (
                (points ** 2).sum(axis=1, keepdims=True)
                - 2.0 * points @ centers.T
                + (centers ** 2).sum(axis=1)
            )
            labels = distances.argmin(axis=1)
            new_inertia = float(distances[np.arange(n), labels].sum())
            for cluster in range(k):
                members = labels == cluster
                if members.any():
                    centers[cluster] = points[members].mean(axis=0)
                else:
                    farthest = distances[np.arange(n), labels].argmax()
                    centers[cluster] = points[farthest]
            if inertia - new_inertia < tol:
                inertia = new_inertia
                break
            inertia = new_inertia
        if best is None or inertia < best.inertia:
            best = KMeansResult(labels=labels, centers=centers.copy(), inertia=inertia)
    assert best is not None
    return best


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette ``(b - a) / max(a, b)`` over all points, in ``[-1, 1]``.

    ``a`` is the mean intra-cluster distance, ``b`` the mean distance to
    the nearest other cluster.  Unlike NMI/ARI this needs no ground
    truth — it scores cluster *geometry*, so it is usable for selecting
    ``k``.  Points in singleton clusters score 0 by convention.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if points.ndim != 2 or labels.shape != (points.shape[0],):
        raise ValueError("points must be (n, d) with one label per row")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least two clusters")

    n = points.shape[0]
    distances = np.sqrt(
        np.maximum(
            (points ** 2).sum(axis=1, keepdims=True)
            - 2.0 * points @ points.T
            + (points ** 2).sum(axis=1),
            0.0,
        )
    )
    scores = np.zeros(n)
    cluster_masks = {cluster: labels == cluster for cluster in unique}
    for index in range(n):
        own = cluster_masks[labels[index]]
        own_size = own.sum()
        if own_size == 1:
            continue  # singleton: score 0 by convention
        a = distances[index][own].sum() / (own_size - 1)
        b = min(
            distances[index][mask].mean()
            for cluster, mask in cluster_masks.items()
            if cluster != labels[index]
        )
        scores[index] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def clustering_report(
    embeddings: np.ndarray,
    truth: np.ndarray,
    num_classes: int,
    seed: int = 0,
) -> Dict[str, float]:
    """k-means the embeddings into ``num_classes`` clusters and score them."""
    truth = np.asarray(truth)
    if embeddings.shape[0] != truth.shape[0]:
        raise ValueError("embeddings and truth must align")
    result = kmeans(embeddings, num_classes, seed=seed)
    report = {
        "nmi": normalized_mutual_information(truth, result.labels),
        "ari": adjusted_rand_index(truth, result.labels),
        "purity": purity(truth, result.labels),
        "inertia": result.inertia,
    }
    if num_classes >= 2:
        report["silhouette"] = silhouette_score(embeddings, result.labels)
    return report
