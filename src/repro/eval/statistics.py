"""Statistical analysis of contest results.

The paper averages 10 repeated runs per contest (§V-C) and argues from
win counts ("ConCH achieves the best performance in all 24 cases").  This
module makes those arguments checkable:

- :func:`mean_std` / :func:`bootstrap_ci` — aggregate repeated runs.
- :func:`paired_t_test` / :func:`wilcoxon_signed_rank` — paired
  significance of one method over another across contests.
- :func:`friedman_test` — omnibus ranking test over a whole method panel.
- :func:`win_matrix` / :func:`count_wins` — the "wins all 24 contests"
  bookkeeping, with tie tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.eval.harness import ContestResult


def mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty value sequence")
    return float(values.mean()), float(values.std())


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("empty value sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    resamples = rng.choice(values, size=(num_resamples, values.size), replace=True)
    means = resamples.mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Paired t-test of ``a`` vs ``b``; returns ``(statistic, p_value)``.

    Positive statistic means ``a``'s mean exceeds ``b``'s.  Identical
    sequences return ``(0, 1)`` rather than NaN.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"need equal-length 1-D sequences, got {a.shape}, {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two paired observations")
    if np.allclose(a, b):
        return 0.0, 1.0
    statistic, p_value = stats.ttest_rel(a, b)
    return float(statistic), float(p_value)


def wilcoxon_signed_rank(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Wilcoxon signed-rank test (non-parametric paired comparison)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"need equal-length 1-D sequences, got {a.shape}, {b.shape}")
    if np.allclose(a, b):
        return 0.0, 1.0
    statistic, p_value = stats.wilcoxon(a, b)
    return float(statistic), float(p_value)


def friedman_test(score_matrix: np.ndarray) -> Tuple[float, float]:
    """Friedman omnibus test over a ``(contests, methods)`` score matrix.

    Rejecting the null means the methods' rankings differ systematically
    across contests (the premise behind per-contest winner tables).
    """
    score_matrix = np.asarray(score_matrix, dtype=np.float64)
    if score_matrix.ndim != 2 or score_matrix.shape[1] < 3:
        raise ValueError(
            f"need a (contests, >=3 methods) matrix, got {score_matrix.shape}"
        )
    statistic, p_value = stats.friedmanchisquare(
        *[score_matrix[:, j] for j in range(score_matrix.shape[1])]
    )
    return float(statistic), float(p_value)


def mean_ranks(score_matrix: np.ndarray) -> np.ndarray:
    """Mean rank of each method over contests (rank 1 = best score)."""
    score_matrix = np.asarray(score_matrix, dtype=np.float64)
    if score_matrix.ndim != 2:
        raise ValueError(f"need a 2-D matrix, got shape {score_matrix.shape}")
    # Rank descending: the highest score gets rank 1; ties share the mean rank.
    ranks = np.apply_along_axis(
        lambda row: stats.rankdata(-row), axis=1, arr=score_matrix
    )
    return ranks.mean(axis=0)


# --------------------------------------------------------------------- #
# Contest-result bookkeeping
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PairwiseComparison:
    """Summary of method A vs method B over shared contests."""

    method_a: str
    method_b: str
    contests: int
    wins_a: int
    wins_b: int
    ties: int
    mean_gap: float          # mean(score_a - score_b)
    p_value: float           # paired t-test (1.0 when degenerate)


def scores_by_contest(
    results: Sequence[ContestResult], metric: str = "micro_f1"
) -> Dict[str, Dict[str, float]]:
    """Pivot results into ``{contest_id: {method: score}}``."""
    if metric not in ("micro_f1", "macro_f1"):
        raise ValueError(f"unknown metric {metric!r}")
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.contest_id, {})[result.method] = getattr(
            result, metric
        )
    return table


def count_wins(
    results: Sequence[ContestResult],
    metric: str = "micro_f1",
    tie_tolerance: float = 0.0,
) -> Dict[str, int]:
    """Per-method count of contests won (within ``tie_tolerance`` of the top).

    With a nonzero tolerance several methods can share one contest, which
    is how near-tie panels (the paper's Freebase margins) should be read.
    """
    wins: Dict[str, int] = {}
    for contest_scores in scores_by_contest(results, metric).values():
        best = max(contest_scores.values())
        for method, score in contest_scores.items():
            wins.setdefault(method, 0)
            if score >= best - tie_tolerance:
                wins[method] += 1
    return wins


def compare_methods(
    results: Sequence[ContestResult],
    method_a: str,
    method_b: str,
    metric: str = "micro_f1",
    tie_tolerance: float = 1e-9,
) -> PairwiseComparison:
    """Paired comparison of two methods over the contests both ran."""
    paired: List[Tuple[float, float]] = []
    for contest_scores in scores_by_contest(results, metric).values():
        if method_a in contest_scores and method_b in contest_scores:
            paired.append((contest_scores[method_a], contest_scores[method_b]))
    if not paired:
        raise ValueError(
            f"no shared contests between {method_a!r} and {method_b!r}"
        )
    a = np.array([p[0] for p in paired])
    b = np.array([p[1] for p in paired])
    gaps = a - b
    wins_a = int((gaps > tie_tolerance).sum())
    wins_b = int((gaps < -tie_tolerance).sum())
    ties = len(paired) - wins_a - wins_b
    if len(paired) >= 2:
        _, p_value = paired_t_test(a, b)
    else:
        p_value = 1.0
    return PairwiseComparison(
        method_a=method_a,
        method_b=method_b,
        contests=len(paired),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        mean_gap=float(gaps.mean()),
        p_value=p_value,
    )


def win_matrix(
    results: Sequence[ContestResult],
    metric: str = "micro_f1",
    tie_tolerance: float = 1e-9,
) -> Tuple[List[str], np.ndarray]:
    """Pairwise win counts: entry ``(i, j)`` = contests where i beat j.

    Returns the sorted method list and the integer matrix.
    """
    table = scores_by_contest(results, metric)
    methods = sorted({m for scores in table.values() for m in scores})
    index = {m: i for i, m in enumerate(methods)}
    matrix = np.zeros((len(methods), len(methods)), dtype=np.int64)
    for contest_scores in table.values():
        present = list(contest_scores)
        for a in present:
            for b in present:
                if a == b:
                    continue
                if contest_scores[a] > contest_scores[b] + tie_tolerance:
                    matrix[index[a], index[b]] += 1
    return methods, matrix
