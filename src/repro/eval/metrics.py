"""Classification metrics: Micro-F1, Macro-F1, accuracy, confusion matrix.

Implemented from scratch (no sklearn offline).  Conventions match
sklearn's: per-class F1 is 0 when a class has no predictions and no true
members' overlap; Macro-F1 averages per-class F1 over the classes present
in the *union* of true and predicted labels (we average over all classes
``0..num_classes-1`` when ``num_classes`` is given, which matches the
paper's fixed label sets).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray, axis: int = 1) -> np.ndarray:
    """Numerically stable softmax over ``axis`` (shift-exp-normalize).

    The one shared implementation behind every ``predict_proba`` in the
    estimator contract (:class:`repro.api.Estimator`).
    """
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {y_true.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Counts ``C[i, j]`` = #samples with true class i predicted as j."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def f1_scores(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Per-class F1 (0 where precision + recall is 0)."""
    matrix = confusion_matrix(y_true, y_pred, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    denom = predicted + actual
    scores = np.zeros(matrix.shape[0])
    nonzero = denom > 0
    scores[nonzero] = 2.0 * true_pos[nonzero] / denom[nonzero]
    return scores


def macro_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Unweighted mean of per-class F1."""
    return float(f1_scores(y_true, y_pred, num_classes).mean())


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Global F1; equals accuracy for single-label multi-class problems."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact matches."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())
