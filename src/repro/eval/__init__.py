"""Evaluation: metrics, the contest harness, timing, statistics, table
formatting, and the unsupervised downstream tasks (clustering NMI/ARI,
link prediction AUC/AP) used to compare embedding quality."""

from repro.eval.metrics import micro_f1, macro_f1, accuracy, confusion_matrix, f1_scores
from repro.eval.timing import ConvergenceRecorder, EpochRecord
from repro.eval.harness import (
    ContestResult,
    run_contest,
    run_method_on_split,
    summarize_results,
)
from repro.eval.tables import format_table, format_contest_table
from repro.eval.plotting import ascii_plot, ascii_bars, convergence_plot
from repro.eval.statistics import (
    PairwiseComparison,
    bootstrap_ci,
    compare_methods,
    count_wins,
    friedman_test,
    mean_ranks,
    mean_std,
    paired_t_test,
    wilcoxon_signed_rank,
    win_matrix,
)
from repro.eval.reporting import (
    markdown_pairwise_section,
    markdown_report,
    markdown_score_table,
    markdown_win_summary,
)
from repro.eval.clustering import (
    KMeansResult,
    adjusted_rand_index,
    clustering_report,
    kmeans,
    normalized_mutual_information,
    purity,
    silhouette_score,
)
from repro.eval.linkpred import (
    LinkSplit,
    average_precision,
    holdout_relation_split,
    link_prediction_report,
    roc_auc,
    score_pairs,
)
from repro.eval.scalability import (
    ScalePoint,
    conch_scaling_sweep,
    format_scaling_table,
    growth_exponent,
    measure_epoch_seconds,
    total_instance_count,
)

__all__ = [
    "micro_f1",
    "macro_f1",
    "accuracy",
    "confusion_matrix",
    "f1_scores",
    "ConvergenceRecorder",
    "EpochRecord",
    "ContestResult",
    "run_contest",
    "run_method_on_split",
    "summarize_results",
    "format_table",
    "format_contest_table",
    "ascii_plot",
    "ascii_bars",
    "convergence_plot",
    "PairwiseComparison",
    "mean_std",
    "bootstrap_ci",
    "paired_t_test",
    "wilcoxon_signed_rank",
    "friedman_test",
    "mean_ranks",
    "count_wins",
    "compare_methods",
    "win_matrix",
    "ScalePoint",
    "conch_scaling_sweep",
    "measure_epoch_seconds",
    "total_instance_count",
    "growth_exponent",
    "format_scaling_table",
    "markdown_score_table",
    "markdown_win_summary",
    "markdown_pairwise_section",
    "markdown_report",
    "KMeansResult",
    "kmeans",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "purity",
    "silhouette_score",
    "clustering_report",
    "LinkSplit",
    "holdout_relation_split",
    "score_pairs",
    "roc_auc",
    "average_precision",
    "link_prediction_report",
]
