"""Scalability measurements: how cost grows with graph size and with *k*.

The paper's efficiency arguments (§V-G) are about growth *rates*: ConCH's
per-epoch cost is ``O(6 k n d1 d2 |PS|)`` — linear in both the number of
target objects ``n`` and the filter size ``k`` — while instance-
enumerating methods (MAGNN) blow up with path-instance counts.  This
module measures those curves directly:

- :func:`measure_epoch_seconds` — mean wall-clock per training epoch of a
  prepared ConCH model.
- :func:`conch_scaling_sweep` — preprocess + epoch time as the dataset is
  scaled up (Fig. 7(d)'s *k* sweep generalized to ``n``).
- :func:`instance_count_sweep` — total meta-path instance counts at each
  scale, the quantity that drives MAGNN's memory failure (§V-D note 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

import numpy as np

from repro.data.base import HINDataset
from repro.data.splits import stratified_split
from repro.hin.engine import get_engine

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with repro.core
    from repro.core.config import ConCHConfig
    from repro.core.trainer import ConCHData


@dataclass(frozen=True)
class ScalePoint:
    """One measurement of the scaling sweep."""

    scale: float
    num_targets: int
    total_edges: int
    preprocess_seconds: float
    epoch_seconds: float
    total_instances: int     # sum of commuting-matrix entries over meta-paths


def measure_epoch_seconds(
    data: "ConCHData",
    config: "ConCHConfig",
    epochs: int = 3,
    train_fraction: float = 0.2,
    seed: int = 0,
) -> float:
    """Mean seconds per training epoch (forward + backward + step).

    Uses a throwaway stratified split; early stopping is disabled by
    running exactly ``epochs`` epochs and averaging.
    """
    from repro.core.trainer import ConCHTrainer

    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    split = stratified_split(data.labels, train_fraction, seed=seed)
    timed_config = config.with_overrides(epochs=epochs, patience=epochs + 1)
    trainer = ConCHTrainer(data, timed_config)
    start = time.perf_counter()
    trainer.fit(split)
    elapsed = time.perf_counter() - start
    epochs_run = max(1, len(trainer.recorder.records))
    return elapsed / epochs_run


def total_instance_count(dataset: HINDataset) -> int:
    """Sum of path-instance counts over the dataset's meta-path set.

    This is the number MAGNN must materialize; its growth rate across
    scales explains the paper's out-of-memory observations.
    """
    engine = get_engine(dataset.hin)
    total = 0
    for metapath in dataset.metapaths:
        counts = engine.counts(metapath, remove_self_paths=True)
        total += int(counts.sum())
    return total


def conch_scaling_sweep(
    dataset_factory: Callable[[float], HINDataset],
    scales: Sequence[float],
    config: Optional["ConCHConfig"] = None,
    epochs: int = 3,
    seed: int = 0,
    memory_budget: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[ScalePoint]:
    """Measure ConCH preprocess and epoch time over dataset scales.

    Parameters
    ----------
    dataset_factory:
        Maps a scale factor (1.0 = base size) to a dataset; the factory
        owns what "scale" means (usually multiplying node counts).
    scales:
        Increasing scale factors to measure.
    config:
        ConCH configuration (cheap embedding defaults recommended).
    memory_budget:
        Optional byte cap on the substrate cache at every scale — the
        knob that keeps the sweep's resident memory bounded as graphs
        grow (see :mod:`repro.hin.cache`).
    cache_dir:
        Optional disk-backed product store shared across sweep runs.
    """
    from repro.core.config import ConCHConfig
    from repro.core.trainer import prepare_conch_data

    if not scales:
        raise ValueError("need at least one scale factor")
    config = config or ConCHConfig()
    overrides = {"seed": seed}
    if memory_budget is not None:
        overrides["cache_memory_budget"] = memory_budget
    if cache_dir is not None:
        overrides["cache_dir"] = cache_dir
    points: List[ScalePoint] = []
    for scale in scales:
        dataset = dataset_factory(float(scale))
        data = prepare_conch_data(dataset, config.with_overrides(**overrides))
        epoch_seconds = measure_epoch_seconds(data, config, epochs=epochs, seed=seed)
        points.append(
            ScalePoint(
                scale=float(scale),
                num_targets=dataset.num_targets,
                total_edges=dataset.hin.total_edges,
                preprocess_seconds=data.preprocess_seconds,
                epoch_seconds=epoch_seconds,
                total_instances=total_instance_count(dataset),
            )
        )
    return points


def growth_exponent(sizes: Sequence[float], seconds: Sequence[float]) -> float:
    """Least-squares slope of log(seconds) vs log(size).

    ≈1 means linear scaling (the paper's claim for ConCH in both ``n``
    and ``k``); ≈2 quadratic.  Requires positive inputs.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    seconds = np.asarray(seconds, dtype=np.float64)
    if sizes.shape != seconds.shape or sizes.size < 2:
        raise ValueError("need at least two (size, seconds) pairs")
    if (sizes <= 0).any() or (seconds <= 0).any():
        raise ValueError("sizes and seconds must be positive")
    slope, _ = np.polyfit(np.log(sizes), np.log(seconds), 1)
    return float(slope)


def format_scaling_table(points: Sequence[ScalePoint]) -> str:
    """Human-readable sweep table (used by the scalability bench)."""
    lines = [
        f"{'scale':>6} | {'targets':>8} | {'edges':>9} | "
        f"{'instances':>10} | {'prep (s)':>9} | {'epoch (s)':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for point in points:
        lines.append(
            f"{point.scale:>6.2f} | {point.num_targets:>8d} | "
            f"{point.total_edges:>9d} | {point.total_instances:>10d} | "
            f"{point.preprocess_seconds:>9.3f} | {point.epoch_seconds:>9.4f}"
        )
    return "\n".join(lines)
