"""Command-line Table-I runner.

Usage::

    python -m repro.eval.run_table1 --dataset dblp --fractions 0.02 0.2 \
        --methods GCN HDGI ConCH --repeats 1

Runs the requested method panel on the requested dataset and prints the
Micro-/Macro-F1 contest tables.  ``--methods all`` runs the full panel
(slow).  This is the scriptable twin of ``benchmarks/test_table1.py``.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro.baselines import BASELINES, make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import conch_method
from repro.core import ConCHConfig
from repro.data import load_dataset
from repro.data.registry import dataset_hyperparams
from repro.eval.harness import run_contest, summarize_results
from repro.eval.tables import format_contest_table


def build_methods(names, dataset_name: str, epochs: int) -> Dict[str, object]:
    settings = TrainSettings(epochs=epochs, patience=max(20, epochs // 3))
    params = dataset_hyperparams(dataset_name)
    conch_cfg = ConCHConfig(
        k=params.k,
        num_layers=params.num_layers,
        context_dim=32,
        hidden_dim=64,
        out_dim=64,
        lambda_ss=0.3,
        epochs=max(epochs, 150),
        patience=60,
    )
    factories = {
        "node2vec": lambda: make_method("node2vec", num_walks=3, walk_length=15),
        "mp2vec": lambda: make_method("mp2vec", num_walks=3, walk_length=15),
        "GCN": lambda: make_method("GCN", settings=settings),
        "GAT": lambda: make_method("GAT", settings=settings, num_heads=2),
        "MVGRL": lambda: make_method("MVGRL", epochs=60),
        "HAN": lambda: make_method("HAN", settings=settings, num_heads=2),
        "HetGNN": lambda: make_method("HetGNN", epochs=60),
        "MAGNN": lambda: make_method("MAGNN", settings=settings, per_node_cap=32),
        "HGT": lambda: make_method("HGT", settings=settings, num_layers=1),
        "HDGI": lambda: make_method("HDGI", epochs=60),
        "HGCN": lambda: make_method("HGCN", settings=settings),
        "GNetMine": lambda: make_method("GNetMine"),
        "LabelProp": lambda: make_method("LabelProp"),
        "ConCH": lambda: conch_method(base_config=conch_cfg),
    }
    if names == ["all"]:
        names = list(factories)
    unknown = [n for n in names if n not in factories]
    if unknown:
        raise SystemExit(f"unknown methods {unknown}; known: {sorted(factories)}")
    return {name: factories[name]() for name in names}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="dblp",
                        choices=["dblp", "yelp", "freebase", "aminer"])
    parser.add_argument("--fractions", nargs="+", type=float,
                        default=[0.02, 0.05, 0.10, 0.20])
    parser.add_argument("--methods", nargs="+", default=["all"])
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--epochs", type=int, default=120,
                        help="training budget for the GNN baselines")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, seed=args.seed)
    methods = build_methods(args.methods, args.dataset, args.epochs)

    results = []
    for name, method in methods.items():
        try:
            results.extend(
                run_contest(
                    {name: method},
                    dataset,
                    train_fractions=args.fractions,
                    repeats=args.repeats,
                    seed=args.seed,
                    verbose=True,
                )
            )
        except MemoryError as error:
            print(f"{name}: OOM — {error}")

    contests = sorted(
        {r.contest_id for r in results},
        key=lambda c: int(c.split("@")[1].rstrip("%")),
    )
    for metric in ("micro_f1", "macro_f1"):
        table = summarize_results(results, metric=metric)
        print()
        print(
            format_contest_table(
                table,
                methods=[m for m in methods if m in table],
                contests=contests,
                title=f"{args.dataset} — {metric}",
            )
        )


if __name__ == "__main__":
    main()
