"""Command-line contest runner with a markdown report.

Usage::

    python -m repro.eval.run_report --dataset dblp --fractions 0.02 0.2 \
        --methods Grempt DGI HIN2Vec ConCH --out report.md

Runs the requested panel under the Table-I protocol and writes (or
prints) a markdown report: score grid with bolded winners, win counts,
and a pairwise section against a reference method (default ConCH, when
present).  This is the scriptable twin of
``benchmarks/test_extended_baselines.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.registry import BASELINES, conch_method
from repro.core import ConCHConfig
from repro.data import load_dataset
from repro.data.registry import dataset_hyperparams
from repro.eval.harness import run_contest
from repro.eval.reporting import markdown_report


def build_methods(names: List[str], dataset_name: str, epochs: int) -> Dict[str, object]:
    """Instantiate the requested methods with scale-appropriate budgets."""
    settings = TrainSettings(epochs=epochs, patience=max(20, epochs // 3))
    params = dataset_hyperparams(dataset_name)
    conch_cfg = ConCHConfig(
        k=params.k,
        num_layers=params.num_layers,
        context_dim=params.context_dim,
        lambda_ss=params.lambda_ss,
        epochs=max(epochs, 150),
        patience=60,
    )
    methods: Dict[str, object] = {}
    for name in names:
        if name == "ConCH":
            methods[name] = conch_method(base_config=conch_cfg)
        elif name in ("GCN", "GAT", "HAN", "HGT", "HGCN", "MAGNN", "GraphSAGE"):
            methods[name] = make_method(name, settings=settings)
        elif name in ("MVGRL", "HetGNN", "HDGI", "DGI"):
            methods[name] = make_method(name, epochs=min(epochs, 80))
        elif name in BASELINES:
            methods[name] = make_method(name)
        else:
            raise SystemExit(
                f"unknown method {name!r}; known: {sorted(BASELINES) + ['ConCH']}"
            )
    return methods


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="dblp")
    parser.add_argument(
        "--fractions", nargs="+", type=float, default=[0.02, 0.05, 0.10, 0.20]
    )
    parser.add_argument(
        "--methods", nargs="+", default=["Grempt", "DGI", "HIN2Vec", "ConCH"]
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--epochs", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reference", default=None, help="pairwise reference method")
    parser.add_argument("--tie-tolerance", type=float, default=0.0)
    parser.add_argument("--out", default=None, help="write the report here (default: stdout)")
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset)
    methods = build_methods(args.methods, args.dataset, args.epochs)
    results = run_contest(
        methods,
        dataset,
        train_fractions=args.fractions,
        repeats=args.repeats,
        seed=args.seed,
        verbose=True,
    )
    reference = args.reference
    if reference is None and "ConCH" in methods:
        reference = "ConCH"
    report = markdown_report(
        results,
        title=f"Contest report — {args.dataset}",
        reference=reference,
        tie_tolerance=args.tie_tolerance,
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(report)


if __name__ == "__main__":
    main()
