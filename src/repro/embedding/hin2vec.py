"""HIN2Vec (Fu et al., CIKM 2017): meta-path-relation prediction.

The paper's related work (§II) describes HIN2Vec as a method that
"constructs a binary classifier that predicts whether a given pair of
objects are related by a meta-path relation", taking the object
embeddings as the learnable parameters.  That is exactly what we build:

- Positive triples ``(u, v, P)``: node pairs connected by meta-path ``P``
  (sampled from the commuting matrices).
- Negative triples: the same ``(u, P)`` with a uniformly random ``v``.
- The score is ``σ( Σ_d  x_u[d] · x_v[d] · f(w_P)[d] )`` where ``x`` are
  node embeddings, ``w_P`` is a per-meta-path relation vector, and
  ``f = sigmoid`` is the paper's regularization keeping relation weights
  in ``(0, 1)``.

Optimized with vectorized minibatch SGD on the logistic loss.  The node
embeddings feed a downstream classifier, same as node2vec/metapath2vec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hin.adjacency import metapath_adjacency
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


@dataclass
class HIN2VecConfig:
    """HIN2Vec hyper-parameters."""

    dim: int = 64
    samples_per_pair: int = 1     # positive draws per connected pair
    negatives: int = 4            # negative triples per positive
    epochs: int = 3
    lr: float = 0.05
    batch_size: int = 2048
    seed: int = 0

    def __post_init__(self):
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if self.negatives < 1:
            raise ValueError(f"negatives must be >= 1, got {self.negatives}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def build_triples(
    hin: HIN,
    metapaths: Sequence[MetaPath],
    rng: np.random.Generator,
    samples_per_pair: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Positive training triples ``(u, v, relation_id)`` from commuting
    matrices (both directions of every connected pair)."""
    us: List[np.ndarray] = []
    vs: List[np.ndarray] = []
    rels: List[np.ndarray] = []
    for rel_id, metapath in enumerate(metapaths):
        counts = metapath_adjacency(hin, metapath, remove_self_paths=True).tocoo()
        if counts.nnz == 0:
            continue
        for _ in range(samples_per_pair):
            us.append(counts.row.astype(np.int64))
            vs.append(counts.col.astype(np.int64))
            rels.append(np.full(counts.nnz, rel_id, dtype=np.int64))
    if not us:
        raise ValueError("no meta-path produced any connected pair")
    u = np.concatenate(us)
    v = np.concatenate(vs)
    r = np.concatenate(rels)
    order = rng.permutation(u.shape[0])
    return u[order], v[order], r[order]


class HIN2Vec:
    """Trainable HIN2Vec model over one node-id space.

    Parameters
    ----------
    num_nodes:
        Size of the (target-type) vocabulary.
    num_relations:
        Number of meta-path relations.
    config:
        Hyper-parameters.
    """

    def __init__(self, num_nodes: int, num_relations: int, config: HIN2VecConfig):
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if num_relations <= 0:
            raise ValueError(f"num_relations must be positive, got {num_relations}")
        self.config = config
        rng = np.random.default_rng(config.seed)
        scale = 0.5 / config.dim
        self.node_vectors = rng.uniform(-scale, scale, size=(num_nodes, config.dim))
        self.relation_vectors = rng.uniform(
            -scale, scale, size=(num_relations, config.dim)
        )

    def _batch_step(
        self,
        u: np.ndarray,
        v: np.ndarray,
        r: np.ndarray,
        targets: np.ndarray,
        lr: float,
    ) -> float:
        """One SGD step on a triple batch; returns the mean logistic loss."""
        xu = self.node_vectors[u]
        xv = self.node_vectors[v]
        wr = _sigmoid(self.relation_vectors[r])  # regularized relation gate
        logits = np.sum(xu * xv * wr, axis=1)
        probs = _sigmoid(logits)
        error = (probs - targets)[:, None]  # d loss / d logits

        grad_u = error * xv * wr
        grad_v = error * xu * wr
        # d wr / d relation_vector = wr * (1 - wr) (sigmoid gate).
        grad_r = error * xu * xv * wr * (1.0 - wr)

        np.add.at(self.node_vectors, u, -lr * grad_u)
        np.add.at(self.node_vectors, v, -lr * grad_v)
        np.add.at(self.relation_vectors, r, -lr * grad_r)

        eps = 1e-12
        loss = -np.mean(
            targets * np.log(probs + eps) + (1 - targets) * np.log(1 - probs + eps)
        )
        return float(loss)

    def fit(self, u: np.ndarray, v: np.ndarray, r: np.ndarray) -> List[float]:
        """Train on positive triples (negatives drawn per batch).

        Returns the per-epoch mean loss trace (useful for tests asserting
        that optimization makes progress).
        """
        config = self.config
        rng = np.random.default_rng(config.seed + 1)
        num_nodes = self.node_vectors.shape[0]
        trace: List[float] = []
        for epoch in range(config.epochs):
            order = rng.permutation(u.shape[0])
            losses: List[float] = []
            for start in range(0, order.size, config.batch_size):
                batch = order[start: start + config.batch_size]
                bu, bv, br = u[batch], v[batch], r[batch]
                neg_v = rng.integers(
                    0, num_nodes, size=bu.shape[0] * config.negatives
                )
                all_u = np.concatenate([bu, np.repeat(bu, config.negatives)])
                all_v = np.concatenate([bv, neg_v])
                all_r = np.concatenate([br, np.repeat(br, config.negatives)])
                targets = np.concatenate(
                    [np.ones(bu.shape[0]), np.zeros(neg_v.shape[0])]
                )
                losses.append(
                    self._batch_step(all_u, all_v, all_r, targets, config.lr)
                )
            trace.append(float(np.mean(losses)))
        return trace

    def relation_gates(self) -> np.ndarray:
        """Learned per-relation gate vectors ``σ(w_P)`` in ``(0, 1)``."""
        return _sigmoid(self.relation_vectors)


def hin2vec_embeddings(
    hin: HIN,
    metapaths: Sequence[MetaPath],
    config: HIN2VecConfig | None = None,
) -> np.ndarray:
    """End-to-end HIN2Vec over the target type of symmetric meta-paths.

    All meta-paths must share the same endpoint type; the returned matrix
    is ``(num_nodes(target), dim)``.
    """
    config = config or HIN2VecConfig()
    metapaths = list(metapaths)
    if not metapaths:
        raise ValueError("need at least one meta-path")
    target = metapaths[0].source_type
    for metapath in metapaths:
        if not metapath.endpoints_match(target):
            raise ValueError(
                f"meta-path {metapath.name!r} does not start/end at {target!r}"
            )
    rng = np.random.default_rng(config.seed)
    u, v, r = build_triples(hin, metapaths, rng, config.samples_per_pair)
    model = HIN2Vec(hin.num_nodes(target), len(metapaths), config)
    model.fit(u, v, r)
    return model.node_vectors.copy()
