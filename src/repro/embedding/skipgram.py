"""Skip-gram with negative sampling (SGNS), the word2vec trainer.

Given a corpus of walks (sequences of node ids), we slide a window to form
(center, context) pairs and optimize

    log σ(u_c · v_w) + Σ_neg log σ(-u_n · v_w)

with vectorized minibatch SGD over two embedding tables (input ``v`` and
output ``u``).  Negative nodes are drawn from the unigram distribution
raised to 3/4, as in word2vec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class SkipGramConfig:
    """SGNS hyper-parameters."""

    dim: int = 64
    window: int = 3
    negatives: int = 5
    epochs: int = 2
    lr: float = 0.025
    batch_size: int = 1024
    seed: int = 0

    def __post_init__(self):
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.negatives < 1:
            raise ValueError(f"negatives must be >= 1, got {self.negatives}")


def build_pairs(walks: List[np.ndarray], window: int) -> Tuple[np.ndarray, np.ndarray]:
    """(center, context) pairs from walks with the given window size."""
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    for walk in walks:
        length = walk.shape[0]
        if length < 2:
            continue
        for offset in range(1, window + 1):
            if length <= offset:
                break
            # Forward pairs (i, i+offset) and the symmetric reverse.
            centers.append(walk[:-offset])
            contexts.append(walk[offset:])
            centers.append(walk[offset:])
            contexts.append(walk[:-offset])
    if not centers:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    return np.concatenate(centers), np.concatenate(contexts)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def train_skipgram(
    walks: List[np.ndarray],
    vocab_size: int,
    config: SkipGramConfig | None = None,
) -> np.ndarray:
    """Train SGNS over a walk corpus; returns the input embedding table.

    Nodes that never appear in a walk keep their small random init.
    """
    config = config or SkipGramConfig()
    rng = np.random.default_rng(config.seed)
    centers, contexts = build_pairs(walks, config.window)

    scale = 0.5 / config.dim
    input_emb = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
    output_emb = np.zeros((vocab_size, config.dim))
    if centers.size == 0:
        return input_emb

    # Unigram^0.75 negative-sampling table.
    counts = np.bincount(contexts, minlength=vocab_size).astype(np.float64)
    probs = counts ** 0.75
    total = probs.sum()
    if total == 0:
        probs = np.full(vocab_size, 1.0 / vocab_size)
    else:
        probs /= total

    num_pairs = centers.shape[0]
    for epoch in range(config.epochs):
        order = rng.permutation(num_pairs)
        lr = config.lr * (1.0 - epoch / max(1, config.epochs)) + 1e-4
        for start in range(0, num_pairs, config.batch_size):
            batch = order[start: start + config.batch_size]
            c = centers[batch]
            w = contexts[batch]
            negatives = rng.choice(
                vocab_size, size=(batch.shape[0], config.negatives), p=probs
            )

            v = input_emb[c]                      # (b, d)
            u_pos = output_emb[w]                 # (b, d)
            u_neg = output_emb[negatives]         # (b, neg, d)

            # Positive term gradients.
            score_pos = _sigmoid((v * u_pos).sum(axis=1))          # (b,)
            coeff_pos = (score_pos - 1.0)[:, None]                 # want σ→1
            grad_v = coeff_pos * u_pos
            grad_u_pos = coeff_pos * v

            # Negative term gradients.
            score_neg = _sigmoid(np.einsum("bd,bnd->bn", v, u_neg))  # (b, neg)
            coeff_neg = score_neg[..., None]                         # want σ→0
            grad_v += np.einsum("bnd,bn->bd", u_neg, score_neg)
            grad_u_neg = coeff_neg * v[:, None, :]

            # Scatter updates (np.add.at handles duplicate ids in a batch).
            np.add.at(input_emb, c, -lr * grad_v)
            np.add.at(output_emb, w, -lr * grad_u_pos)
            np.add.at(
                output_emb,
                negatives.reshape(-1),
                -lr * grad_u_neg.reshape(-1, config.dim),
            )
    return input_emb
