"""Random-walk network-embedding substrate.

ConCH bootstraps its *context features* from metapath2vec embeddings
(§IV-B), and two of the paper's baselines are embedding methods fed into a
logistic-regression classifier (node2vec, metapath2vec).  This package
implements the whole stack in numpy:

- :mod:`~repro.embedding.walks` — uniform, node2vec (p,q)-biased, and
  meta-path-guided random walks.
- :mod:`~repro.embedding.skipgram` — skip-gram with negative sampling
  (SGNS), the word2vec trainer all walk methods share.
- :mod:`~repro.embedding.deepwalk` / :mod:`~repro.embedding.node2vec` /
  :mod:`~repro.embedding.metapath2vec` — the user-facing methods.
- :mod:`~repro.embedding.hin2vec` — meta-path-relation prediction
  embeddings (the related-work alternative to walk-based methods).
- :mod:`~repro.embedding.line` / :mod:`~repro.embedding.pte` — edge-sampling
  SGNS (no walks): LINE's first/second-order proximities and PTE's joint
  bipartite-network training with type-correct negative sampling.
"""

from repro.embedding.walks import (
    uniform_random_walks,
    node2vec_walks,
    metapath_walks,
)
from repro.embedding.skipgram import SkipGramConfig, train_skipgram
from repro.embedding.deepwalk import deepwalk_embeddings
from repro.embedding.node2vec import node2vec_embeddings
from repro.embedding.metapath2vec import metapath2vec_embeddings
from repro.embedding.hin2vec import HIN2Vec, HIN2VecConfig, hin2vec_embeddings
from repro.embedding.line import LINEConfig, line_embeddings, train_edge_sgns
from repro.embedding.pte import pte_embeddings, pte_target_embeddings

__all__ = [
    "uniform_random_walks",
    "node2vec_walks",
    "metapath_walks",
    "SkipGramConfig",
    "train_skipgram",
    "deepwalk_embeddings",
    "node2vec_embeddings",
    "metapath2vec_embeddings",
    "HIN2Vec",
    "HIN2VecConfig",
    "hin2vec_embeddings",
    "LINEConfig",
    "line_embeddings",
    "train_edge_sgns",
    "pte_embeddings",
    "pte_target_embeddings",
]
