"""node2vec (Grover & Leskovec, KDD 2016): (p, q)-biased walks + SGNS.

Used as a baseline: the paper applies node2vec to an HIN "by ignoring the
heterogeneity of the network", i.e. on the flattened homogeneous
projection (:meth:`repro.hin.graph.HIN.to_homogeneous`).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.embedding.skipgram import SkipGramConfig, train_skipgram
from repro.embedding.walks import node2vec_walks


def node2vec_embeddings(
    adj: sp.spmatrix,
    dim: int = 64,
    num_walks: int = 5,
    walk_length: int = 20,
    window: int = 3,
    p: float = 1.0,
    q: float = 1.0,
    epochs: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """Embed a homogeneous graph with node2vec; returns ``(n, dim)``."""
    adj = sp.csr_matrix(adj)
    rng = np.random.default_rng(seed)
    walks = node2vec_walks(adj, num_walks, walk_length, rng, p=p, q=q)
    config = SkipGramConfig(dim=dim, window=window, epochs=epochs, seed=seed)
    return train_skipgram(walks, adj.shape[0], config)
