"""DeepWalk (Perozzi et al., KDD 2014): uniform walks + SGNS."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.embedding.skipgram import SkipGramConfig, train_skipgram
from repro.embedding.walks import uniform_random_walks


def deepwalk_embeddings(
    adj: sp.spmatrix,
    dim: int = 64,
    num_walks: int = 5,
    walk_length: int = 20,
    window: int = 3,
    epochs: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """Embed a homogeneous graph with DeepWalk; returns ``(n, dim)``."""
    adj = sp.csr_matrix(adj)
    rng = np.random.default_rng(seed)
    walks = uniform_random_walks(adj, num_walks, walk_length, rng)
    config = SkipGramConfig(dim=dim, window=window, epochs=epochs, seed=seed)
    return train_skipgram(walks, adj.shape[0], config)
