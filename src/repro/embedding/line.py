"""LINE (Tang et al., WWW 2015) — edge-sampling network embedding.

The paper's related work (§II, [28]) discusses LINE as the classic
non-walk embedding method: instead of a walk corpus it optimizes SGNS
directly over *edges*.

* **First-order proximity** — linked nodes get similar embeddings:
  ``log σ(v_i · v_j)`` plus negative samples, one shared table.
* **Second-order proximity** — nodes with similar *neighborhoods* get
  similar embeddings: ``log σ(u_j · v_i)`` with a separate context table,
  exactly the SGNS objective with the neighbor as the "context".

``line_embeddings`` runs either order or trains both on half the
dimensions and concatenates (the paper's recommended usage).  The shared
:func:`train_edge_sgns` trainer also powers PTE (:mod:`repro.embedding.pte`),
which is LINE's heterogeneous extension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


@dataclass
class LINEConfig:
    """LINE/PTE hyper-parameters."""

    # Defaults are tuned for the repo's laptop-scale graphs: the edge
    # corpus is orders of magnitude smaller than LINE's original billions
    # of samples, so each edge needs more passes at a hotter step size
    # (lr >= ~0.3 diverges; see tests).
    dim: int = 64
    negatives: int = 5
    epochs: int = 30
    lr: float = 0.05
    batch_size: int = 1024
    seed: int = 0
    order: str = "both"

    def __post_init__(self):
        if self.dim <= 0:
            raise ValueError(f"dim must be positive, got {self.dim}")
        if self.negatives < 1:
            raise ValueError(f"negatives must be >= 1, got {self.negatives}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.order not in {"first", "second", "both"}:
            raise ValueError(
                f"order must be 'first', 'second' or 'both', got {self.order!r}"
            )
        if self.order == "both" and self.dim % 2 != 0:
            raise ValueError("order='both' needs an even dim (half per order)")


#: One sampling group: (src ids, dst ids, negative-candidate ids).
EdgeGroup = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _negative_probs(dst: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Unigram^0.75 over a group's candidate pool (uniform if degree-free)."""
    counts = np.bincount(dst, minlength=int(candidates.max()) + 1)
    weights = counts[candidates].astype(np.float64) ** 0.75
    total = weights.sum()
    if total == 0:
        return np.full(candidates.shape[0], 1.0 / candidates.shape[0])
    return weights / total


def train_edge_sgns(
    edge_groups: Sequence[EdgeGroup],
    vocab_size: int,
    config: LINEConfig,
    first_order: bool = False,
    return_context: bool = False,
) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
    """SGNS over edge samples; returns the vertex embedding table.

    Parameters
    ----------
    edge_groups:
        Sampling groups.  LINE uses a single group (the whole graph); PTE
        uses one group per bipartite direction so negatives are drawn from
        the correct node type.  Negatives for a group are sampled from its
        candidate pool with unigram^0.75 weights.
    vocab_size:
        Total number of (global) node ids.
    first_order:
        If true, the context table *is* the vertex table (LINE's
        first-order proximity); otherwise a separate context table is
        used (second-order).
    return_context:
        Also return the context table.  For second-order training the
        link score the objective actually optimizes is
        ``vertex[i] · context[j]`` — use both tables for link prediction.
        (For first-order the two tables are the same array.)
    """
    rng = np.random.default_rng(config.seed)
    scale = 0.5 / config.dim
    vertex_emb = rng.uniform(-scale, scale, size=(vocab_size, config.dim))
    context_emb = vertex_emb if first_order else np.zeros((vocab_size, config.dim))

    prepared = []
    for src, dst, candidates in edge_groups:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        candidates = np.asarray(candidates, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size == 0 or candidates.size == 0:
            continue
        prepared.append((src, dst, candidates, _negative_probs(dst, candidates)))
    if not prepared:
        return (vertex_emb, context_emb) if return_context else vertex_emb

    for epoch in range(config.epochs):
        lr = config.lr * (1.0 - epoch / max(1, config.epochs)) + 1e-4
        for group_index in rng.permutation(len(prepared)):
            src, dst, candidates, probs = prepared[group_index]
            order = rng.permutation(src.shape[0])
            for start in range(0, src.shape[0], config.batch_size):
                batch = order[start: start + config.batch_size]
                i = src[batch]
                j = dst[batch]
                negatives = candidates[
                    rng.choice(
                        candidates.shape[0],
                        size=(batch.shape[0], config.negatives),
                        p=probs,
                    )
                ]

                v = vertex_emb[i]                     # (b, d)
                u_pos = context_emb[j]                # (b, d)
                u_neg = context_emb[negatives]        # (b, neg, d)

                score_pos = _sigmoid((v * u_pos).sum(axis=1))
                coeff_pos = (score_pos - 1.0)[:, None]
                grad_v = coeff_pos * u_pos
                grad_u_pos = coeff_pos * v

                score_neg = _sigmoid(np.einsum("bd,bnd->bn", v, u_neg))
                grad_v += np.einsum("bnd,bn->bd", u_neg, score_neg)
                grad_u_neg = score_neg[..., None] * v[:, None, :]

                np.add.at(vertex_emb, i, -lr * grad_v)
                np.add.at(context_emb, j, -lr * grad_u_pos)
                np.add.at(
                    context_emb,
                    negatives.reshape(-1),
                    -lr * grad_u_neg.reshape(-1, config.dim),
                )
    return (vertex_emb, context_emb) if return_context else vertex_emb


def _adjacency_group(adjacency: sp.spmatrix) -> List[EdgeGroup]:
    matrix = sp.coo_matrix(adjacency)
    degrees = np.asarray(sp.csr_matrix(adjacency).sum(axis=1)).ravel()
    candidates = np.flatnonzero(degrees > 0)
    return [(matrix.row.astype(np.int64), matrix.col.astype(np.int64), candidates)]


def line_embeddings(
    adjacency: sp.spmatrix,
    dim: int = 64,
    config: LINEConfig | None = None,
    return_context: bool = False,
    **overrides,
) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
    """LINE over a (homogeneous) adjacency matrix.

    With ``order='both'`` (default) the first- and second-order halves are
    trained independently on ``dim/2`` dimensions each and concatenated.
    Isolated nodes keep their random initialization.

    ``return_context=True`` also returns the context table (per-half
    concatenation under ``order='both'``; for the first-order half the
    context table is the vertex table itself) — use it to score links as
    ``vertex[i] · context[j]``, the statistic the objective optimizes.
    """
    config = config or LINEConfig(dim=dim, **overrides)
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square; flatten the HIN first")
    groups = _adjacency_group(adjacency)
    vocab_size = adjacency.shape[0]
    if config.order in ("first", "second"):
        return train_edge_sgns(
            groups,
            vocab_size,
            config,
            first_order=config.order == "first",
            return_context=return_context,
        )
    half = replace(config, dim=config.dim // 2)
    first = train_edge_sgns(
        groups, vocab_size, half, first_order=True, return_context=return_context
    )
    second = train_edge_sgns(
        groups,
        vocab_size,
        replace(half, seed=half.seed + 1),
        first_order=False,
        return_context=return_context,
    )
    if not return_context:
        return np.concatenate([first, second], axis=1)
    vertex = np.concatenate([first[0], second[0]], axis=1)
    context = np.concatenate([first[1], second[1]], axis=1)
    return vertex, context
