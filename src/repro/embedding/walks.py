"""Random-walk corpus generators.

All walk functions emit integer node-id sequences.  For heterogeneous
walks the ids live in the HIN's *global* id space (see
:meth:`repro.hin.graph.HIN.global_offsets`) so one shared skip-gram
vocabulary covers every node type.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def _row(adj: sp.csr_matrix, node: int) -> np.ndarray:
    return adj.indices[adj.indptr[node]: adj.indptr[node + 1]]


def uniform_random_walks(
    adj: sp.csr_matrix,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    start_nodes: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """DeepWalk-style uniform random walks.

    Parameters
    ----------
    adj:
        Homogeneous adjacency (csr).  Walks stop early at sink nodes.
    num_walks:
        Walks started per start node.
    walk_length:
        Number of nodes per walk (including the start).
    start_nodes:
        Defaults to every node.
    """
    adj = adj.tocsr()
    if start_nodes is None:
        start_nodes = np.arange(adj.shape[0])
    walks: List[np.ndarray] = []
    for _ in range(num_walks):
        for start in start_nodes:
            walk = [int(start)]
            current = int(start)
            for _ in range(walk_length - 1):
                neighbors = _row(adj, current)
                if neighbors.size == 0:
                    break
                current = int(neighbors[rng.integers(0, neighbors.size)])
                walk.append(current)
            walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def node2vec_walks(
    adj: sp.csr_matrix,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
    p: float = 1.0,
    q: float = 1.0,
    start_nodes: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Second-order biased walks (Grover & Leskovec, KDD 2016).

    Transition weights from ``prev`` through ``cur`` to ``x``:
    ``1/p`` if ``x == prev``; ``1`` if ``x`` adjacent to ``prev``;
    ``1/q`` otherwise.  Computed on the fly (no alias tables) — adequate
    at this scale and much simpler.
    """
    if p <= 0 or q <= 0:
        raise ValueError(f"p and q must be positive, got p={p}, q={q}")
    adj = adj.tocsr()
    if start_nodes is None:
        start_nodes = np.arange(adj.shape[0])

    neighbor_sets = [set(_row(adj, node).tolist()) for node in range(adj.shape[0])]
    walks: List[np.ndarray] = []
    for _ in range(num_walks):
        for start in start_nodes:
            walk = [int(start)]
            for _ in range(walk_length - 1):
                current = walk[-1]
                neighbors = _row(adj, current)
                if neighbors.size == 0:
                    break
                if len(walk) == 1:
                    nxt = int(neighbors[rng.integers(0, neighbors.size)])
                else:
                    prev = walk[-2]
                    prev_neighbors = neighbor_sets[prev]
                    weights = np.empty(neighbors.size)
                    for i, candidate in enumerate(neighbors):
                        if candidate == prev:
                            weights[i] = 1.0 / p
                        elif int(candidate) in prev_neighbors:
                            weights[i] = 1.0
                        else:
                            weights[i] = 1.0 / q
                    weights /= weights.sum()
                    nxt = int(rng.choice(neighbors, p=weights))
                walk.append(nxt)
            walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def metapath_walks(
    hin: HIN,
    metapath: MetaPath,
    num_walks: int,
    walk_length: int,
    rng: np.random.Generator,
) -> List[np.ndarray]:
    """Meta-path-guided walks (metapath2vec, Dong et al. KDD 2017).

    The walk repeatedly traverses the meta-path's type pattern.  For a
    symmetric meta-path like ``APCPA`` the pattern cycles (``A P C P A P C
    P A ...``).  Node ids are *global*.

    Walks start from every node of the meta-path's source type.
    """
    offsets = hin.global_offsets()
    # Per-hop adjacency matrices (local id spaces).
    chain = []
    for src_type, dst_type in zip(metapath.node_types[:-1], metapath.node_types[1:]):
        chain.append((hin.adjacency(src_type, dst_type).tocsr(), dst_type))
    source_type = metapath.source_type
    num_sources = hin.num_nodes(source_type)
    hops = len(chain)

    walks: List[np.ndarray] = []
    for _ in range(num_walks):
        for start in range(num_sources):
            walk_global = [offsets[source_type] + start]
            current_local = start
            hop_index = 0
            for _ in range(walk_length - 1):
                adj, dst_type = chain[hop_index % hops]
                neighbors = _row(adj, current_local)
                if neighbors.size == 0:
                    break
                current_local = int(neighbors[rng.integers(0, neighbors.size)])
                walk_global.append(offsets[dst_type] + current_local)
                hop_index += 1
            walks.append(np.asarray(walk_global, dtype=np.int64))
    return walks
