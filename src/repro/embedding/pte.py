"""PTE (Tang et al., KDD 2015) — heterogeneous LINE over bipartite networks.

The paper's related work (§II, [35]) cites PTE as the heterogeneous
extension of LINE: a heterogeneous graph is viewed as a collection of
bipartite networks (one per relation), and a *joint* second-order SGNS
objective is trained over all of them with a shared vertex table.

Two details matter and are preserved here:

* edges of a relation are trained in **both directions** (each endpoint
  serves as the other's context), and
* negative contexts are drawn from the **correct node type** — for an
  ``A→P`` sample the corrupted context is another ``P`` node, never an
  ``A`` node.  This is what distinguishes PTE from running LINE on the
  flattened graph.

Embeddings live in the HIN's global id space; use
:func:`pte_target_embeddings` to slice out the classification targets.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.embedding.line import EdgeGroup, LINEConfig, train_edge_sgns
from repro.hin.graph import HIN


def _bipartite_groups(hin: HIN) -> List[EdgeGroup]:
    """Two direction-specific sampling groups per forward relation."""
    offsets = hin.global_offsets()
    groups: List[EdgeGroup] = []
    for relation in hin.relations:
        if relation.name.endswith("_rev"):
            continue
        matrix = hin.relation_matrix(relation.name).tocoo()
        src = matrix.row.astype(np.int64) + offsets[relation.src_type]
        dst = matrix.col.astype(np.int64) + offsets[relation.dst_type]
        dst_pool = np.arange(
            offsets[relation.dst_type],
            offsets[relation.dst_type] + hin.num_nodes(relation.dst_type),
        )
        src_pool = np.arange(
            offsets[relation.src_type],
            offsets[relation.src_type] + hin.num_nodes(relation.src_type),
        )
        groups.append((src, dst, dst_pool))
        groups.append((dst, src, src_pool))
    return groups


def pte_embeddings(
    hin: HIN,
    dim: int = 64,
    config: LINEConfig | None = None,
    return_context: bool = False,
    **overrides,
) -> np.ndarray:
    """Joint PTE embeddings for *all* nodes, indexed by global id.

    With ``return_context=True`` the context table is returned as well;
    ``vertex[i] · context[j]`` is the score PTE's objective optimizes and
    the right statistic for link prediction.
    """
    if config is None:
        config = LINEConfig(dim=dim, order="second", **overrides)
    groups = _bipartite_groups(hin)
    return train_edge_sgns(
        groups,
        hin.total_nodes,
        config,
        first_order=False,
        return_context=return_context,
    )


def pte_target_embeddings(
    hin: HIN,
    target_type: str,
    dim: int = 64,
    config: LINEConfig | None = None,
    **overrides,
) -> np.ndarray:
    """PTE embeddings restricted to one node type's rows."""
    embeddings = pte_embeddings(hin, dim=dim, config=config, **overrides)
    start = hin.global_offsets()[target_type]
    return embeddings[start: start + hin.num_nodes(target_type)]
