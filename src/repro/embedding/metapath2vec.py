"""metapath2vec (Dong et al., KDD 2017): meta-path-guided walks + SGNS.

Two entry points:

- :func:`metapath2vec_embeddings` — embeddings for *all* node types from
  one meta-path (returned as a dict keyed by type).  ConCH uses this to
  build its initial context features (§IV-B): every node on a path
  instance needs an embedding, whatever its type.
- :func:`metapath2vec_target_embeddings` — the baseline usage: embed only
  the target type, trying every given meta-path (the paper reports the
  best single meta-path result).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.embedding.skipgram import SkipGramConfig, train_skipgram
from repro.embedding.walks import metapath_walks
from repro.hin.graph import HIN
from repro.hin.metapath import MetaPath


def metapath2vec_embeddings(
    hin: HIN,
    metapaths: Sequence[MetaPath],
    dim: int = 64,
    num_walks: int = 5,
    walk_length: int = 20,
    window: int = 3,
    epochs: int = 2,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Train one SGNS model over walks from *all* given meta-paths.

    Returns a per-type embedding dict ``{node_type: (count, dim)}`` in the
    HIN's local id spaces.
    """
    rng = np.random.default_rng(seed)
    walks: List[np.ndarray] = []
    for metapath in metapaths:
        walks.extend(metapath_walks(hin, metapath, num_walks, walk_length, rng))
    config = SkipGramConfig(dim=dim, window=window, epochs=epochs, seed=seed)
    table = train_skipgram(walks, hin.total_nodes, config)

    offsets = hin.global_offsets()
    result: Dict[str, np.ndarray] = {}
    for node_type in hin.node_types:
        start = offsets[node_type]
        stop = start + hin.num_nodes(node_type)
        result[node_type] = table[start:stop]
    return result


def metapath2vec_target_embeddings(
    hin: HIN,
    metapath: MetaPath,
    dim: int = 64,
    num_walks: int = 5,
    walk_length: int = 20,
    window: int = 3,
    epochs: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """Baseline usage: embeddings of the meta-path's source type only."""
    embeddings = metapath2vec_embeddings(
        hin,
        [metapath],
        dim=dim,
        num_walks=num_walks,
        walk_length=walk_length,
        window=window,
        epochs=epochs,
        seed=seed,
    )
    return embeddings[metapath.source_type]
