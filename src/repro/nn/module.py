"""``Module`` and ``Parameter``: containers for learnable state.

Mirrors the familiar torch.nn design at a much smaller scale: modules hold
parameters and submodules discovered by attribute assignment; ``.parameters()``
walks the tree; ``train()``/``eval()`` toggle behaviour of stochastic layers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always a leaf with ``requires_grad=True``."""

    def __init__(self, data, name: Optional[str] = None):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural-network building blocks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; these are auto-registered for :meth:`parameters` /
    :meth:`named_parameters` traversal.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Registration helpers for containers holding lists of params/modules
    # ------------------------------------------------------------------ #

    def register_parameter(self, name: str, parameter: Parameter) -> Parameter:
        self._parameters[name] = parameter
        return parameter

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total count of scalar learnable parameters."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Mode switching and gradient bookkeeping
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------ #
    # State (de)serialization — plain dicts of numpy arrays
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            if parameter.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{parameter.data.shape} vs {state[name].shape}"
                )
            parameter.data[...] = state[name]

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """Holds an ordered list of submodules (indexable, iterable)."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)


class ParameterList(Module):
    """Holds an ordered list of parameters."""

    def __init__(self, parameters: Optional[List[Parameter]] = None):
        super().__init__()
        self._items: List[Parameter] = []
        for parameter in parameters or []:
            self.append(parameter)

    def append(self, parameter: Parameter) -> "ParameterList":
        self.register_parameter(str(len(self._items)), parameter)
        self._items.append(parameter)
        return self

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._items)

    def __getitem__(self, index: int) -> Parameter:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)
