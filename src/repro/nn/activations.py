"""Activation modules (thin wrappers over Tensor methods)."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ELU(Module):
    def __init__(self, alpha: float = 1.0):
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
