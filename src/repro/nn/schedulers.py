"""Training-control utilities.

``EarlyStopping`` implements the paper's protocol (§V-C): stop when the
monitored validation metric has not improved for ``patience`` consecutive
epochs, and restore the best weights seen.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module


class EarlyStopping:
    """Patience-based early stopping that snapshots the best model state.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated (paper: 100).
    mode:
        ``"max"`` for accuracy-like metrics, ``"min"`` for losses.
    min_delta:
        Minimum change that counts as an improvement.
    """

    def __init__(self, patience: int = 100, mode: str = "max", min_delta: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
        self.patience = patience
        self.mode = mode
        self.min_delta = min_delta
        self.best_value: Optional[float] = None
        self.best_epoch: int = -1
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self._bad_epochs = 0

    def _improved(self, value: float) -> bool:
        if self.best_value is None:
            return True
        if self.mode == "max":
            return value > self.best_value + self.min_delta
        return value < self.best_value - self.min_delta

    def step(self, value: float, model: Optional[Module] = None, epoch: int = -1) -> bool:
        """Record a metric value; return ``True`` if training should stop."""
        if self._improved(value):
            self.best_value = value
            self.best_epoch = epoch
            self._bad_epochs = 0
            if model is not None:
                self.best_state = model.state_dict()
            return False
        self._bad_epochs += 1
        return self._bad_epochs >= self.patience

    def restore(self, model: Module) -> None:
        """Load the best snapshotted weights back into ``model``."""
        if self.best_state is not None:
            model.load_state_dict(self.best_state)
