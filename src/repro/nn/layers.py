"""Core layers: Linear, Dropout, Sequential, MLP, Bilinear.

Each layer takes an explicit ``numpy.random.Generator`` for initialization
(and for dropout masks), keeping every experiment reproducible from a
single seed.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.activations import Identity, ReLU
from repro.nn.init import glorot_uniform, zeros_init
from repro.nn.module import Module, ModuleList, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Glorot-initialized weight."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        init: Callable = glorot_uniform,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Linear dimensions must be positive, got ({in_features}, {out_features})"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init((out_features, in_features), rng), name="weight")
        self.bias = Parameter(zeros_init((out_features,), rng), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.p, self.rng, training=self.training)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    ``dims = [in, h1, ..., out]``.  The activation is applied between
    layers but not after the final one; optional dropout after each hidden
    activation.
    """

    def __init__(
        self,
        dims: Sequence[int],
        rng: np.random.Generator,
        activation: Optional[Module] = None,
        dropout: float = 0.0,
        bias: bool = True,
    ):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = list(dims)
        self.activation = activation if activation is not None else ReLU()
        self.linears = ModuleList(
            [Linear(dims[i], dims[i + 1], rng, bias=bias) for i in range(len(dims) - 1)]
        )
        self.dropout = Dropout(dropout, rng) if dropout > 0.0 else None

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for index, linear in enumerate(self.linears):
            x = linear(x)
            if index != last:
                x = self.activation(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x


class Bilinear(Module):
    """Bilinear form ``score(x, y) = x^T W y`` (the DGI discriminator, Eq. 13).

    ``forward`` accepts a batch of ``x`` rows and a single summary vector
    ``y`` (or a batch of the same length) and returns one score per row.
    """

    def __init__(self, left_features: int, right_features: int, rng: np.random.Generator):
        super().__init__()
        self.weight = Parameter(
            glorot_uniform((left_features, right_features), rng), name="weight"
        )

    def forward(self, x: Tensor, y: Tensor) -> Tensor:
        projected = x @ self.weight  # (n, right)
        if y.ndim == 1:
            return projected @ y  # (n,)
        return (projected * y).sum(axis=1)
