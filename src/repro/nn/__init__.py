"""A small neural-network library over :mod:`repro.autograd`.

Provides the layer/optimizer/initializer surface the ConCH paper needs:
``Module``/``Parameter`` containers, ``Linear``, ``MLP``, ``Dropout``,
activations, cross-entropy and binary-cross-entropy losses, ``Adam`` and
``SGD`` with ℓ2 weight decay, Glorot (Xavier) initialization, and an
``EarlyStopping`` helper matching the paper's patience-based protocol.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Linear, MLP, Dropout, Sequential, Bilinear
from repro.nn.activations import ReLU, LeakyReLU, Tanh, Sigmoid, ELU, Identity
from repro.nn.losses import (
    cross_entropy,
    binary_cross_entropy_with_logits,
    l2_penalty,
    mean_squared_error,
)
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.init import glorot_uniform, glorot_normal, kaiming_uniform, zeros_init
from repro.nn.schedulers import EarlyStopping

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Dropout",
    "Sequential",
    "Bilinear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "ELU",
    "Identity",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "l2_penalty",
    "mean_squared_error",
    "SGD",
    "Adam",
    "Optimizer",
    "glorot_uniform",
    "glorot_normal",
    "kaiming_uniform",
    "zeros_init",
    "EarlyStopping",
]
