"""Weight initializers.

The paper initializes with Glorot (Xavier) initialization [62]; we provide
both uniform and normal variants plus Kaiming for completeness.
All initializers take an explicit ``numpy.random.Generator`` so experiments
are reproducible end to end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shapes must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform for ReLU fan-in scaling."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros (used for biases)."""
    del rng
    return np.zeros(shape)
