"""Loss functions.

``cross_entropy`` implements the paper's Eq. 10 (softmax cross entropy over
logits with integer labels).  ``binary_cross_entropy_with_logits`` backs the
DGI-style self-supervised objective (Eq. 12).  ``l2_penalty`` is the ℓ2-norm
regularizer on the weight matrices (§V-C, penalty weight 0.0005).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Parameter


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross entropy.

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, num_classes)``.
    labels:
        Integer class indices of shape ``(n,)``.
    """
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    if labels.size == 0:
        raise ValueError("cross_entropy called with an empty batch")
    log_probs = ops.log_softmax(logits, axis=1)
    picked = log_probs[np.arange(labels.shape[0]), labels]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable mean BCE over raw scores.

    Uses the standard ``max(x, 0) - x*t + log(1 + exp(-|x|))`` formulation.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match logits shape {logits.shape}"
        )
    positive_part = logits.relu()
    linear_part = logits * Tensor(targets)
    log_part = ((-logits.abs()).exp() + 1.0).log()
    return (positive_part - linear_part + log_part).mean()


def mean_squared_error(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    targets = np.asarray(targets, dtype=np.float64)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def l2_penalty(parameters: Iterable[Parameter], weight: float) -> Optional[Tensor]:
    """``weight * sum_j ||W_j||^2`` over all given parameters.

    Returns ``None`` when ``weight == 0`` or there are no parameters, so the
    caller can skip adding a constant-zero node to the graph.
    """
    if weight == 0.0:
        return None
    total: Optional[Tensor] = None
    for parameter in parameters:
        term = (parameter * parameter).sum()
        total = term if total is None else total + term
    if total is None:
        return None
    return total * weight
