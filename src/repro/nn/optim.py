"""Optimizers: SGD (with momentum) and Adam [63].

The paper trains with Adam at learning rate 0.001 and ℓ2 penalty 0.0005;
weight decay here is the classic "L2 added to the gradient" form so either
the loss-side :func:`repro.nn.losses.l2_penalty` or optimizer-side
``weight_decay`` can be used (not both).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, ICLR 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self._m[index] is None:
                self._m[index] = np.zeros_like(parameter.data)
                self._v[index] = np.zeros_like(parameter.data)
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
