"""Reverse-mode automatic differentiation over numpy arrays.

This subpackage is the substrate that replaces PyTorch in this offline
reproduction.  It provides:

- :class:`~repro.autograd.tensor.Tensor`: an ndarray wrapper that records a
  dynamic computation graph and supports ``.backward()``.
- :mod:`~repro.autograd.ops`: functional-style operations (softmax,
  log-softmax, concatenation, stacking, embedding lookup, ...).
- :mod:`~repro.autograd.sparse`: a bridge so that ``scipy.sparse`` matrices
  can left-multiply dense tensors inside the autograd graph.  Graph
  convolutions (``A_hat @ H @ W``) use this heavily.
- :mod:`~repro.autograd.gradcheck`: finite-difference gradient checking used
  by the test suite to validate every differentiable op.

The engine is deliberately small and explicit: tensors are float64 by
default (numeric robustness matters more than speed at this scale), the
graph is built eagerly, and ``backward`` runs a topological sort.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import ops
from repro.autograd.sparse import sparse_matmul
from repro.autograd.gradcheck import gradcheck, numeric_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "ops",
    "sparse_matmul",
    "gradcheck",
    "numeric_gradient",
]
