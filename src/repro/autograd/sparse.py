"""Sparse-dense products inside the autograd graph.

Graph convolutions are dominated by products of a fixed sparse operator
(normalized adjacency, incidence matrix of a bipartite graph) with a dense
feature matrix.  ``scipy.sparse`` matrices do not carry gradients here —
they are structural constants — but the dense operand does.

``sparse_matmul(A, H)`` computes ``A @ H`` with backward ``A.T @ grad``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.autograd.tensor import Tensor


def sparse_matmul(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix by a dense tensor.

    Parameters
    ----------
    matrix:
        A ``scipy.sparse`` matrix of shape ``(m, n)``.  Treated as a
        constant (no gradient flows into it).
    dense:
        A tensor of shape ``(n, d)`` or ``(n,)``.

    Returns
    -------
    Tensor of shape ``(m, d)`` or ``(m,)``.
    """
    if not sp.issparse(matrix):
        raise TypeError(f"expected a scipy.sparse matrix, got {type(matrix).__name__}")
    if matrix.shape[1] != dense.data.shape[0]:
        raise ValueError(
            f"dimension mismatch: sparse {matrix.shape} @ dense {dense.data.shape}"
        )
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr.T @ grad)

    return dense._make(np.asarray(out_data), (dense,), backward)


def normalize_adjacency(adj: sp.spmatrix, add_self_loops: bool = True) -> sp.csr_matrix:
    """Symmetric GCN normalization ``D^{-1/2} (A + I) D^{-1/2}``.

    Isolated nodes (zero degree after optional self-loops) get zero rows
    rather than NaNs.
    """
    adj = sp.csr_matrix(adj, dtype=np.float64)
    if add_self_loops:
        adj = adj + sp.identity(adj.shape[0], dtype=np.float64, format="csr")
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = degrees[nonzero] ** -0.5
    d_mat = sp.diags(inv_sqrt)
    return sp.csr_matrix(d_mat @ adj @ d_mat)


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Row-stochastic normalization ``D^{-1} A`` (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix, dtype=np.float64)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.csr_matrix(sp.diags(inv) @ matrix)
