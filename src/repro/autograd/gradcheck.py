"""Finite-difference gradient checking.

Every differentiable op in :mod:`repro.autograd` is validated in the test
suite against central finite differences computed here.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numeric_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``sum(func(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    func:
        Function mapping tensors to a tensor (any shape; the implicit loss
        is its elementwise sum).
    inputs:
        Input tensors.  Only ``inputs[wrt]`` is perturbed.
    wrt:
        Index of the input to differentiate with respect to.
    eps:
        Perturbation size.
    """
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(func(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(func(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> bool:
    """Check analytic gradients of ``func`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch;
    returns ``True`` on success.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numeric_gradient(func, inputs, wrt=index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
