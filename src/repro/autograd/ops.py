"""Functional operations on :class:`~repro.autograd.tensor.Tensor`.

These complement the methods on ``Tensor`` with multi-argument ops
(concatenate, stack), stable softmax / log-softmax, segment reductions used
by graph aggregation, and convenience constructors.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _lift(value: Union[Tensor, ArrayLike]) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    # Reuse the private helper on Tensor; any parent works as the anchor.
    return parents[0]._make(data, parents, backward)


# ---------------------------------------------------------------------- #
# Constructors
# ---------------------------------------------------------------------- #


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def zeros_like(tensor: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(tensor.data), requires_grad=requires_grad)


# ---------------------------------------------------------------------- #
# Shape ops
# ---------------------------------------------------------------------- #


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = [_lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return _make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    tensors = [_lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return _make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a constant boolean condition."""
    a, b = _lift(a), _lift(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad * condition)
        if b.requires_grad:
            b._accumulate(grad * ~condition)

    return _make(out_data, (a, b), backward)


# ---------------------------------------------------------------------- #
# Softmax family
# ---------------------------------------------------------------------- #


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp_x = np.exp(shifted)
    out_data = exp_x / exp_x.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return _make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return _make(out_data, (x,), backward)


def masked_softmax(x: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax that assigns zero probability where ``mask`` is False.

    Rows whose mask is entirely False produce all-zero outputs (no NaN).
    """
    mask = np.asarray(mask, dtype=bool)
    neg_inf = np.where(mask, 0.0, -1e30)
    shifted = x.data + neg_inf
    shifted = shifted - shifted.max(axis=axis, keepdims=True)
    exp_x = np.exp(shifted) * mask
    denom = exp_x.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom == 0.0, 1.0, denom)
    out_data = exp_x / safe_denom

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return _make(out_data, (x,), backward)


# ---------------------------------------------------------------------- #
# Segment / scatter ops (graph aggregation primitives)
# ---------------------------------------------------------------------- #


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets given by ``segment_ids``.

    The graph-convolution workhorse: aggregating messages along edges into
    destination nodes is ``segment_sum(messages, dst_ids, num_nodes)``.
    """
    segment_ids = np.asarray(segment_ids)
    out_shape = (num_segments,) + x.data.shape[1:]
    out_data = np.zeros(out_shape, dtype=x.data.dtype)
    np.add.at(out_data, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad[segment_ids])

    return _make(out_data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows of ``x`` per segment; empty segments yield zeros."""
    segment_ids = np.asarray(segment_ids)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    safe = np.where(counts == 0, 1.0, counts)
    summed = segment_sum(x, segment_ids, num_segments)
    return summed * Tensor((1.0 / safe).reshape((-1,) + (1,) * (x.data.ndim - 1)))


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over groups of entries sharing a segment id.

    Used by attention over variable-size neighborhoods (GAT, HAN node-level
    attention): scores for edges into the same destination node are
    normalized together.
    """
    segment_ids = np.asarray(segment_ids)
    # Stable: subtract per-segment max.
    seg_max = np.full(num_segments, -np.inf, dtype=scores.data.dtype)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max = np.where(np.isinf(seg_max), 0.0, seg_max)
    shifted = scores.data - seg_max[segment_ids]
    exp_s = np.exp(shifted)
    denom = np.zeros(num_segments, dtype=scores.data.dtype)
    np.add.at(denom, segment_ids, exp_s)
    safe_denom = np.where(denom == 0.0, 1.0, denom)
    out_data = exp_s / safe_denom[segment_ids]

    def backward(grad: np.ndarray) -> None:
        if not scores.requires_grad:
            return
        weighted = grad * out_data
        seg_dot = np.zeros(num_segments, dtype=scores.data.dtype)
        np.add.at(seg_dot, segment_ids, weighted)
        scores._accumulate(weighted - out_data * seg_dot[segment_ids])

    return _make(out_data, (scores,), backward)


# ---------------------------------------------------------------------- #
# Misc
# ---------------------------------------------------------------------- #


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  Identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return _make(out_data, (x,), backward)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding table with scatter-add backward."""
    return table.index_select(np.asarray(indices))


def outer_sum(x: Tensor) -> Tensor:
    """Scalar sum; convenience alias used in losses."""
    return x.sum()
