"""The :class:`Tensor` class: a numpy ndarray with reverse-mode autodiff.

A ``Tensor`` wraps a ``numpy.ndarray`` (``.data``) and, when
``requires_grad`` is set, participates in a dynamically-built computation
graph.  Calling :meth:`Tensor.backward` on a scalar tensor walks the graph
in reverse topological order and accumulates gradients into ``.grad``.

Only float arrays carry gradients.  Integer tensors (e.g. index arrays) are
supported as constants.

Example
-------
>>> import numpy as np
>>> from repro.autograd import Tensor
>>> x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
>>> y = (x * x).sum()
>>> y.backward()
>>> x.grad
array([2., 4., 6.])
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Grad mode is per-thread (like torch): concurrent inference threads —
#: the serving scheduler runs forwards under ``no_grad`` from a worker
#: pool — must not be able to toggle recording out from under a training
#: loop, and an interleaved save/restore race on a process-global flag
#: could leave recording off forever.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether gradient recording is enabled in this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like torch.no_grad).

    Thread-local: disabling recording on a serving thread never affects
    a concurrently-training thread.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting can expand an operand along leading axes or along
    axes of size 1; the corresponding gradient must be summed back over
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) dimensions.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, np.ndarray):
        array = value
    else:
        array = np.asarray(value)
    if dtype is not None and array.dtype != dtype:
        array = array.astype(dtype)
    elif array.dtype == np.float32:
        # Standardize on float64 for numeric robustness of gradient checks.
        array = array.astype(np.float64)
    return array


class Tensor:
    """An ndarray with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    #: One class-wide reentrant lock guarding ``.grad`` read-modify-write:
    #: parameter tensors are shared objects (a trainer thread accumulates
    #: into them while other threads may zero or inspect them), and the
    #: ``grad is None``-then-assign sequence in :meth:`_accumulate` is a
    #: lost-update race without it.  Class-wide (not per-instance) so the
    #: millions of short-lived forward tensors pay no per-object lock
    #: allocation; it is only ever taken during backward/zero_grad, where
    #: the numpy work dominates.  The lock-discipline rule of
    #: ``python -m repro.analysis`` enforces the annotation.
    _lock = threading.RLock()

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ):
        self.data = _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                f"only floating-point tensors can require grad, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None  # guarded-by: _lock
        self._backward = _backward
        self._parents = _parents if self.requires_grad or _parents else ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        with self._lock:
            self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        with self._lock:
            if self.grad is None:
                self.grad = grad.copy()
            else:
                self.grad += grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1.0, which requires this tensor to
            be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a seed requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix ops
    # ------------------------------------------------------------------ #

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2 else grad * other.data)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if other.data.ndim == 2 else grad * self.data)
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple: Optional[Tuple[int, ...]] = axes if axes else None
        out_data = self.data.transpose(axes_tuple) if axes_tuple else self.data.T

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_tuple is None:
                self._accumulate(grad.T)
            else:
                inverse = np.argsort(axes_tuple)
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape) / count)

        return self._make(out_data, (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == out_data).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(grad * mask)
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis=axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                mask /= mask.sum(axis=axis, keepdims=True)
                g = grad if keepdims else np.expand_dims(grad, axis=axis)
                self._accumulate(g * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable sigmoid.
        out_data = np.empty_like(self.data)
        positive = self.data >= 0
        out_data[positive] = 1.0 / (1.0 + np.exp(-self.data[positive]))
        exp_x = np.exp(self.data[~positive])
        out_data[~positive] = exp_x / (1.0 + exp_x)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        mask = self.data > 0
        exp_term = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(mask, self.data, exp_term)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, exp_term + alpha))

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows; backward scatter-adds (duplicate indices allowed)."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparison (returns plain arrays; non-differentiable)
    # ------------------------------------------------------------------ #

    def argmax(self, axis: Optional[int] = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other) -> np.ndarray:
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data
