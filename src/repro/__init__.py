"""ConCH reproduction: meta-path context GNNs for HIN classification.

Reproduces "Leveraging Meta-path Contexts for Classification in
Heterogeneous Information Networks" (Li, Ding, Kao, Sun, Mamoulis;
ICDE 2021) entirely in numpy/scipy — including the neural-network
substrate, the HIN algorithms, synthetic stand-ins for the paper's
datasets, the ConCH model, and the baseline zoo.

Quickstart
----------
>>> from repro import api
>>> from repro.data import load_dataset, stratified_split
>>> dataset = load_dataset("dblp")
>>> split = stratified_split(dataset.labels, train_fraction=0.2)
>>> estimator = api.fit(dataset, model="conch", split=split)
>>> estimator.evaluate(split.test)  # doctest: +SKIP
{'micro_f1': 0.94, 'macro_f1': 0.93}

``model=`` accepts any registry baseline ("HAN", "GCN", ...) through the
same :class:`~repro.api.Estimator` contract.  For staged, resumable runs
and per-node serving::

    pipe = api.Pipeline("dblp", store_dir="runs/dblp")
    est = pipe.fit(train_fraction=0.2)      # rerun -> all stages skip
    est.save("conch.npz")
    api.ModelHandle.load("conch.npz").predict_nodes([0, 7])

Under traffic, front the handle with the serving subsystem
(:mod:`repro.serve`): a micro-batching ``ModelServer`` coalesces
concurrent queries into union-slice forwards, sheds load past a bounded
queue, and serves operators from a memory-mapped tier that co-located
workers share at ~zero marginal resident memory.

The pre-pipeline surface (``prepare_conch_data`` + ``ConCHTrainer``)
keeps working as thin shims over the pipeline.
"""

__version__ = "1.3.0"

__all__ = [
    "autograd", "nn", "hin", "data", "embedding", "core", "eval", "api",
    "serve", "__version__",
]
