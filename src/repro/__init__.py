"""ConCH reproduction: meta-path context GNNs for HIN classification.

Reproduces "Leveraging Meta-path Contexts for Classification in
Heterogeneous Information Networks" (Li, Ding, Kao, Sun, Mamoulis;
ICDE 2021) entirely in numpy/scipy — including the neural-network
substrate, the HIN algorithms, synthetic stand-ins for the paper's
datasets, the ConCH model, and the baseline zoo.

Quickstart
----------
>>> from repro.data import load_dataset, stratified_split
>>> from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
>>> dataset = load_dataset("dblp")
>>> split = stratified_split(dataset.labels, train_fraction=0.2)
>>> config = ConCHConfig(epochs=50, k=5, num_layers=2)
>>> data = prepare_conch_data(dataset, config)
>>> trainer = ConCHTrainer(data, config).fit(split)
>>> trainer.evaluate(split.test)  # doctest: +SKIP
{'micro_f1': 0.94, 'macro_f1': 0.93}
"""

__version__ = "1.1.0"

__all__ = ["autograd", "nn", "hin", "data", "embedding", "core", "eval", "__version__"]
