"""One estimator contract across ConCH and the baseline zoo.

A single conformance suite runs against ConCH plus registry baselines
(LabelProp, GNetMine, GCN): the same fit/predict/predict_proba/evaluate/
save/load expectations for every model, per the `repro.api.Estimator`
protocol.  The serving tests assert the row-sliced `ModelHandle` answers
per-node queries bit-identically to the full-graph forward.
"""

import numpy as np
import pytest

from repro import api
from repro.api import ConCHEstimator, Estimator, MethodEstimator, ModelHandle
from repro.api.estimator import load_estimator
from repro.baselines.base import TrainSettings
from repro.baselines.registry import baseline_names, make_estimator
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.eval.harness import method_from_estimator, run_method_on_split
from repro.hin.engine import get_engine


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def split(dblp_tiny):
    return stratified_split(dblp_tiny.labels, 0.2, seed=0)


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


def _conch_estimator(dataset, config):
    return ConCHEstimator(api.Pipeline(dataset, config=config).data, config)


#: name -> estimator factory (dataset, config) -> unfitted estimator.
ESTIMATOR_FACTORIES = {
    "conch": _conch_estimator,
    "LabelProp": lambda ds, cfg: MethodEstimator("LabelProp", ds),
    "GNetMine": lambda ds, cfg: MethodEstimator("GNetMine", ds),
    "GCN": lambda ds, cfg: MethodEstimator(
        "GCN", ds, settings=TrainSettings(epochs=15, patience=8)
    ),
}


@pytest.fixture(scope="module")
def fitted(dblp_tiny, split, tiny_config):
    """Fit each conformance subject once for the whole module."""
    estimators = {}
    for name, factory in ESTIMATOR_FACTORIES.items():
        estimators[name] = factory(dblp_tiny, tiny_config).fit(split)
    return estimators


@pytest.mark.parametrize("name", sorted(ESTIMATOR_FACTORIES))
class TestEstimatorConformance:
    """The shared contract every estimator must honor."""

    def test_satisfies_protocol(self, fitted, name):
        assert isinstance(fitted[name], Estimator)

    def test_predict_shapes_and_slicing(self, fitted, dblp_tiny, name):
        estimator = fitted[name]
        full = estimator.predict()
        assert full.shape == (dblp_tiny.num_targets,)
        assert full.dtype.kind == "i"
        some = np.array([5, 2, 60])
        assert np.array_equal(estimator.predict(some), full[some])

    def test_predict_proba_is_a_distribution(self, fitted, dblp_tiny, name):
        estimator = fitted[name]
        proba = estimator.predict_proba()
        assert proba.shape == (dblp_tiny.num_targets, dblp_tiny.num_classes)
        assert np.all(proba >= 0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
        assert np.array_equal(proba.argmax(axis=1), estimator.predict())

    def test_evaluate_reports_f1(self, fitted, split, name):
        scores = fitted[name].evaluate(split.test)
        assert set(scores) == {"micro_f1", "macro_f1"}
        assert 0.0 <= scores["micro_f1"] <= 1.0

    def test_save_load_predict_round_trip(self, fitted, tmp_path, name):
        estimator = fitted[name]
        path = tmp_path / f"{name}.npz"
        estimator.save(path)
        reloaded = load_estimator(path)
        assert np.array_equal(reloaded.predict(), estimator.predict())
        some = np.array([11, 3])
        assert np.array_equal(
            reloaded.predict(some), estimator.predict(some)
        )

    def test_unfitted_estimator_refuses_to_predict(
        self, dblp_tiny, tiny_config, name
    ):
        estimator = ESTIMATOR_FACTORIES[name](dblp_tiny, tiny_config)
        with pytest.raises(RuntimeError, match="not fitted"):
            estimator.predict()


class TestConCHEstimator:
    def test_embeddings_shape(self, fitted, dblp_tiny, tiny_config):
        z = fitted["conch"].embeddings()
        assert z.shape == (dblp_tiny.num_targets, tiny_config.out_dim)

    def test_loaded_bundle_predicts_bit_exactly(self, fitted, tmp_path):
        estimator = fitted["conch"]
        path = tmp_path / "conch.npz"
        estimator.save(path)
        reloaded = ConCHEstimator.load(path)
        assert np.array_equal(
            reloaded.predict_proba(), estimator.predict_proba()
        )


class TestUnifiedFit:
    def test_fit_runs_conch_and_baselines_uniformly(
        self, dblp_tiny, split, tiny_config
    ):
        get_engine(dblp_tiny.hin).invalidate()
        for model in ("conch", "LabelProp"):
            estimator = api.fit(
                dblp_tiny, model=model, split=split, config=tiny_config
            )
            assert estimator.predict().shape == (dblp_tiny.num_targets,)

    def test_fit_accepts_case_insensitive_and_variant_names(
        self, dblp_tiny, split, tiny_config
    ):
        estimator = api.fit(
            dblp_tiny, model="labelprop", split=split
        )
        assert estimator.name == "LabelProp"
        nc = api.fit(
            dblp_tiny, model="conch_nc", split=split, config=tiny_config
        )
        assert nc.config.use_contexts is False

    def test_fit_rejects_unknown_model(self, dblp_tiny, split):
        with pytest.raises(KeyError, match="unknown model"):
            api.fit(dblp_tiny, model="not-a-model", split=split)

    def test_registry_exposes_estimator_constructor(self, dblp_tiny, split):
        assert "LabelProp" in baseline_names()
        estimator = make_estimator("LabelProp", dblp_tiny).fit(split)
        assert estimator.predict().shape == (dblp_tiny.num_targets,)

    def test_estimator_round_trips_into_harness(self, dblp_tiny, split):
        method = method_from_estimator(
            lambda ds, seed: MethodEstimator("LabelProp", ds, seed=seed)
        )
        scores = run_method_on_split(method, dblp_tiny, split)
        assert 0.0 <= scores["micro_f1"] <= 1.0


class TestModelHandle:
    def test_predict_nodes_matches_full_forward(self, fitted, dblp_tiny):
        estimator = fitted["conch"]
        handle = ModelHandle.from_estimator(estimator)
        full = estimator.predict()
        full_proba = estimator.predict_proba()
        rng = np.random.default_rng(0)
        for size in (1, 3, 17):
            ids = rng.choice(dblp_tiny.num_targets, size=size, replace=False)
            assert np.array_equal(handle.predict_nodes(ids), full[ids])
            np.testing.assert_allclose(
                handle.predict_proba_nodes(ids), full_proba[ids],
                rtol=0, atol=1e-12,
            )

    def test_loaded_handle_serves_without_reprep(
        self, fitted, dblp_tiny, tmp_path
    ):
        estimator = fitted["conch"]
        path = tmp_path / "bundle.npz"
        estimator.save(path)
        engine = get_engine(dblp_tiny.hin)
        engine.invalidate()
        handle = ModelHandle.load(path)
        ids = np.array([0, 42, 7])
        assert np.array_equal(
            handle.predict_nodes(ids), estimator.predict(ids)
        )
        # Serving never touched the substrate: no products composed.
        assert engine.compose_log == []

    def test_query_stats_report_row_sliced_subgraph(self, fitted):
        handle = ModelHandle.from_estimator(fitted["conch"])
        handle.predict_nodes([0])
        stats = handle.last_query_stats
        assert stats["query_nodes"] == 1
        assert 0 < stats["subgraph_objects"] <= stats["total_objects"]

    def test_handle_works_in_nc_mode(self, dblp_tiny, split):
        config = ConCHConfig(
            k=3, use_contexts=False, epochs=6, patience=4, context_dim=8,
        )
        estimator = ConCHEstimator(
            api.Pipeline(dblp_tiny, config=config).data, config
        ).fit(split)
        handle = ModelHandle.from_estimator(estimator)
        full = estimator.predict()
        ids = np.array([1, 30, 65])
        assert np.array_equal(handle.predict_nodes(ids), full[ids])

    def test_duplicate_and_empty_queries(self, fitted):
        handle = ModelHandle.from_estimator(fitted["conch"])
        dup = handle.predict_nodes([4, 4, 9])
        assert dup[0] == dup[1]
        assert handle.predict_nodes([]).shape == (0,)
        with pytest.raises(IndexError):
            handle.predict_nodes([10**6])


class TestFrozenSnapshot:
    def test_reloaded_method_snapshot_is_frozen(
        self, fitted, split, tmp_path
    ):
        path = tmp_path / "lp.npz"
        fitted["LabelProp"].save(path)
        reloaded = load_estimator(path)
        with pytest.raises(RuntimeError, match="frozen"):
            reloaded.fit(split)
        scores = reloaded.evaluate(split.test)
        assert scores == fitted["LabelProp"].evaluate(split.test)


class TestProbabilityAwareAdapters:
    """`MethodOutput.test_scores` → real `predict_proba` for baselines
    that produce scores (ROADMAP item), one-hot only as the label-only
    fallback."""

    def test_score_methods_expose_real_distributions(self, dblp_tiny, split):
        for name in ("GNetMine", "LabelProp"):
            estimator = MethodEstimator(name, dblp_tiny).fit(split)
            proba = estimator.predict_proba(split.test)
            np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)
            assert not np.isin(proba, (0.0, 1.0)).all(), (
                f"{name} should surface propagation mass, not one-hot"
            )
            # predict() stays authoritative and consistent with proba.
            agreement = (
                estimator.predict(split.test) == proba.argmax(axis=1)
            ).mean()
            assert agreement > 0.9

    def test_label_only_method_still_one_hot(self, dblp_tiny, split):
        from repro.eval.harness import MethodOutput

        def label_only(dataset, query, seed):
            return MethodOutput(
                test_predictions=np.zeros(
                    dataset.num_targets, dtype=np.int64
                )
            )

        estimator = MethodEstimator(label_only, dblp_tiny).fit(split)
        proba = estimator.predict_proba(split.test)
        np.testing.assert_array_equal(proba[:, 0], 1.0)
        np.testing.assert_array_equal(proba[:, 1:], 0.0)

    def test_snapshot_round_trips_probabilities(
        self, dblp_tiny, split, tmp_path
    ):
        estimator = MethodEstimator("GNetMine", dblp_tiny).fit(split)
        path = tmp_path / "gnetmine.npz"
        estimator.save(path)
        reloaded = MethodEstimator.load(path)
        np.testing.assert_array_equal(
            reloaded.predict_proba(split.test),
            estimator.predict_proba(split.test),
        )

    def test_malformed_scores_fail_loudly(self, dblp_tiny, split):
        from repro.eval.harness import MethodOutput

        def bad_scores(dataset, query, seed):
            n = dataset.num_targets
            return MethodOutput(
                test_predictions=np.zeros(n, dtype=np.int64),
                test_scores=np.zeros((n, dataset.num_classes + 1)),
            )

        with pytest.raises(ValueError, match="returned scores of shape"):
            MethodEstimator(bad_scores, dblp_tiny).fit(split)

    def test_scores_to_proba_conventions(self):
        from repro.eval.harness import scores_to_proba

        # Non-negative mass: row-normalized; zero rows become uniform.
        mass = np.array([[2.0, 2.0], [0.0, 0.0], [3.0, 1.0]])
        proba = scores_to_proba(mass)
        np.testing.assert_allclose(
            proba, [[0.5, 0.5], [0.5, 0.5], [0.75, 0.25]]
        )
        # Anything with negatives reads as logits → softmax.
        logits = np.array([[0.0, -np.log(3.0)]])
        np.testing.assert_allclose(
            scores_to_proba(logits), [[0.75, 0.25]], rtol=1e-12
        )
        with pytest.raises(ValueError, match="2-D"):
            scores_to_proba(np.zeros(3))
