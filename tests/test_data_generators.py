"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    AMinerConfig,
    DBLPConfig,
    FreebaseConfig,
    YelpConfig,
    load_dataset,
    make_aminer,
    make_dblp,
    make_freebase,
    make_yelp,
)
from repro.data.base import biased_choice, class_prototypes, mixture_labels, noisy_features
from repro.data.registry import DATASETS, dataset_hyperparams
from repro.hin.adjacency import metapath_binary_adjacency


SMALL = {
    "dblp": DBLPConfig(num_authors=60, num_papers=200, num_conferences=8),
    "yelp": YelpConfig(num_businesses=40, num_reviews=300, num_users=25, num_keywords=18),
    "freebase": FreebaseConfig(
        num_movies=40, num_actors=120, num_directors=25, num_producers=40
    ),
    "aminer": AMinerConfig(num_papers=80, num_authors=100, num_conferences=10),
}


@pytest.fixture(params=["dblp", "yelp", "freebase", "aminer"])
def small_dataset(request):
    return load_dataset(request.param, config=SMALL[request.param])


class TestAllGenerators:
    def test_validates(self, small_dataset):
        small_dataset.validate()

    def test_all_classes_present(self, small_dataset):
        labels = small_dataset.labels
        assert np.unique(labels).size == small_dataset.num_classes

    def test_features_attached_for_every_type(self, small_dataset):
        hin = small_dataset.hin
        for node_type in hin.node_types:
            features = hin.features(node_type)
            assert features.shape[0] == hin.num_nodes(node_type)
            assert np.all(np.isfinite(features))

    def test_metapaths_start_end_at_target(self, small_dataset):
        for mp in small_dataset.metapaths:
            assert mp.endpoints_match(small_dataset.target_type)
            assert mp.is_symmetric()

    def test_deterministic_given_seed(self, small_dataset):
        name = small_dataset.name
        again = load_dataset(name, config=SMALL[name])
        np.testing.assert_array_equal(small_dataset.labels, again.labels)
        np.testing.assert_allclose(small_dataset.features, again.features)

    def test_no_isolated_target_nodes(self, small_dataset):
        # Every target node must appear in at least one meta-path projection.
        hin = small_dataset.hin
        target = small_dataset.target_type
        first_hop = hin.adjacency(target, small_dataset.metapaths[0].node_types[1])
        degrees = np.asarray(first_hop.sum(axis=1)).ravel()
        assert degrees.min() >= 1

    def test_repr(self, small_dataset):
        text = repr(small_dataset)
        assert small_dataset.name in text


class TestPlantedStructure:
    def _purity(self, dataset, metapath):
        """Fraction of meta-path-connected pairs sharing a label."""
        adj = metapath_binary_adjacency(dataset.hin, metapath).tocoo()
        labels = dataset.labels
        same = labels[adj.row] == labels[adj.col]
        return same.mean()

    def test_dblp_apcpa_beats_chance(self):
        dataset = load_dataset("dblp", config=SMALL["dblp"])
        # The *binary* APCPA projection connects most author pairs (venues
        # are hubs), so its purity is only modestly above chance; the
        # PathSim weighting is what concentrates it.  Check the margin.
        apcpa = dataset.metapaths[2]
        purity = self._purity(dataset, apcpa)
        assert purity > 1.0 / dataset.num_classes + 0.04

    def test_yelp_keyword_path_stronger_than_user_path(self):
        dataset = load_dataset("yelp", config=SMALL["yelp"])
        brurb, brkrb = dataset.metapaths
        assert self._purity(dataset, brkrb) > self._purity(dataset, brurb)

    def test_freebase_all_paths_informative(self):
        dataset = load_dataset("freebase", config=SMALL["freebase"])
        chance = 1.0 / dataset.num_classes
        for mp in dataset.metapaths:
            assert self._purity(dataset, mp) > chance

    def test_higher_affinity_increases_purity(self):
        low = make_freebase(
            FreebaseConfig(
                num_movies=40, num_actors=120, num_directors=25,
                num_producers=40, actor_affinity=0.34,
            )
        )
        high = make_freebase(
            FreebaseConfig(
                num_movies=40, num_actors=120, num_directors=25,
                num_producers=40, actor_affinity=0.95,
            )
        )
        mam = low.metapaths[0]
        assert self._purity(high, mam) > self._purity(low, mam)


class TestConfigs:
    def test_dblp_needs_enough_conferences(self):
        with pytest.raises(ValueError):
            make_dblp(DBLPConfig(num_conferences=2))

    def test_yelp_needs_enough_keywords(self):
        with pytest.raises(ValueError):
            make_yelp(YelpConfig(num_keywords=2))

    def test_aminer_scale(self):
        base = AMinerConfig(num_papers=100, num_authors=120, num_conferences=10)
        scaled = AMinerConfig(
            num_papers=100, num_authors=120, num_conferences=10, scale=2.0
        ).scaled()
        assert scaled.num_papers == 200
        assert scaled.scale == 1.0
        dataset = make_aminer(scaled)
        assert dataset.num_targets == 200

    def test_freebase_one_hot_features(self):
        dataset = load_dataset("freebase", config=SMALL["freebase"])
        np.testing.assert_allclose(
            dataset.features, np.eye(dataset.num_targets)
        )

    def test_yelp_business_features_are_attribute_encodings(self):
        dataset = load_dataset("yelp", config=SMALL["yelp"])
        feats = dataset.features
        assert feats.shape[1] == 4
        np.testing.assert_allclose(feats[:, 0] + feats[:, 1], 1.0)
        np.testing.assert_allclose(feats[:, 2] + feats[:, 3], 1.0)


class TestRegistry:
    def test_known_datasets(self):
        assert set(DATASETS) == {"dblp", "yelp", "freebase", "aminer"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imdb")

    def test_wrong_config_type(self):
        with pytest.raises(TypeError):
            load_dataset("dblp", config=YelpConfig())

    def test_hyperparams_match_paper(self):
        # k and (except Freebase, see registry docstring) L follow §V-C.
        assert dataset_hyperparams("dblp").k == 5
        assert dataset_hyperparams("dblp").num_layers == 2
        assert dataset_hyperparams("yelp").k == 10
        assert dataset_hyperparams("yelp").num_layers == 1
        assert dataset_hyperparams("freebase").k == 10
        assert dataset_hyperparams("freebase").lambda_ss > 0

    def test_case_insensitive(self):
        assert dataset_hyperparams("DBLP").k == 5


class TestBaseHelpers:
    def test_class_prototypes_norms(self):
        rng = np.random.default_rng(0)
        protos = class_prototypes(rng, 4, 16, separation=2.5)
        np.testing.assert_allclose(np.linalg.norm(protos, axis=1), 2.5)

    def test_noisy_features_shape(self):
        rng = np.random.default_rng(0)
        protos = class_prototypes(rng, 3, 8)
        labels = np.array([0, 1, 2, 0])
        feats = noisy_features(protos, labels, rng, noise=0.1)
        assert feats.shape == (4, 8)

    def test_mixture_labels_coverage(self):
        rng = np.random.default_rng(0)
        labels = mixture_labels(rng, 10, 4)
        assert np.unique(labels).size == 4

    def test_mixture_labels_skew(self):
        rng = np.random.default_rng(0)
        labels = mixture_labels(rng, 5000, 2, skew=np.array([0.9, 0.1]))
        assert (labels == 0).mean() > 0.8

    def test_mixture_labels_too_few(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mixture_labels(rng, 2, 4)

    def test_biased_choice_respects_affinity(self):
        rng = np.random.default_rng(0)
        own = np.array([1, 2, 3])
        other = np.array([10, 11])
        picks = [biased_choice(rng, own, other, 1.0) for _ in range(50)]
        assert all(p in own for p in picks)

    def test_biased_choice_empty_own_pool(self):
        rng = np.random.default_rng(0)
        pick = biased_choice(rng, np.array([]), np.array([7]), 1.0)
        assert pick == 7
