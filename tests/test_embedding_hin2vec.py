"""Tests for HIN2Vec relation-prediction embeddings."""

import numpy as np
import pytest

from repro.data.dblp import DBLPConfig, make_dblp
from repro.embedding.hin2vec import (
    HIN2Vec,
    HIN2VecConfig,
    build_triples,
    hin2vec_embeddings,
)
from repro.hin import HIN, MetaPath


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=80, num_papers=260, seed=5))


class TestConfig:
    def test_defaults_valid(self):
        config = HIN2VecConfig()
        assert config.dim > 0

    @pytest.mark.parametrize(
        "kwargs", [{"dim": 0}, {"negatives": 0}, {"epochs": 0}]
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HIN2VecConfig(**kwargs)


class TestTriples:
    def test_triples_cover_all_relations(self, dblp):
        rng = np.random.default_rng(0)
        u, v, r = build_triples(dblp.hin, dblp.metapaths, rng)
        assert u.shape == v.shape == r.shape
        assert set(np.unique(r)) == set(range(len(dblp.metapaths)))

    def test_triples_are_real_pairs(self, dblp):
        from repro.hin.adjacency import metapath_adjacency

        rng = np.random.default_rng(0)
        u, v, r = build_triples(dblp.hin, dblp.metapaths, rng)
        counts = metapath_adjacency(
            dblp.hin, dblp.metapaths[0], remove_self_paths=True
        ).tocsr()
        mask = r == 0
        for uu, vv in zip(u[mask][:50], v[mask][:50]):
            assert counts[uu, vv] > 0

    def test_no_self_pairs(self, dblp):
        rng = np.random.default_rng(0)
        u, v, _ = build_triples(dblp.hin, dblp.metapaths, rng)
        assert (u != v).all()

    def test_empty_metapath_set_raises(self, dblp):
        # A meta-path with no instances at all.
        hin = HIN()
        hin.add_node_type("A", 3)
        hin.add_node_type("P", 2)
        hin.add_edges("writes", "A", "P", [0], [0])  # single edge: no APA pairs
        with pytest.raises(ValueError, match="no meta-path"):
            build_triples(hin, [MetaPath.parse("APA")], np.random.default_rng(0))


class TestModel:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HIN2Vec(0, 1, HIN2VecConfig())
        with pytest.raises(ValueError):
            HIN2Vec(5, 0, HIN2VecConfig())

    def test_loss_decreases(self, dblp):
        rng = np.random.default_rng(0)
        u, v, r = build_triples(dblp.hin, dblp.metapaths, rng)
        config = HIN2VecConfig(dim=16, epochs=5, seed=0)
        model = HIN2Vec(dblp.num_targets, len(dblp.metapaths), config)
        trace = model.fit(u, v, r)
        assert len(trace) == 5
        assert trace[-1] < trace[0]

    def test_relation_gates_in_unit_interval(self, dblp):
        config = HIN2VecConfig(dim=8, epochs=1)
        model = HIN2Vec(dblp.num_targets, len(dblp.metapaths), config)
        gates = model.relation_gates()
        assert gates.shape == (len(dblp.metapaths), 8)
        assert ((gates > 0) & (gates < 1)).all()

    def test_deterministic_given_seed(self, dblp):
        rng = np.random.default_rng(0)
        u, v, r = build_triples(dblp.hin, dblp.metapaths, rng)
        config = HIN2VecConfig(dim=8, epochs=2, seed=7)
        first = HIN2Vec(dblp.num_targets, len(dblp.metapaths), config)
        first.fit(u, v, r)
        second = HIN2Vec(dblp.num_targets, len(dblp.metapaths), config)
        second.fit(u, v, r)
        assert np.array_equal(first.node_vectors, second.node_vectors)


class TestEndToEnd:
    def test_embedding_shape_and_finite(self, dblp):
        embeddings = hin2vec_embeddings(
            dblp.hin, dblp.metapaths, HIN2VecConfig(dim=16, epochs=2)
        )
        assert embeddings.shape == (dblp.num_targets, 16)
        assert np.isfinite(embeddings).all()

    def test_rejects_mismatched_endpoints(self, dblp):
        with pytest.raises(ValueError, match="start/end"):
            hin2vec_embeddings(
                dblp.hin,
                [dblp.metapaths[0], MetaPath.parse("PAP")],
                HIN2VecConfig(dim=8, epochs=1),
            )

    def test_rejects_empty_metapaths(self, dblp):
        with pytest.raises(ValueError, match="at least one"):
            hin2vec_embeddings(dblp.hin, [], HIN2VecConfig())

    def test_embeddings_separate_classes(self, dblp):
        # Mean within-class cosine similarity should exceed between-class:
        # connected (same-area) authors co-occur in positive triples.
        embeddings = hin2vec_embeddings(
            dblp.hin, dblp.metapaths, HIN2VecConfig(dim=32, epochs=6, seed=1)
        )
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        unit = embeddings / np.maximum(norms, 1e-12)
        sims = unit @ unit.T
        labels = dblp.labels
        same = labels[:, None] == labels[None, :]
        off_diag = ~np.eye(labels.size, dtype=bool)
        within = sims[same & off_diag].mean()
        between = sims[~same].mean()
        assert within > between
