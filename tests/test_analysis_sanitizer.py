"""Runtime thread-sanitizer tests: real load, seeded races, inversions.

Three layers of evidence:

1. **Detectors work** — seeded violations (an unguarded container
   access, an A→B/B→A lock-order inversion, a non-reentrant
   re-acquisition) each produce exactly the report kind they should.
   Without these negative tests a silently broken sanitizer would make
   the stress tests below meaningless.
2. **The serving tier is clean under load** — a real
   :class:`repro.serve.ModelServer` (fit on the tiny DBLP generator) is
   instrumented and driven by 8 submitter threads racing ``stats()``
   readers; an instrumented :class:`LRUByteCache` with a tiny budget is
   hammered by 8 threads forcing constant eviction.  Zero reports.
3. **Static and dynamic tiers agree** — both are driven by the same
   ``# guarded-by:`` annotations (see ``test_analysis_rules``), so a
   class the static rule accepts is exactly what the tracer instruments.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.analysis.sanitizer import (
    GuardedDict,
    GuardedOrderedDict,
    RaceReport,
    ThreadSanitizer,
    TracedLock,
    instrument,
)
from repro.api import ConCHEstimator, ModelHandle
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.cache import LRUByteCache
from repro.serve import ModelServer

THREADS = 8


def run_threads(count, target):
    """Run ``target(index)`` on ``count`` threads, re-raising failures."""
    errors = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as exc:  # pragma: no cover - debug aid
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"stress-{i}")
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------- #
# 1. Detector negative tests (seeded violations MUST be caught)
# ---------------------------------------------------------------------- #


class TestDetectors:
    def test_unguarded_container_access_is_reported(self):
        sanitizer = ThreadSanitizer()
        cache = LRUByteCache(budget=1 << 20)
        instrument(sanitizer, cache)

        cache.put("key", b"x" * 64)  # via guarded methods: clean
        assert sanitizer.reports == []

        cache._entries.get("key")  # deliberate raw touch, no lock held
        kinds = [r.kind for r in sanitizer.reports]
        assert kinds == ["unguarded-access"]
        assert "_entries" in sanitizer.reports[0].message

    def test_unguarded_write_from_foreign_thread_is_reported(self):
        # The ISSUE's seeded-race scenario: a thread mutating guarded
        # state without taking the lock first.
        sanitizer = ThreadSanitizer()
        cache = LRUByteCache(budget=1 << 20)
        instrument(sanitizer, cache)

        def racy(_index):
            cache._entries["rogue"] = object()

        run_threads(1, racy)
        assert any(r.kind == "unguarded-access" for r in sanitizer.reports)
        with pytest.raises(AssertionError, match="unguarded-access"):
            sanitizer.assert_clean()

    def test_lock_order_inversion_is_reported(self):
        sanitizer = ThreadSanitizer()
        lock_a = TracedLock(sanitizer, threading.Lock(), name="engine._lock")
        lock_b = TracedLock(sanitizer, threading.Lock(), name="server._lock")

        def forward(_index):
            with lock_a:
                with lock_b:
                    pass

        def backward(_index):
            with lock_b:
                with lock_a:
                    pass

        run_threads(1, forward)
        run_threads(1, backward)
        inversions = [
            r for r in sanitizer.reports if r.kind == "lock-order-inversion"
        ]
        assert len(inversions) == 1
        assert "engine._lock" in inversions[0].message
        assert "server._lock" in inversions[0].message

    def test_consistent_order_is_clean(self):
        sanitizer = ThreadSanitizer()
        lock_a = TracedLock(sanitizer, threading.Lock(), name="A")
        lock_b = TracedLock(sanitizer, threading.Lock(), name="B")

        def forward(_index):
            for _ in range(50):
                with lock_a:
                    with lock_b:
                        pass

        run_threads(4, forward)
        sanitizer.assert_clean()

    def test_nonreentrant_reacquisition_is_reported(self):
        sanitizer = ThreadSanitizer()
        lock = TracedLock(sanitizer, threading.Lock(), name="plain")
        lock.acquire()
        try:
            assert lock.acquire(blocking=False) is False
        finally:
            lock.release()
        assert [r.kind for r in sanitizer.reports] == ["self-deadlock"]

    def test_rlock_reacquisition_is_fine(self):
        sanitizer = ThreadSanitizer()
        lock = TracedLock(sanitizer, threading.RLock(), name="reentrant")
        with lock:
            with lock:
                pass
        sanitizer.assert_clean()

    def test_traced_lock_never_double_wraps(self):
        sanitizer = ThreadSanitizer()
        inner = threading.Lock()
        once = TracedLock(sanitizer, inner, name="x")
        twice = TracedLock(sanitizer, once, name="x")
        assert twice.inner is inner

    def test_instrument_is_idempotent(self):
        sanitizer = ThreadSanitizer()
        cache = LRUByteCache(budget=1 << 20)
        first = instrument(sanitizer, cache)
        second = instrument(sanitizer, cache)
        assert first["_lock"] is second["_lock"]
        assert isinstance(cache._entries, GuardedOrderedDict)

    def test_guarded_dict_checks_reads_and_writes(self):
        sanitizer = ThreadSanitizer()
        lock = TracedLock(sanitizer, threading.Lock(), name="guard")
        proxy = GuardedDict({"a": 1})
        proxy._trace_with(sanitizer, lock, "obj.attr")

        with lock:
            proxy["b"] = 2
            assert proxy["a"] == 1
        assert sanitizer.reports == []

        _ = proxy["b"]
        proxy["c"] = 3
        kinds = {r.kind for r in sanitizer.reports}
        assert kinds == {"unguarded-access"}
        assert len(sanitizer.reports) == 2


# ---------------------------------------------------------------------- #
# 2. Cache stress: 8 threads forcing constant eviction, zero reports
# ---------------------------------------------------------------------- #


class TestCacheStress:
    def test_concurrent_eviction_is_clean(self):
        sanitizer = ThreadSanitizer()
        evicted = []
        # Budget fits only ~4 of the 64-byte payloads: every put evicts.
        cache = LRUByteCache(
            budget=4 * 256, on_evict=lambda key, value: evicted.append(key)
        )
        instrument(sanitizer, cache)

        def hammer(index):
            rng = np.random.default_rng(index)
            for step in range(200):
                key = (index, step % 13)
                cache.put(key, bytes(rng.integers(0, 255, 64, np.uint8)))
                cache.get((index, int(rng.integers(0, 13))))
                if step % 17 == 0:
                    cache.discard(key)
                if step % 29 == 0:
                    cache.stats()
                    len(cache)

        run_threads(THREADS, hammer)
        sanitizer.assert_clean()
        assert evicted, "budget was sized to force evictions"
        stats = cache.stats()
        assert stats["evictions"] == len(evicted)
        assert stats["resident_bytes"] <= 4 * 256


# ---------------------------------------------------------------------- #
# 3. Server stress: real ModelServer load under instrumentation
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    data = load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )
    config = ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )
    split = stratified_split(data.labels, 0.2, seed=0)
    estimator = ConCHEstimator(
        api.Pipeline(data, config=config).data, config
    ).fit(split)
    path = tmp_path_factory.mktemp("bundle") / "conch.npz"
    estimator.save(path)
    return ModelHandle.load(path)


class TestServerStress:
    def test_model_server_under_load_is_clean(self, handle):
        sanitizer = ThreadSanitizer()
        server = ModelServer(
            handle, max_batch_size=16, max_wait_ms=1.0, num_workers=2
        )
        instrument(sanitizer, server)
        server.start()
        try:
            expected = {}

            def drive(index):
                rng = np.random.default_rng(index)
                futures = []
                for _ in range(25):
                    ids = rng.integers(
                        0, handle.num_objects, size=1 + int(rng.integers(0, 5))
                    ).astype(np.int64)
                    futures.append((ids, server.submit(ids)))
                    if len(futures) % 7 == 0:
                        server.stats()  # reader racing the workers
                answers = [
                    (ids, future.result(timeout=30.0))
                    for ids, future in futures
                ]
                expected[index] = answers

            run_threads(THREADS, drive)
        finally:
            server.stop()

        sanitizer.assert_clean()
        stats = server.stats()
        assert stats["requests"] == THREADS * 25
        assert stats["answered"] == THREADS * 25
        assert stats["failed"] == 0
        # Instrumentation must not perturb answers: every future matches
        # the sequential handle bit-exactly.
        for answers in expected.values():
            for ids, labels in answers:
                np.testing.assert_array_equal(
                    labels, handle.predict_nodes(ids)
                )

    def test_seeded_unguarded_server_write_is_detected(self, handle):
        # Negative twin of the stress test: prove the instrumentation
        # actually watches ModelServer state, not just the cache.
        sanitizer = ThreadSanitizer()
        server = ModelServer(handle, max_wait_ms=0.5)
        instrument(sanitizer, server)
        server.start()
        try:
            def rogue(_index):
                server._counters["requests"] += 1  # no lock: a real race

            run_threads(1, rogue)
        finally:
            server.stop()
        unguarded = [
            r for r in sanitizer.reports if r.kind == "unguarded-access"
        ]
        assert unguarded
        assert "_counters" in unguarded[0].message
        assert "ModelServer._lock" in unguarded[0].message
