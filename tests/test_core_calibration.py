"""Tests for confidence calibration (ECE, reliability bins, temperature
scaling)."""

import numpy as np
import pytest

from repro.core.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    max_calibration_error,
    reliability_table,
)


def perfect_probabilities(n: int = 200, num_classes: int = 4, seed: int = 0):
    """Probabilities whose confidence equals their accuracy by construction:
    predictions are correct with probability equal to the stated confidence."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    confidence = 0.75
    probs = np.full((n, num_classes), (1 - confidence) / (num_classes - 1))
    predictions = labels.copy()
    wrong = rng.random(n) > confidence
    predictions[wrong] = (labels[wrong] + 1) % num_classes
    probs[np.arange(n), predictions] = confidence
    return probs, labels


def overconfident_probabilities(n: int = 300, seed: int = 1):
    """90% stated confidence, ~60% actual accuracy: badly over-confident."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=n)
    predictions = labels.copy()
    wrong = rng.random(n) > 0.6
    predictions[wrong] = (labels[wrong] + 1) % 3
    probs = np.full((n, 3), 0.05)
    probs[np.arange(n), predictions] = 0.9
    return probs, labels


class TestReliabilityTable:
    def test_bin_count_and_coverage(self):
        probs, labels = perfect_probabilities()
        bins = reliability_table(probs, labels, num_bins=10)
        assert len(bins) == 10
        assert sum(b.count for b in bins) == labels.size

    def test_bin_edges_monotone(self):
        probs, labels = perfect_probabilities()
        bins = reliability_table(probs, labels, num_bins=5)
        for left, right in zip(bins[:-1], bins[1:]):
            assert left.upper == pytest.approx(right.lower)

    def test_confidence_one_lands_in_last_bin(self):
        probs = np.array([[1.0, 0.0], [1.0, 0.0]])
        labels = np.array([0, 1])
        bins = reliability_table(probs, labels, num_bins=10)
        assert bins[-1].count == 2
        assert bins[-1].accuracy == pytest.approx(0.5)

    def test_bad_num_bins(self):
        probs, labels = perfect_probabilities()
        with pytest.raises(ValueError):
            reliability_table(probs, labels, num_bins=0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            reliability_table(np.ones((3, 2)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            reliability_table(np.ones(3), np.zeros(3, dtype=int))


class TestECE:
    def test_well_calibrated_scores_low(self):
        probs, labels = perfect_probabilities(n=2000)
        assert expected_calibration_error(probs, labels) < 0.05

    def test_overconfident_scores_high(self):
        probs, labels = overconfident_probabilities()
        assert expected_calibration_error(probs, labels) > 0.2

    def test_bounded_by_one(self):
        probs, labels = overconfident_probabilities()
        assert 0.0 <= expected_calibration_error(probs, labels) <= 1.0

    def test_mce_at_least_ece(self):
        probs, labels = overconfident_probabilities()
        assert max_calibration_error(probs, labels) >= expected_calibration_error(
            probs, labels
        ) - 1e-12


class TestTemperatureScaler:
    def test_reduces_ece_on_overconfident_model(self):
        probs, labels = overconfident_probabilities(n=600)
        # Fit on one half, evaluate on the other.
        half = probs.shape[0] // 2
        scaler = TemperatureScaler().fit_from_probabilities(
            probs[:half], labels[:half]
        )
        before = expected_calibration_error(probs[half:], labels[half:])
        after = expected_calibration_error(
            scaler.transform_probabilities(probs[half:]), labels[half:]
        )
        assert scaler.temperature > 1.0  # softening, as expected
        assert after < before

    def test_predictions_invariant(self):
        probs, labels = overconfident_probabilities()
        scaler = TemperatureScaler().fit_from_probabilities(probs, labels)
        calibrated = scaler.transform_probabilities(probs)
        assert np.array_equal(
            probs.argmax(axis=1), calibrated.argmax(axis=1)
        )

    def test_rows_sum_to_one(self):
        probs, labels = overconfident_probabilities()
        scaler = TemperatureScaler().fit_from_probabilities(probs, labels)
        calibrated = scaler.transform_probabilities(probs)
        assert np.allclose(calibrated.sum(axis=1), 1.0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform(np.ones((2, 3)))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            TemperatureScaler().fit(np.ones((3, 2)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            TemperatureScaler().fit(np.ones((0, 2)), np.zeros(0, dtype=int))

    def test_logit_and_probability_paths_agree(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(100, 4)) * 3
        labels = rng.integers(0, 4, size=100)
        from repro.core.calibration import _stable_softmax

        probs = _stable_softmax(logits)
        t_logits = TemperatureScaler().fit(logits, labels).temperature
        t_probs = TemperatureScaler().fit_from_probabilities(
            probs, labels
        ).temperature
        # log-softmax differs from raw logits by a per-row constant, which
        # temperature scaling does not absorb exactly; the fitted values
        # agree closely in practice.
        assert t_probs == pytest.approx(t_logits, rel=0.05)

    def test_integration_with_conch_classifier(self):
        # Calibrate real ConCH validation scores end to end.
        from repro.core.classifier import ConCHClassifier
        from repro.data import stratified_split
        from repro.data.dblp import DBLPConfig, make_dblp

        dataset = make_dblp(DBLPConfig(num_authors=80, num_papers=240, seed=8))
        split = stratified_split(dataset.labels, 0.2, seed=0)
        clf = ConCHClassifier(
            hidden_dim=16, out_dim=16, context_dim=8,
            embed_num_walks=1, embed_walk_length=8, embed_epochs=1,
            epochs=25, patience=12,
        ).fit(dataset, split)
        scores = clf.predict_scores()
        scaler = TemperatureScaler().fit_from_probabilities(
            scores[split.val], dataset.labels[split.val]
        )
        calibrated = scaler.transform_probabilities(scores[split.test])
        assert calibrated.shape == scores[split.test].shape
        assert np.allclose(calibrated.sum(axis=1), 1.0)
        # Accuracy unchanged by calibration.
        assert np.array_equal(
            calibrated.argmax(axis=1), scores[split.test].argmax(axis=1)
        )
