"""Property-based tests (hypothesis) for the similarity measures,
meta-path discovery, and contest statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.splits import corrupt_labels
from repro.eval.statistics import (
    bootstrap_ci,
    count_wins,
    mean_ranks,
    mean_std,
    win_matrix,
)
from repro.eval.harness import ContestResult
from repro.hin import HIN, MetaPath
from repro.hin.discovery import discover_metapaths, rank_metapaths
from repro.hin.pathsim import pathsim_matrix
from repro.hin.similarity import (
    cosine_commuting_matrix,
    hetesim_matrix,
    joinsim_matrix,
)


@st.composite
def random_bipartite_hin(draw):
    """A random A–P network with at least one edge."""
    num_a = draw(st.integers(min_value=2, max_value=12))
    num_p = draw(st.integers(min_value=1, max_value=10))
    num_edges = draw(st.integers(min_value=1, max_value=40))
    src = draw(
        arrays(np.int64, num_edges, elements=st.integers(0, num_a - 1))
    )
    dst = draw(
        arrays(np.int64, num_edges, elements=st.integers(0, num_p - 1))
    )
    hin = HIN()
    hin.add_node_type("A", num_a)
    hin.add_node_type("P", num_p)
    hin.add_edges("writes", "A", "P", src, dst)
    return hin


APA = MetaPath.parse("APA")


class TestSimilarityProperties:
    @given(random_bipartite_hin())
    @settings(max_examples=40, deadline=None)
    def test_all_measures_bounded_and_symmetric(self, hin):
        for fn in (hetesim_matrix, joinsim_matrix, cosine_commuting_matrix):
            scores = fn(hin, APA)
            if scores.nnz:
                assert scores.data.min() >= 0.0
                assert scores.data.max() <= 1.0 + 1e-12
            assert abs(scores - scores.T).max() < 1e-9

    @given(random_bipartite_hin())
    @settings(max_examples=40, deadline=None)
    def test_joinsim_dominates_pathsim(self, hin):
        # AM-GM: M[u,v]/sqrt(Muu*Mvv) >= 2*M[u,v]/(Muu+Mvv) entrywise.
        join = joinsim_matrix(hin, APA).toarray()
        path = pathsim_matrix(hin, APA).toarray()
        assert (join + 1e-9 >= path).all()

    @given(random_bipartite_hin())
    @settings(max_examples=40, deadline=None)
    def test_same_support_for_path_measures(self, hin):
        # PathSim and JoinSim score exactly the meta-path-connected pairs.
        join = joinsim_matrix(hin, APA)
        path = pathsim_matrix(hin, APA)
        assert (join.astype(bool) != path.astype(bool)).nnz == 0

    @given(random_bipartite_hin())
    @settings(max_examples=30, deadline=None)
    def test_diagonals_absent(self, hin):
        for fn in (hetesim_matrix, joinsim_matrix, cosine_commuting_matrix):
            assert np.allclose(fn(hin, APA).diagonal(), 0.0)


class TestDiscoveryProperties:
    @given(random_bipartite_hin(), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_discovered_paths_valid(self, hin, max_length):
        schema = hin.schema()
        for path in discover_metapaths(hin, "A", max_length=max_length):
            assert path.is_symmetric()
            assert path.endpoints_match("A")
            schema.validate_metapath(path.node_types)  # must not raise

    @given(
        random_bipartite_hin(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_rank_scores_bounded(self, hin, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=hin.num_nodes("A"))
        ranked = rank_metapaths(hin, [APA], labels)
        for entry in ranked:
            assert 0.0 <= entry.homophily <= 1.0
            assert 0.0 <= entry.coverage <= 1.0
            assert 0.0 <= entry.score <= 1.0


positive_floats = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


class TestStatisticsProperties:
    @given(st.lists(positive_floats, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_mean_std_consistent_with_numpy(self, values):
        mean, std = mean_std(values)
        assert mean == pytest.approx(float(np.mean(values)))
        assert std == pytest.approx(float(np.std(values)))

    @given(st.lists(positive_floats, min_size=2, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_bootstrap_ci_ordered_and_within_range(self, values):
        low, high = bootstrap_ci(values, seed=0)
        assert low <= high
        assert min(values) - 1e-9 <= low
        assert high <= max(values) + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B", "C"]),
                st.sampled_from(["d1", "d2"]),
                st.sampled_from([0.02, 0.2]),
                positive_floats,
            ),
            min_size=1,
            max_size=24,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_win_matrix_conservation(self, rows):
        results = [
            ContestResult(m, d, f, s, s) for (m, d, f, s) in rows
        ]
        methods, matrix = win_matrix(results)
        assert np.trace(matrix) == 0
        assert (matrix >= 0).all()
        # Total wins in a contest can't exceed pairs present in it.
        wins = count_wins(results)
        assert all(w >= 0 for w in wins.values())

    @given(
        arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=2, max_value=6),
            ),
            elements=positive_floats,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_ranks_bounds(self, scores):
        ranks = mean_ranks(scores)
        num_methods = scores.shape[1]
        assert ranks.shape == (num_methods,)
        assert (ranks >= 1.0 - 1e-9).all()
        assert (ranks <= num_methods + 1e-9).all()
        # Rank sum per contest is n(n+1)/2, so the mean-rank total is fixed.
        assert ranks.sum() == pytest.approx(num_methods * (num_methods + 1) / 2)


class TestCorruptionProperties:
    @given(
        st.integers(min_value=10, max_value=60),
        st.integers(min_value=2, max_value=5),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_corruption_flip_budget(self, n, num_classes, rate, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, num_classes, size=n)
        indices = np.arange(n // 2)
        noisy = corrupt_labels(labels, indices, rate, num_classes, seed=seed)
        changed = (noisy != labels).sum()
        assert changed == int(round(rate * indices.size))
        assert noisy.min() >= 0 and noisy.max() < num_classes


class TestMetaGraphProperties:
    @given(random_bipartite_hin())
    @settings(max_examples=30, deadline=None)
    def test_single_branch_degenerates(self, hin):
        from repro.hin.adjacency import metapath_adjacency
        from repro.hin.metagraph import MetaGraph, metagraph_adjacency

        via_graph = metagraph_adjacency(hin, MetaGraph([[APA]]))
        via_path = metapath_adjacency(hin, APA)
        assert abs(via_graph - via_path).max() < 1e-12

    @given(random_bipartite_hin())
    @settings(max_examples=30, deadline=None)
    def test_conjunction_support_subset(self, hin):
        # (APA & APA) support equals APA support; counts are squared.
        from repro.hin.adjacency import metapath_adjacency
        from repro.hin.metagraph import MetaGraph, metagraph_adjacency

        conj = metagraph_adjacency(
            hin, MetaGraph([[APA, APA]]), remove_self_paths=False
        )
        single = metapath_adjacency(hin, APA, remove_self_paths=False)
        assert (conj.astype(bool) != single.astype(bool)).nnz == 0
        assert abs(conj - single.multiply(single)).max() < 1e-12

    @given(random_bipartite_hin(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_metagraph_pathsim_bounded(self, hin, k):
        from repro.hin.metagraph import (
            MetaGraph,
            metagraph_pathsim,
            top_k_metagraph_neighbors,
        )

        graph = MetaGraph([[APA, APA]])
        scores = metagraph_pathsim(hin, graph)
        if scores.nnz:
            assert scores.data.min() > 0
            assert scores.data.max() <= 1.0 + 1e-12
        lists = top_k_metagraph_neighbors(hin, graph, k)
        assert all(entry.size <= k for entry in lists)
