"""Tests for the relation-typed extras: RGCN and GTN."""

import numpy as np
import pytest

from repro.autograd.gradcheck import numeric_gradient
from repro.autograd.tensor import Tensor
from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.gtn import GTN, GTChannel, global_relation_operators
from repro.baselines.rgcn import RGCN, RelationalConv, relation_message_operators
from repro.data.dblp import DBLPConfig, make_dblp
from repro.data.splits import stratified_split
from repro.eval.metrics import micro_f1


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=100, num_papers=320, seed=2))


@pytest.fixture(scope="module")
def split(dblp):
    return stratified_split(dblp.labels, 0.2, seed=0)


def chance_level(dataset) -> float:
    counts = np.bincount(dataset.labels)
    return counts.max() / counts.sum()


class TestRelationMessageOperators:
    def test_one_operator_per_relation(self, dblp):
        operators = relation_message_operators(dblp.hin)
        assert len(operators) == len(dblp.hin.relations)

    def test_shapes_are_dst_by_src(self, dblp):
        hin = dblp.hin
        for (src_type, dst_type, operator), relation in zip(
            relation_message_operators(hin), hin.relations
        ):
            assert src_type == relation.src_type
            assert dst_type == relation.dst_type
            assert operator.shape == (
                hin.num_nodes(dst_type),
                hin.num_nodes(src_type),
            )

    def test_rows_are_stochastic_where_nonempty(self, dblp):
        for _, _, operator in relation_message_operators(dblp.hin):
            sums = np.asarray(operator.sum(axis=1)).ravel()
            nonzero = sums > 0
            assert np.allclose(sums[nonzero], 1.0)


class TestRelationalConv:
    def _embeddings(self, hin, dim, rng):
        return {
            t: Tensor(rng.normal(size=(hin.num_nodes(t), dim)))
            for t in hin.node_types
        }

    def test_forward_preserves_shapes(self, dblp):
        rng = np.random.default_rng(0)
        hin = dblp.hin
        operators = relation_message_operators(hin)
        layer = RelationalConv(hin.node_types, operators, 8, rng)
        h = self._embeddings(hin, 8, rng)
        out = layer(h)
        for node_type in hin.node_types:
            assert out[node_type].shape == h[node_type].shape

    def test_basis_decomposition_shrinks_parameters(self, dblp):
        rng = np.random.default_rng(0)
        hin = dblp.hin
        operators = relation_message_operators(hin)
        full = RelationalConv(hin.node_types, operators, 16, rng)
        shared = RelationalConv(hin.node_types, operators, 16, rng, num_bases=2)
        count = lambda m: sum(p.size for p in m.parameters())
        assert count(shared) < count(full)

    def test_basis_forward_matches_shapes_and_grads_flow(self, dblp):
        rng = np.random.default_rng(1)
        hin = dblp.hin
        operators = relation_message_operators(hin)
        layer = RelationalConv(hin.node_types, operators, 8, rng, num_bases=3)
        h = self._embeddings(hin, 8, rng)
        out = layer(h)
        loss = sum(out[t].sum() for t in hin.node_types)
        loss.backward()
        bases = layer._parameters["bases"]
        assert bases.grad is not None
        assert np.isfinite(bases.grad).all()

    def test_basis_coefficient_gradient_matches_finite_differences(self):
        # W_r = sum_b a_rb V_b composed through a matmul: check d/d a.
        rng = np.random.default_rng(0)
        bases = Tensor(rng.normal(size=(3, 4, 4)), requires_grad=True)
        coeff = Tensor(rng.normal(size=3), requires_grad=True)
        h = Tensor(rng.normal(size=(5, 4)))

        def forward(coeff_t, bases_t):
            weight = (coeff_t.reshape(3, 1, 1) * bases_t).sum(axis=0)
            return h @ weight

        out = forward(coeff, bases)
        out.backward(np.ones_like(out.data))
        numeric = numeric_gradient(forward, [coeff, bases], wrt=0)
        assert np.allclose(coeff.grad, numeric, atol=1e-5)

    def test_rejects_bad_num_bases(self, dblp):
        rng = np.random.default_rng(0)
        operators = relation_message_operators(dblp.hin)
        with pytest.raises(ValueError):
            RelationalConv(dblp.hin.node_types, operators, 8, rng, num_bases=0)


class TestRGCNModel:
    def test_logits_shape(self, dblp):
        rng = np.random.default_rng(0)
        hin = dblp.hin
        operators = relation_message_operators(hin)
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = RGCN(
            type_dims, operators, dblp.target_type, 16, dblp.num_classes, rng
        )
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        logits = model(features)
        assert logits.shape == (dblp.num_targets, dblp.num_classes)

    def test_rejects_zero_layers(self, dblp):
        rng = np.random.default_rng(0)
        hin = dblp.hin
        operators = relation_message_operators(hin)
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        with pytest.raises(ValueError):
            RGCN(
                type_dims,
                operators,
                dblp.target_type,
                16,
                dblp.num_classes,
                rng,
                num_layers=0,
            )

    def test_method_beats_chance(self, dblp, split):
        method = make_method(
            "RGCN", settings=TrainSettings(epochs=60, patience=30)
        )
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1

    def test_method_with_bases_beats_chance(self, dblp, split):
        method = make_method(
            "RGCN", num_bases=2, settings=TrainSettings(epochs=60, patience=30)
        )
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1


class TestGlobalRelationOperators:
    def test_identity_first_and_counts(self, dblp):
        names, operators = global_relation_operators(dblp.hin)
        assert names[0] == "I"
        assert len(names) == len(operators) == len(dblp.hin.relations) + 1

    def test_operators_are_global_and_stochastic(self, dblp):
        total = dblp.hin.total_nodes
        _, operators = global_relation_operators(dblp.hin)
        for operator in operators:
            assert operator.shape == (total, total)
            sums = np.asarray(operator.sum(axis=1)).ravel()
            nonzero = sums > 0
            assert np.allclose(sums[nonzero], 1.0)

    def test_edge_direction_pulls_src_into_dst_rows(self, dblp):
        # For relation A->P, operator rows are P (dst) and columns A (src).
        hin = dblp.hin
        offsets = hin.global_offsets()
        names, operators = global_relation_operators(hin)
        relation = hin.relations[0]
        operator = operators[names.index(relation.name)].tocoo()
        src_lo = offsets[relation.src_type]
        src_hi = src_lo + hin.num_nodes(relation.src_type)
        dst_lo = offsets[relation.dst_type]
        dst_hi = dst_lo + hin.num_nodes(relation.dst_type)
        assert ((operator.row >= dst_lo) & (operator.row < dst_hi)).all()
        assert ((operator.col >= src_lo) & (operator.col < src_hi)).all()


class TestGTChannel:
    def test_identity_hop_is_noop(self, dblp):
        rng = np.random.default_rng(0)
        names, operators = global_relation_operators(dblp.hin)
        channel = GTChannel(len(names), num_hops=1, rng=rng)
        # Saturate the softmax on the identity operator.
        select = channel._parameters["select_0"]
        select.data[:] = -50.0
        select.data[0] = 50.0
        h = Tensor(rng.normal(size=(dblp.hin.total_nodes, 4)))
        out = channel(operators, h)
        assert np.allclose(out.numpy(), h.numpy(), atol=1e-8)

    def test_hop_weights_on_simplex(self, dblp):
        rng = np.random.default_rng(0)
        names, _ = global_relation_operators(dblp.hin)
        channel = GTChannel(len(names), num_hops=3, rng=rng)
        for hop in range(3):
            weights = channel.hop_weights(hop).numpy()
            assert weights.shape == (len(names),)
            assert np.all(weights > 0)
            assert np.isclose(weights.sum(), 1.0)

    def test_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            GTChannel(3, num_hops=0, rng=np.random.default_rng(0))

    def test_selection_gradient_matches_finite_differences(self, dblp):
        # The soft relation mixture sum_r softmax(w)_r (M_r @ H): check d/dw.
        from repro.autograd import ops
        from repro.autograd.sparse import sparse_matmul

        rng = np.random.default_rng(0)
        _, operators = global_relation_operators(dblp.hin)
        operators = operators[:3]
        h = Tensor(rng.normal(size=(dblp.hin.total_nodes, 3)))
        w = Tensor(rng.normal(size=3), requires_grad=True)

        def forward(w_t):
            alpha = ops.softmax(w_t)
            mixed = None
            for index, operator in enumerate(operators):
                term = sparse_matmul(operator, h) * alpha[index]
                mixed = term if mixed is None else mixed + term
            return mixed

        out = forward(w)
        out.backward(np.ones_like(out.data))
        numeric = numeric_gradient(forward, [w], wrt=0)
        assert np.allclose(w.grad, numeric, atol=1e-5)


class TestGTNModel:
    def _build(self, dblp, rng, **kwargs):
        hin = dblp.hin
        names, operators = global_relation_operators(hin)
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = GTN(
            type_dims, names, dblp.target_type, 8, dblp.num_classes, rng, **kwargs
        )
        offsets = hin.global_offsets()
        start = offsets[dblp.target_type]
        target_rows = np.arange(start, start + dblp.num_targets)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        return model, operators, features, offsets, target_rows

    def test_logits_shape(self, dblp):
        rng = np.random.default_rng(0)
        model, operators, features, offsets, rows = self._build(dblp, rng)
        logits = model(operators, features, offsets, rows)
        assert logits.shape == (dblp.num_targets, dblp.num_classes)

    def test_relation_weights_readout(self, dblp):
        rng = np.random.default_rng(0)
        model, *_ = self._build(dblp, rng, num_channels=3, num_hops=2)
        readout = model.relation_weights()
        assert len(readout) == 3
        for hops in readout:
            assert len(hops) == 2
            for weights in hops:
                assert "I" in weights
                assert np.isclose(sum(weights.values()), 1.0)

    def test_rejects_zero_channels(self, dblp):
        rng = np.random.default_rng(0)
        hin = dblp.hin
        names, _ = global_relation_operators(hin)
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        with pytest.raises(ValueError):
            GTN(
                type_dims,
                names,
                dblp.target_type,
                8,
                dblp.num_classes,
                rng,
                num_channels=0,
            )

    def test_method_beats_chance_and_reports_weights(self, dblp, split):
        method = make_method(
            "GTN", settings=TrainSettings(epochs=60, patience=30)
        )
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1
        assert "relation_weights" in out.extras

    def test_selection_weights_move_during_training(self, dblp, split):
        rng = np.random.default_rng(0)
        model, operators, features, offsets, rows = self._build(dblp, rng)
        before = [
            hop.copy() for hops in model.relation_weights() for hop in hops
        ]
        from repro.baselines.base import SemiSupervisedTrainer

        SemiSupervisedTrainer(
            model,
            forward=lambda m: m(operators, features, offsets, rows),
            labels=dblp.labels,
            settings=TrainSettings(epochs=15, patience=15),
        ).fit(split)
        after = [hop for hops in model.relation_weights() for hop in hops]
        moved = any(
            not np.isclose(b[name], a[name], atol=1e-6)
            for b, a in zip(before, after)
            for name in b
        )
        assert moved


class TestRegistryExtras:
    @pytest.mark.parametrize("name", ["RGCN", "GTN"])
    def test_registered(self, name):
        assert callable(make_method(name))
