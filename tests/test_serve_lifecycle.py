"""Serving lifecycle: stop/submit races, restart guards, frozen clocks.

What must hold (the bugs this file pins down stayed fixed):

1. **No stranded callers** — a ``submit`` racing ``stop()`` on either
   server class always resolves its future (answer or error) instead of
   leaving the caller blocked forever; a sanitizer-instrumented stress
   run sees zero stranded futures and zero lock-discipline findings.
2. **Idempotent teardown** — ``stop()`` is safe on a never-started
   server (no ``AttributeError`` from a ``None`` request queue) and
   safe to call twice on both classes.
3. **Honest telemetry** — ``uptime_seconds`` / ``throughput_rps``
   freeze at the stop timestamp instead of decaying toward zero on a
   stopped server.
4. **Restart safety** — ``start()`` after ``stop()`` works once the old
   workers exited, and is *refused* while a wedged worker from the
   previous run could still serve the shared queue.
5. **Elastic replicas** — ``ProcessReplicaServer.scale_to`` grows and
   shrinks the live pool without disturbing in-flight correctness.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import api
from repro.analysis.sanitizer import ThreadSanitizer, instrument
from repro.api import ConCHEstimator, ModelHandle
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.serve import ModelServer, ProcessReplicaServer, ServerOverloaded


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(scope="module")
def bundle_path(dblp_tiny, tiny_config, tmp_path_factory):
    split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
    estimator = ConCHEstimator(
        api.Pipeline(dblp_tiny, config=tiny_config).data, tiny_config
    ).fit(split)
    path = tmp_path_factory.mktemp("bundle") / "conch.npz"
    estimator.save(path)
    return path


@pytest.fixture(scope="module")
def handle(bundle_path):
    return ModelHandle.load(bundle_path)


def resolve_all(futures, timeout: float = 10.0) -> int:
    """Resolve every future; return how many were stranded (timed out)."""
    stranded = 0
    for future in futures:
        try:
            future.result(timeout=timeout)
        except TimeoutError:
            stranded += 1
        except RuntimeError:
            pass  # "server stopped" is a *resolved* future — the point
    return stranded


# ---------------------------------------------------------------------- #
# ModelServer lifecycle
# ---------------------------------------------------------------------- #


class TestModelServerLifecycle:
    def test_stop_never_started_and_twice(self, handle):
        server = ModelServer(handle)
        server.stop()  # must not raise
        server.stop()  # idempotent
        stats = server.stats()
        assert stats["running"] is False
        assert stats["uptime_seconds"] == 0.0
        assert stats["throughput_rps"] == 0.0

    def test_stop_twice_after_running(self, handle):
        server = ModelServer(handle, max_wait_ms=0).start()
        assert server.predict_nodes([1], timeout=10.0).shape == (1,)
        server.stop()
        server.stop()
        with pytest.raises(RuntimeError, match="not running"):
            server.submit([1])

    def test_telemetry_freezes_at_stop(self, handle):
        server = ModelServer(handle, max_wait_ms=0).start()
        for _ in range(3):
            server.predict_nodes([2, 3], timeout=10.0)
        server.stop()
        first = server.stats()
        time.sleep(0.05)
        second = server.stats()
        # The clock froze at stop: neither uptime nor throughput drifts.
        assert first["uptime_seconds"] == second["uptime_seconds"]
        assert first["throughput_rps"] == second["throughput_rps"]
        assert second["uptime_seconds"] > 0.0
        assert second["throughput_rps"] > 0.0

    def test_restart_after_clean_stop(self, handle):
        server = ModelServer(handle, max_wait_ms=0)
        with server:
            before = server.predict_nodes([5], timeout=10.0)
        server.start()
        try:
            after = server.predict_nodes([5], timeout=10.0)
        finally:
            server.stop()
        np.testing.assert_array_equal(before, after)

    def test_restart_refused_while_old_worker_wedged(self, handle):
        server = ModelServer(handle, max_wait_ms=0, num_workers=1)
        entered = threading.Event()
        release = threading.Event()
        original = server.planner.run

        def wedged(requests, **kwargs):
            entered.set()
            release.wait(30.0)
            return original(requests, **kwargs)

        server.planner.run = wedged
        server.start()
        try:
            future = server.submit([1])
            assert entered.wait(10.0)
            server.stop(timeout=0.05)  # the worker is wedged mid-batch
            with pytest.raises(RuntimeError, match="still alive"):
                server.start()
        finally:
            release.set()
        # The wedged worker finishes its claimed batch: the caller that
        # raced the stop still gets a real answer, not a stranded future.
        np.testing.assert_array_equal(
            future.result(timeout=10.0),
            handle.predict_nodes(np.array([1])),
        )
        deadline = time.monotonic() + 10.0
        while any(t.is_alive() for t in server._threads):
            assert time.monotonic() < deadline, "old worker never exited"
            time.sleep(0.01)
        server.start()  # now legal: the previous generation is gone
        try:
            assert server.predict_nodes([1], timeout=10.0).shape == (1,)
        finally:
            server.stop()

    def test_stop_vs_submit_stress_no_stranded_futures(self, handle):
        sanitizer = ThreadSanitizer()
        for round_index in range(3):
            server = ModelServer(
                handle,
                max_batch_size=8,
                max_wait_ms=0.5,
                max_queue=64,
                num_workers=2,
            )
            instrument(sanitizer, server)
            server.start()
            futures: list = []
            futures_lock = threading.Lock()
            halt = threading.Event()

            def submitter():
                while not halt.is_set():
                    try:
                        future = server.submit([1, 2, 3])
                    except ServerOverloaded:
                        continue
                    except RuntimeError:
                        break  # server stopped: expected terminal state
                    with futures_lock:
                        futures.append(future)

            threads = [
                threading.Thread(target=submitter, daemon=True)
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.02 + 0.02 * round_index)  # vary the race window
            server.stop(timeout=10.0)
            halt.set()
            for thread in threads:
                thread.join(10.0)
            assert not any(t.is_alive() for t in threads)
            assert futures, "stress round submitted nothing"
            assert resolve_all(futures) == 0
        sanitizer.assert_clean()


# ---------------------------------------------------------------------- #
# ProcessReplicaServer lifecycle
# ---------------------------------------------------------------------- #


class TestProcessServerLifecycle:
    def test_stop_never_started_and_twice(self, bundle_path):
        server = ProcessReplicaServer(bundle_path, replicas=1)
        server.stop()  # regression: used to AttributeError on None queue
        server.stop()
        assert server.stats()["uptime_seconds"] == 0.0
        with pytest.raises(RuntimeError, match="not running"):
            server.submit([0])

    def test_submit_racing_stop_fails_fast(self, bundle_path):
        # Deterministic pin of the fixed race: the stop flag flips after
        # submit's running-check but before (or while) the request rides
        # the queue — the post-put re-check must fail the straggler
        # instead of leaving it stranded in the futures map forever.
        server = ProcessReplicaServer(
            bundle_path, replicas=1, max_wait_ms=1
        ).start()
        try:
            assert server.predict_nodes([1], timeout=60.0).shape == (1,)
            server._stop.set()
            future = server.submit([2])
            with pytest.raises(RuntimeError, match="server stopped"):
                future.result(timeout=10.0)
        finally:
            server.stop()

    def test_stop_vs_submit_stress_no_stranded_futures(self, bundle_path):
        sanitizer = ThreadSanitizer()
        server = ProcessReplicaServer(
            bundle_path, replicas=1, max_wait_ms=1, max_queue=64
        )
        instrument(sanitizer, server)
        server.start()
        # One answered round trip proves the replica is up before the
        # stress begins (spawned interpreters boot slowly).
        assert server.predict_nodes([1], timeout=60.0).shape == (1,)
        futures: list = []
        futures_lock = threading.Lock()
        halt = threading.Event()

        def submitter():
            while not halt.is_set():
                try:
                    future = server.submit([2, 3])
                except ServerOverloaded:
                    continue
                except RuntimeError:
                    break
                with futures_lock:
                    futures.append(future)

        threads = [
            threading.Thread(target=submitter, daemon=True) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        server.stop(timeout=30.0)
        halt.set()
        for thread in threads:
            thread.join(10.0)
        assert not any(t.is_alive() for t in threads)
        assert futures, "stress submitted nothing"
        assert resolve_all(futures) == 0
        sanitizer.assert_clean()
        first = server.stats()
        time.sleep(0.05)
        second = server.stats()
        assert first["uptime_seconds"] == second["uptime_seconds"]
        assert second["uptime_seconds"] > 0.0

    def test_scale_to_grows_and_shrinks_live(self, bundle_path):
        with ProcessReplicaServer(
            bundle_path, replicas=1, max_wait_ms=1
        ) as server:
            expected = server.handle.predict_nodes(np.array([3, 4]))
            np.testing.assert_array_equal(
                server.predict_nodes([3, 4], timeout=60.0), expected
            )
            server.scale_to(2)
            deadline = time.monotonic() + 60.0
            while server.live_replicas() != 2:
                assert time.monotonic() < deadline, "scale-up never landed"
                time.sleep(0.05)
            server.scale_to(1)  # retire via sentinel, lazily
            deadline = time.monotonic() + 60.0
            while server.live_replicas() != 1:
                assert time.monotonic() < deadline, "scale-down never landed"
                time.sleep(0.05)
            np.testing.assert_array_equal(
                server.predict_nodes([3, 4], timeout=60.0), expected
            )
            stats = server.stats()
            assert stats["scale_ups"] == 1
            assert stats["scale_downs"] == 1
            assert stats["replicas"] == 1
