"""Tests for the edge-sampling embeddings: LINE and PTE."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import make_method
from repro.data.dblp import DBLPConfig, make_dblp
from repro.data.splits import stratified_split
from repro.embedding.line import (
    LINEConfig,
    line_embeddings,
    train_edge_sgns,
)
from repro.embedding.pte import (
    _bipartite_groups,
    pte_embeddings,
    pte_target_embeddings,
)
from repro.eval.metrics import micro_f1


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=100, num_papers=320, seed=2))


def two_cliques(size: int = 8) -> sp.csr_matrix:
    """Two disjoint cliques joined by nothing: an easy proximity testbed."""
    block = np.ones((size, size)) - np.eye(size)
    adjacency = np.zeros((2 * size, 2 * size))
    adjacency[:size, :size] = block
    adjacency[size:, size:] = block
    return sp.csr_matrix(adjacency)


class TestLINEConfig:
    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            LINEConfig(order="third")

    def test_rejects_odd_dim_for_both(self):
        with pytest.raises(ValueError):
            LINEConfig(dim=9, order="both")

    def test_rejects_nonpositive_epochs(self):
        with pytest.raises(ValueError):
            LINEConfig(epochs=0)


class TestTrainEdgeSGNS:
    def test_empty_groups_return_init(self):
        config = LINEConfig(dim=8, epochs=1)
        emb = train_edge_sgns([], 10, config)
        assert emb.shape == (10, 8)

    def test_mismatched_group_raises(self):
        config = LINEConfig(dim=8, epochs=1)
        group = (np.array([0, 1]), np.array([1]), np.array([0, 1]))
        with pytest.raises(ValueError):
            train_edge_sgns([group], 4, config)

    def test_deterministic_for_fixed_seed(self):
        adjacency = two_cliques(6)
        a = line_embeddings(adjacency, dim=8, epochs=2, seed=3)
        b = line_embeddings(adjacency, dim=8, epochs=2, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_result(self):
        adjacency = two_cliques(6)
        a = line_embeddings(adjacency, dim=8, epochs=2, seed=3)
        b = line_embeddings(adjacency, dim=8, epochs=2, seed=4)
        assert not np.array_equal(a, b)


class TestLINEProximity:
    @pytest.mark.parametrize("order", ["first", "second", "both"])
    def test_cliques_are_separated(self, order):
        size = 8
        adjacency = two_cliques(size)
        emb = line_embeddings(
            adjacency, dim=16, epochs=30, order=order, seed=0
        )
        emb = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        within, across = [], []
        for i in range(2 * size):
            for j in range(i + 1, 2 * size):
                sim = float(emb[i] @ emb[j])
                same = (i < size) == (j < size)
                (within if same else across).append(sim)
        assert np.mean(within) > np.mean(across)

    def test_both_concatenates_halves(self):
        adjacency = two_cliques(4)
        emb = line_embeddings(adjacency, dim=12, epochs=1, order="both", seed=0)
        assert emb.shape == (8, 12)

    def test_return_context_first_order_shares_table(self):
        adjacency = two_cliques(4)
        vertex, context = line_embeddings(
            adjacency, dim=8, epochs=1, order="first", seed=0, return_context=True
        )
        assert vertex is context

    def test_return_context_both_concatenates(self):
        adjacency = two_cliques(4)
        vertex, context = line_embeddings(
            adjacency, dim=12, epochs=1, order="both", seed=0, return_context=True
        )
        assert vertex.shape == context.shape == (8, 12)
        # First-order half shares tables, second-order half does not.
        assert np.array_equal(vertex[:, :6], context[:, :6])
        assert not np.array_equal(vertex[:, 6:], context[:, 6:])

    def test_rejects_rectangular_matrix(self):
        with pytest.raises(ValueError):
            line_embeddings(sp.csr_matrix((4, 5)), dim=8)

    def test_isolated_nodes_keep_small_init(self):
        adjacency = sp.csr_matrix(
            ([1.0, 1.0], ([0, 1], [1, 0])), shape=(3, 3)
        )
        emb = line_embeddings(adjacency, dim=8, epochs=2, order="first", seed=0)
        # Node 2 has no edges; its row never receives an update and stays
        # inside the uniform init envelope.
        assert np.abs(emb[2]).max() <= 0.5 / 8 + 1e-12


class TestPTE:
    def test_groups_cover_both_directions(self, dblp):
        groups = _bipartite_groups(dblp.hin)
        forward = [r for r in dblp.hin.relations if not r.name.endswith("_rev")]
        assert len(groups) == 2 * len(forward)

    def test_negative_pools_are_type_correct(self, dblp):
        hin = dblp.hin
        offsets = hin.global_offsets()
        forward = [r for r in hin.relations if not r.name.endswith("_rev")]
        groups = _bipartite_groups(hin)
        for relation, (src_dst_group, dst_src_group) in zip(
            forward, zip(groups[0::2], groups[1::2])
        ):
            dst_lo = offsets[relation.dst_type]
            dst_hi = dst_lo + hin.num_nodes(relation.dst_type)
            pool = src_dst_group[2]
            assert pool.min() >= dst_lo and pool.max() < dst_hi
            src_lo = offsets[relation.src_type]
            src_hi = src_lo + hin.num_nodes(relation.src_type)
            pool = dst_src_group[2]
            assert pool.min() >= src_lo and pool.max() < src_hi

    def test_embeddings_cover_all_nodes(self, dblp):
        emb = pte_embeddings(dblp.hin, dim=8, epochs=1, seed=0)
        assert emb.shape == (dblp.hin.total_nodes, 8)
        assert np.isfinite(emb).all()

    def test_return_context_tables(self, dblp):
        vertex, context = pte_embeddings(
            dblp.hin, dim=8, epochs=1, seed=0, return_context=True
        )
        assert vertex.shape == context.shape == (dblp.hin.total_nodes, 8)
        # Second-order training keeps the tables distinct.
        assert not np.array_equal(vertex, context)

    def test_target_embeddings_slice(self, dblp):
        full = pte_embeddings(dblp.hin, dim=8, epochs=1, seed=0)
        target = pte_target_embeddings(
            dblp.hin, dblp.target_type, dim=8, epochs=1, seed=0
        )
        start = dblp.hin.global_offsets()[dblp.target_type]
        assert np.array_equal(target, full[start: start + dblp.num_targets])


class TestHarnessMethods:
    @pytest.mark.parametrize("name", ["LINE", "PTE"])
    def test_registered(self, name):
        assert callable(make_method(name))

    @pytest.mark.parametrize("name", ["LINE", "PTE"])
    def test_method_beats_chance(self, dblp, name):
        split = stratified_split(dblp.labels, 0.2, seed=0)
        method = make_method(name)
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        counts = np.bincount(dblp.labels)
        assert score > counts.max() / counts.sum() + 0.05
