"""Tests for the extended baseline set: Grempt, GraphSAGE, DGI, HIN2Vec."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import make_method
from repro.baselines.base import TrainSettings
from repro.baselines.dgi import DGIModel, dgi_embeddings
from repro.baselines.graphsage import (
    GraphSAGE,
    full_mean_operator,
    sampled_mean_operator,
)
from repro.baselines.grempt import grempt_scores, normalized_laplacian
from repro.data.dblp import DBLPConfig, make_dblp
from repro.data.splits import stratified_split
from repro.eval.metrics import micro_f1
from repro.hin.metapath import MetaPath


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=100, num_papers=320, seed=2))


@pytest.fixture(scope="module")
def split(dblp):
    return stratified_split(dblp.labels, 0.2, seed=0)


def chance_level(dataset) -> float:
    counts = np.bincount(dataset.labels)
    return counts.max() / counts.sum()


class TestNormalizedLaplacian:
    def test_psd_and_symmetric(self):
        rng = np.random.default_rng(0)
        weights = sp.random(20, 20, density=0.3, random_state=0)
        weights = sp.csr_matrix(abs(weights + weights.T))
        lap = normalized_laplacian(weights)
        dense = lap.toarray()
        assert np.allclose(dense, dense.T)
        eigenvalues = np.linalg.eigvalsh(dense)
        assert eigenvalues.min() > -1e-9

    def test_constant_vector_in_kernel_of_connected_graph(self):
        # Complete graph: L @ 1 = 0 after normalization.
        n = 5
        weights = sp.csr_matrix(np.ones((n, n)) - np.eye(n))
        lap = normalized_laplacian(weights)
        assert np.allclose(lap @ np.ones(n), 0.0, atol=1e-9)

    def test_zero_degree_row_safe(self):
        weights = sp.csr_matrix((3, 3))
        lap = normalized_laplacian(weights)
        assert np.allclose(lap.toarray(), np.eye(3))


class TestGrempt:
    def test_scores_shape(self, dblp, split):
        scores, weights = grempt_scores(
            dblp.hin,
            dblp.metapaths,
            split.train,
            dblp.labels[split.train],
            dblp.num_classes,
            dblp.num_targets,
        )
        assert scores.shape == (dblp.num_targets, dblp.num_classes)
        assert weights.shape == (len(dblp.metapaths),)

    def test_weights_on_simplex(self, dblp, split):
        _, weights = grempt_scores(
            dblp.hin,
            dblp.metapaths,
            split.train,
            dblp.labels[split.train],
            dblp.num_classes,
            dblp.num_targets,
        )
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_beats_chance(self, dblp, split):
        method = make_method("Grempt")
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1

    def test_labeled_nodes_recovered(self, dblp, split):
        # With strong anchoring, training nodes predict their own label.
        scores, _ = grempt_scores(
            dblp.hin,
            dblp.metapaths,
            split.train,
            dblp.labels[split.train],
            dblp.num_classes,
            dblp.num_targets,
            mu=100.0,
        )
        predicted = scores[split.train].argmax(axis=1)
        agreement = (predicted == dblp.labels[split.train]).mean()
        assert agreement > 0.9

    def test_bad_hyperparameters(self, dblp, split):
        with pytest.raises(ValueError):
            grempt_scores(
                dblp.hin, dblp.metapaths, split.train,
                dblp.labels[split.train], dblp.num_classes, dblp.num_targets,
                mu=0.0,
            )
        with pytest.raises(ValueError):
            grempt_scores(
                dblp.hin, dblp.metapaths, split.train,
                dblp.labels[split.train], dblp.num_classes, dblp.num_targets,
                rho=1.0,
            )

    def test_deterministic(self, dblp, split):
        method = make_method("Grempt")
        first = method(dblp, split, 0).test_predictions
        second = method(dblp, split, 99).test_predictions  # seed ignored
        assert np.array_equal(first, second)


class TestSampledOperator:
    def test_row_sums_are_one_or_zero(self):
        rng = np.random.default_rng(0)
        adjacency = sp.random(30, 30, density=0.2, random_state=1).tocsr()
        adjacency.data[:] = 1.0
        operator = sampled_mean_operator(adjacency, sample_size=3, rng=rng)
        sums = np.asarray(operator.sum(axis=1)).ravel()
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        assert np.allclose(sums[degrees > 0], 1.0)
        assert np.allclose(sums[degrees == 0], 0.0)

    def test_sample_size_respected(self):
        rng = np.random.default_rng(0)
        adjacency = sp.csr_matrix(np.ones((10, 10)) - np.eye(10))
        operator = sampled_mean_operator(adjacency, sample_size=4, rng=rng)
        per_row = np.diff(operator.tocsr().indptr)
        assert (per_row <= 4).all()

    def test_sampled_support_subset_of_adjacency(self):
        rng = np.random.default_rng(0)
        adjacency = sp.random(25, 25, density=0.3, random_state=2).tocsr()
        adjacency.data[:] = 1.0
        operator = sampled_mean_operator(adjacency, sample_size=2, rng=rng)
        violation = operator.astype(bool).toarray() & ~adjacency.astype(bool).toarray()
        assert not violation.any()

    def test_bad_sample_size(self):
        with pytest.raises(ValueError):
            sampled_mean_operator(sp.eye(3).tocsr(), 0, np.random.default_rng(0))

    def test_full_operator_is_limit(self):
        adjacency = sp.csr_matrix(np.ones((6, 6)) - np.eye(6))
        rng = np.random.default_rng(0)
        sampled = sampled_mean_operator(adjacency, sample_size=100, rng=rng)
        full = full_mean_operator(adjacency)
        assert np.allclose(sampled.toarray(), full.toarray())


class TestGraphSAGE:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        model = GraphSAGE(in_dim=8, hidden_dim=16, num_classes=3, rng=rng)
        adjacency = full_mean_operator(sp.eye(12).tocsr())
        from repro.autograd.tensor import Tensor

        logits = model(adjacency, Tensor(rng.normal(size=(12, 8))))
        assert logits.shape == (12, 3)

    def test_method_beats_chance(self, dblp, split):
        method = make_method(
            "GraphSAGE", settings=TrainSettings(epochs=40, patience=20)
        )
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1
        assert out.extras["metapath"] in {m.name for m in dblp.metapaths}


class TestDGI:
    def test_embedding_shape(self, dblp):
        from repro.hin.adjacency import metapath_binary_adjacency

        adjacency = metapath_binary_adjacency(dblp.hin, dblp.metapaths[0])
        embeddings = dgi_embeddings(adjacency, dblp.features, dim=8, epochs=5)
        assert embeddings.shape == (dblp.num_targets, 8)
        assert np.isfinite(embeddings).all()

    def test_loss_decreases(self, dblp):
        from repro.autograd.tensor import Tensor
        from repro.autograd.sparse import normalize_adjacency
        from repro.core.discriminator import shuffle_features
        from repro.hin.adjacency import metapath_binary_adjacency
        from repro.nn.optim import Adam

        rng = np.random.default_rng(0)
        adjacency = metapath_binary_adjacency(dblp.hin, dblp.metapaths[2])
        norm = normalize_adjacency(adjacency)
        x = Tensor(dblp.features)
        model = DGIModel(dblp.features.shape[1], 16, rng)
        optimizer = Adam(model.parameters(), lr=0.01)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            shuffled = Tensor(shuffle_features(dblp.features, rng))
            loss = model.loss(norm, x, shuffled)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_method_beats_chance(self, dblp, split):
        method = make_method("DGI", epochs=40)
        out = method(dblp, split, 0)
        score = micro_f1(dblp.labels[split.test], out.test_predictions)
        assert score > chance_level(dblp) + 0.1


class TestRegistry:
    @pytest.mark.parametrize("name", ["GraphSAGE", "DGI", "Grempt", "HIN2Vec"])
    def test_new_methods_registered(self, name):
        assert callable(make_method(name))

    def test_unknown_method_still_raises(self):
        with pytest.raises(KeyError):
            make_method("NotAMethod")
