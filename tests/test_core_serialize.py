"""Tests for ConCH model checkpointing (save_model / load_model)."""

import numpy as np
import pytest

from repro.core import ConCH, ConCHConfig, load_model, save_model
from repro.core.trainer import ConCHTrainer, prepare_conch_data
from repro.data import stratified_split
from repro.data.dblp import DBLPConfig, make_dblp


def small_config(**overrides) -> ConCHConfig:
    base = dict(
        hidden_dim=8,
        out_dim=8,
        context_dim=8,
        attention_dim=8,
        classifier_hidden=8,
        embed_num_walks=1,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=5,
    )
    base.update(overrides)
    return ConCHConfig(**base)


def fresh_model(config=None, feature_dim=12, num_metapaths=2, num_classes=3):
    config = config or small_config()
    return ConCH(
        feature_dim, config.context_dim, num_metapaths, num_classes,
        config, np.random.default_rng(0),
    )


class TestRoundTrip:
    def test_parameters_identical(self, tmp_path):
        model = fresh_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        for (name_a, a), (name_b, b) in zip(
            model.named_parameters(), restored.named_parameters()
        ):
            assert name_a == name_b
            assert np.array_equal(a.data, b.data)

    def test_config_preserved(self, tmp_path):
        config = small_config(k=7, lambda_ss=0.123, aggregator="sum")
        model = fresh_model(config)
        save_model(model, tmp_path / "model.npz")
        restored = load_model(tmp_path / "model.npz")
        assert restored.config == config

    def test_restored_model_in_eval_mode(self, tmp_path):
        model = fresh_model()
        model.train()
        save_model(model, tmp_path / "model.npz")
        assert not load_model(tmp_path / "model.npz").training

    def test_nc_variant_roundtrip(self, tmp_path):
        config = small_config(use_contexts=False)
        model = fresh_model(config)
        save_model(model, tmp_path / "model.npz")
        restored = load_model(tmp_path / "model.npz")
        assert restored.num_metapaths == model.num_metapaths
        assert restored.config.use_contexts is False

    def test_two_layer_roundtrip(self, tmp_path):
        config = small_config(num_layers=2)
        model = fresh_model(config)
        save_model(model, tmp_path / "model.npz")
        restored = load_model(tmp_path / "model.npz")
        assert len(list(restored.parameters())) == len(list(model.parameters()))


class TestTrainedModel:
    def test_predictions_survive_roundtrip(self, tmp_path):
        dataset = make_dblp(DBLPConfig(num_authors=60, num_papers=180, seed=4))
        config = small_config()
        data = prepare_conch_data(dataset, config)
        split = stratified_split(dataset.labels, 0.2, seed=0)
        trainer = ConCHTrainer(data, config).fit(split)
        before = trainer.predict(split.test)

        save_model(trainer.model, tmp_path / "trained.npz")
        restored = load_model(tmp_path / "trained.npz")

        from repro.autograd.tensor import Tensor, no_grad

        operators = [m.incidence for m in data.metapath_data]
        contexts = [Tensor(m.context_features) for m in data.metapath_data]
        with no_grad():
            logits, _ = restored(Tensor(data.features), operators, contexts)
        after = logits.argmax(axis=1)[split.test]
        assert np.array_equal(before, after)


class TestErrors:
    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.ones(3))
        with pytest.raises(ValueError, match="missing header"):
            load_model(path)

    def test_version_mismatch(self, tmp_path):
        import json

        model = fresh_model()
        path = tmp_path / "model.npz"
        save_model(model, path)
        archive = dict(np.load(path, allow_pickle=False))
        header = json.loads(str(archive["__header"]))
        header["format_version"] = 999
        archive["__header"] = np.array(json.dumps(header))
        np.savez(path, **archive)
        with pytest.raises(ValueError, match="format"):
            load_model(path)
