"""Unit tests for ``repro.obs``: tracer, metrics registry, slow log.

What must hold:

1. **Span mechanics** — nesting parents via the thread-local stack,
   explicit-parent propagation joins a trace across threads,
   retroactive :meth:`SpanTracer.record` keeps measured bounds, the
   buffer is bounded, and the disabled path emits nothing.
2. **Wire form** — ``traceparent`` format/parse round-trips and rejects
   malformed headers.
3. **Registry semantics** — counters/gauges/histograms behave, name
   conflicts across kinds are errors, component collectors are weakly
   held (death unregisters), and the Prometheus text page parses line
   by line.
4. **Slow log** — keeps exactly the worst N by duration, slowest first.
5. **Concurrency** — a sanitizer-instrumented tracer + registry driven
   by racing threads produces zero reports (the obs tier obeys the same
   lock discipline it observes everything else with).
"""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro.analysis.sanitizer import ThreadSanitizer, instrument
from repro.obs import (
    REGISTRY,
    MetricsRegistry,
    SlowRequestLog,
    SpanTracer,
    TraceContext,
    build_span_tree,
    format_traceparent,
    parse_traceparent,
    traced,
)
from repro.obs import trace as trace_mod

THREADS = 8


def run_threads(count, target):
    """Run ``target(index)`` on ``count`` threads, re-raising failures."""
    errors = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as exc:  # pragma: no cover - debug aid
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,), name=f"obs-stress-{i}")
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


@pytest.fixture()
def tracer():
    t = SpanTracer(capacity=256)
    t.enable()
    return t


# ---------------------------------------------------------------------- #
# 1. Span mechanics
# ---------------------------------------------------------------------- #


class TestSpans:
    def test_nested_spans_parent_through_thread_local_stack(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_context() == inner.context
            assert tracer.current_context() == outer.context
        assert tracer.current_context() is None
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].trace_id == by_name["outer"].trace_id
        assert by_name["outer"].parent_id is None
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s >= 0

    def test_explicit_parent_joins_trace_across_threads(self, tracer):
        with tracer.span("submit") as submit_span:
            carried = tracer.current_context()

        def worker():
            # A fresh thread has no ambient context; the carried handle
            # is the only link back to the submitter's trace.
            assert tracer.current_context() is None
            with tracer.span("scheduler", parent=carried):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        scheduler = next(
            s for s in tracer.finished() if s.name == "scheduler"
        )
        assert scheduler.trace_id == submit_span.trace_id
        assert scheduler.parent_id == submit_span.span_id

    def test_record_keeps_measured_bounds(self, tracer):
        span = tracer.record("work", start_s=10.0, end_s=10.25)
        assert span.start_s == 10.0
        assert span.duration_s == pytest.approx(0.25)
        # End before start clamps to zero rather than going negative.
        assert tracer.record("odd", start_s=5.0, end_s=4.0).duration_s == 0.0

    def test_disabled_tracer_is_silent_and_cheap(self):
        t = SpanTracer()
        assert not t.enabled
        with t.span("ignored"):
            assert t.current_context() is None
        assert t.record("ignored", 0.0, 1.0) is None
        assert t.finished() == []

    def test_buffer_is_bounded_and_counts_drops(self):
        t = SpanTracer(capacity=4)
        t.enable()
        for index in range(10):
            t.record(f"s{index}", 0.0, 1.0)
        assert len(t.finished()) == 4
        assert t.dropped() == 6
        assert [s.name for s in t.finished()] == ["s6", "s7", "s8", "s9"]

    def test_exception_exit_tags_error_and_unwinds(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        span = tracer.finished()[-1]
        assert span.attrs["error"] == "RuntimeError"
        assert tracer.current_context() is None

    def test_decorator_traces_calls(self, tracer, monkeypatch):
        monkeypatch.setattr(trace_mod, "TRACER", tracer)

        @traced("math.double", kind="unit")
        def double(x):
            return 2 * x

        assert double(21) == 42
        span = tracer.finished()[-1]
        assert span.name == "math.double"
        assert span.attrs == {"kind": "unit"}

    def test_chrome_export_shape(self, tracer, tmp_path):
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        path = tmp_path / "trace.json"
        events = tracer.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == events
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        child = next(e for e in events if e["name"] == "child")
        parent = next(e for e in events if e["name"] == "parent")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]

    def test_build_span_tree_nests_transitively(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("mid"):
                with tracer.span("leaf"):
                    pass
        tree = build_span_tree(root, tracer.finished())
        assert tree["name"] == "root"
        assert [c["name"] for c in tree["children"]] == ["mid"]
        assert [c["name"] for c in tree["children"][0]["children"]] == ["leaf"]


# ---------------------------------------------------------------------- #
# 2. Wire form
# ---------------------------------------------------------------------- #


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext("ab" * 16, "cd" * 8)
        assert parse_traceparent(format_traceparent(ctx)) == ctx

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-tooshort-cdcdcdcdcdcdcdcd-01",
            "00-" + "g" * 32 + "-" + "c" * 16 + "-01",  # non-hex
            "99" + "-" + "a" * 32 + "-" + "c" * 16,  # missing flags
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None


# ---------------------------------------------------------------------- #
# 3. Registry semantics
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_instruments_get_or_create_and_behave(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total")
        assert registry.counter("repro_t_total") is counter
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)
        gauge = registry.gauge("repro_t_depth")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3
        hist = registry.histogram("repro_t_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(100.0)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(100.55)
        assert snap["buckets"][0] == (0.1, 1)
        assert snap["buckets"][1] == (1.0, 2)
        assert snap["buckets"][2] == (math.inf, 3)

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_thing")
        with pytest.raises(ValueError):
            registry.gauge("repro_t_thing")
        with pytest.raises(ValueError):
            registry.counter("bad name!")

    def test_dead_component_is_pruned(self):
        registry = MetricsRegistry()

        class Component:
            def _collect_metrics(self):
                return {"alive": 1}

        component = Component()
        registry.register("widget", component._collect_metrics)
        assert registry.snapshot()["components"]["widget"]["0"] == {"alive": 1}
        del component
        assert "widget" not in registry.snapshot()["components"]

    def test_collector_runs_outside_registry_lock(self):
        registry = MetricsRegistry()

        class Component:
            def _collect_metrics(self):
                # Re-entering the registry from a collector must not
                # deadlock — proof the registry lock is not held here.
                registry.counter("repro_t_reentrant_total").inc()
                return {"ok": 1}

        component = Component()
        registry.register("reentrant", component._collect_metrics)
        snap = registry.snapshot()
        assert snap["components"]["reentrant"]["0"] == {"ok": 1}

    def test_prometheus_text_parses_line_by_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_requests_total", help="requests").inc(7)
        registry.gauge("repro_t_depth").set(2.5)
        registry.histogram("repro_t_lat_seconds", buckets=(0.1, 1.0)).observe(
            0.3
        )

        class Server:
            def _collect_metrics(self):
                return {
                    "answered": 12,
                    "running": True,
                    "note": "skipped-string",
                    "latency_seconds": {"p50": 0.01, "p95": 0.5},
                    "slow_requests": [{"skipped": "list"}],
                }

        server = Server()
        registry.register("server", server._collect_metrics)
        text = registry.prometheus_text()
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
        )
        for line in text.strip().splitlines():
            assert line.startswith("#") or sample_re.match(line), line
        assert "repro_t_requests_total 7" in text
        assert "# TYPE repro_t_requests_total counter" in text
        assert "# TYPE repro_t_depth gauge" in text
        assert 'repro_t_lat_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_server_answered{instance="0"} 12' in text
        assert 'repro_server_running{instance="0"} 1' in text
        assert 'repro_server_latency_seconds_p50{instance="0"}' in text
        assert "skipped" not in text

    def test_global_registry_is_shared(self):
        before = REGISTRY.counter("repro_t_global_total").value
        REGISTRY.counter("repro_t_global_total").inc()
        assert REGISTRY.counter("repro_t_global_total").value == before + 1


# ---------------------------------------------------------------------- #
# 4. Slow log
# ---------------------------------------------------------------------- #


class TestSlowLog:
    def test_keeps_worst_n_slowest_first(self):
        log = SlowRequestLog(capacity=3)
        for duration in (0.1, 0.5, 0.2, 0.05, 0.9, 0.3):
            log.offer(duration, {"duration_s": duration})
        kept = [entry["duration_s"] for entry in log.snapshot()]
        assert kept == [0.9, 0.5, 0.3]
        assert log.offered() == 6

    def test_fast_request_does_not_evict_slow_ones(self):
        log = SlowRequestLog(capacity=2)
        assert log.offer(1.0, {"duration_s": 1.0})
        assert log.offer(2.0, {"duration_s": 2.0})
        assert not log.offer(0.5, {"duration_s": 0.5})
        assert [e["duration_s"] for e in log.snapshot()] == [2.0, 1.0]


# ---------------------------------------------------------------------- #
# 5. Concurrency: instrumented tracer under racing threads, zero reports
# ---------------------------------------------------------------------- #


class TestConcurrentTracing:
    def test_instrumented_tracer_races_cleanly(self):
        sanitizer = ThreadSanitizer()
        tracer = SpanTracer(capacity=512)
        tracer.enable()
        instrument(sanitizer, tracer)
        log = SlowRequestLog(capacity=4)
        instrument(sanitizer, log)
        barrier = threading.Barrier(THREADS)

        def stress(index):
            barrier.wait()
            for turn in range(40):
                with tracer.span(f"outer-{index}", attrs={"turn": turn}):
                    with tracer.span("inner") as inner:
                        carried = inner.context
                tracer.record(
                    "retro", start_s=0.0, end_s=0.001, parent=carried
                )
                log.offer(
                    0.001 * ((index + turn) % 7),
                    {"name": "retro", "duration_s": 0.001},
                )
                if turn % 10 == 0:
                    tracer.finished()
                    log.snapshot()

        run_threads(THREADS, stress)
        sanitizer.assert_clean()
        # Every span that survived the ring buffer is well-formed.
        for span in tracer.finished():
            assert span.duration_s >= 0
            assert len(span.trace_id) == 32 and len(span.span_id) == 16

    def test_stage_event_reemission(self, monkeypatch):
        import repro.api.pipeline as pipeline_mod
        from repro.api.pipeline import Pipeline, StageEvent

        event = StageEvent(
            stage="compose", key="k", action="loaded", seconds=0.125
        )
        assert event.duration_s == 0.125

        tracer = SpanTracer()
        tracer.enable()
        # Patch the name pipeline.py binds at import time.
        monkeypatch.setattr(pipeline_mod, "TRACER", tracer)
        host = type("Host", (), {"stage_log": []})()
        Pipeline._log(host, "featurize", "key", "loaded", 0.0002, n=3)
        assert host.stage_log[0].duration_s == 0.0002
        span = tracer.finished()[-1]
        assert span.name == "pipeline.featurize"
        assert span.attrs["action"] == "loaded"
        assert span.duration_s == pytest.approx(0.0002, abs=1e-4)
