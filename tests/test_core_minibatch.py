"""Tests for mini-batch ConCH training."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import ConCHConfig, prepare_conch_data
from repro.core.minibatch import (
    MiniBatchConCHTrainer,
    iterate_batches,
    slice_operator,
)
from repro.data import stratified_split
from repro.data.dblp import DBLPConfig, make_dblp


def small_config(**overrides) -> ConCHConfig:
    base = dict(
        hidden_dim=16,
        out_dim=16,
        context_dim=8,
        embed_num_walks=1,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=30,
        patience=15,
    )
    base.update(overrides)
    return ConCHConfig(**base)


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=90, num_papers=280, seed=6))


@pytest.fixture(scope="module")
def prepared(dblp):
    return prepare_conch_data(dblp, small_config())


@pytest.fixture(scope="module")
def split(dblp):
    return stratified_split(dblp.labels, 0.2, seed=0)


class TestBatchIteration:
    def test_batches_partition_everything(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_batches(25, 7, rng))
        combined = np.sort(np.concatenate(batches))
        assert np.array_equal(combined, np.arange(25))
        assert all(b.size <= 7 for b in batches)

    def test_single_batch_when_large(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_batches(10, 100, rng))
        assert len(batches) == 1

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_batches(10, 0, np.random.default_rng(0)))


class TestSliceOperator:
    def test_incidence_rows_only(self):
        operator = sp.csr_matrix(np.arange(12, dtype=float).reshape(3, 4))
        batch = np.array([2, 0])
        sliced = slice_operator(operator, batch, square=False)
        assert sliced.shape == (2, 4)
        assert np.allclose(sliced.toarray(), operator.toarray()[[2, 0]])

    def test_square_slices_both_axes(self):
        operator = sp.csr_matrix(np.arange(16, dtype=float).reshape(4, 4))
        batch = np.array([1, 3])
        sliced = slice_operator(operator, batch, square=True)
        assert sliced.shape == (2, 2)
        assert np.allclose(sliced.toarray(), operator.toarray()[np.ix_([1, 3], [1, 3])])


class TestTraining:
    def test_learns_above_chance(self, prepared, split, dblp):
        trainer = MiniBatchConCHTrainer(
            prepared, small_config(), batch_size=32
        ).fit(split)
        score = trainer.evaluate(split.test)["micro_f1"]
        chance = np.bincount(dblp.labels).max() / dblp.labels.size
        assert score > chance + 0.15

    def test_full_batch_degenerate(self, prepared, split):
        # batch_size=None runs one batch per epoch and should also learn.
        trainer = MiniBatchConCHTrainer(prepared, small_config()).fit(split)
        assert trainer.batch_size == prepared.num_objects
        assert trainer.evaluate(split.val)["micro_f1"] > 0.5

    def test_supervised_mode(self, prepared, split):
        config = small_config(training_mode="supervised", lambda_ss=0.0)
        trainer = MiniBatchConCHTrainer(prepared, config, batch_size=32).fit(split)
        assert trainer.evaluate(split.val)["micro_f1"] > 0.5

    def test_finetune_mode_rejected(self, prepared):
        with pytest.raises(ValueError, match="finetune"):
            MiniBatchConCHTrainer(
                prepared, small_config(training_mode="finetune")
            )

    def test_bad_batch_size_rejected(self, prepared):
        with pytest.raises(ValueError):
            MiniBatchConCHTrainer(prepared, small_config(), batch_size=0)

    def test_predict_full_coverage(self, prepared, split):
        trainer = MiniBatchConCHTrainer(
            prepared, small_config(epochs=5), batch_size=32
        ).fit(split)
        predictions = trainer.predict()
        assert predictions.shape == (prepared.num_objects,)
        assert predictions.min() >= 0
        assert predictions.max() < prepared.num_classes

    def test_recorder_populated(self, prepared, split):
        trainer = MiniBatchConCHTrainer(
            prepared, small_config(epochs=5), batch_size=32
        ).fit(split)
        assert len(trainer.recorder.records) >= 1

    def test_nc_mode_trains(self, dblp, split):
        config = small_config(use_contexts=False, epochs=10)
        data = prepare_conch_data(dblp, config)
        trainer = MiniBatchConCHTrainer(data, config, batch_size=32).fit(split)
        assert trainer.evaluate(split.val)["micro_f1"] > 0.3
