"""Observability through the serving stack, end to end.

What must hold:

1. **Cross-thread propagation** — a request submitted under a root span
   produces ``server.request`` / ``server.batch`` / ``server.forward``
   / ``handle.sliced_forward`` spans that all share the root's trace id,
   with the documented parentage, even though the scheduler work runs on
   a different thread.
2. **Wire propagation** — with tracing on, a client predict stitches
   ``http.client.predict`` → ``http.predict`` → ``server.request`` into
   one trace; an explicit ``traceparent`` request header is honored and
   the response header answers with the *same trace id* (tracing on or
   off).
3. **`GET /metrics`** — Prometheus text covering the engine, cache,
   server, and HTTP instruments, line-parseable.
4. **Timings opt-in** — ``{"timings": true}`` on ``/predict`` yields the
   queue-wait / batch-assembly / forward / serialization breakdown.
5. **Slow log** — ``stats()["slow_requests"]`` keeps worst-first entries
   with the per-phase child breakdown, tracing on or not.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.api import ConCHEstimator, ModelHandle
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.engine import get_engine
from repro.obs import TRACER, build_span_tree, parse_traceparent
from repro.serve import HttpServeClient, HttpServer, ModelServer


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(scope="module")
def bundle_path(dblp_tiny, tiny_config, tmp_path_factory):
    split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
    estimator = ConCHEstimator(
        api.Pipeline(dblp_tiny, config=tiny_config).data, tiny_config
    ).fit(split)
    path = tmp_path_factory.mktemp("bundle") / "conch.npz"
    estimator.save(path)
    return path


@pytest.fixture(scope="module")
def handle(bundle_path):
    return ModelHandle.load(bundle_path)


@pytest.fixture()
def tracing():
    """Enable the global tracer for one test, restoring the default."""
    TRACER.clear()
    TRACER.enable()
    yield TRACER
    TRACER.disable()
    TRACER.clear()


@pytest.fixture()
def server(handle):
    server = ModelServer(
        handle,
        max_batch_size=16,
        max_wait_ms=1,
        max_queue=64,
        num_workers=2,
        hot_cache_size=0,  # every request exercises the full scheduler path
    ).start()
    yield server
    server.stop()


@pytest.fixture()
def http_stack(handle):
    server = ModelServer(
        handle,
        max_batch_size=16,
        max_wait_ms=1,
        max_queue=64,
        num_workers=2,
        hot_cache_size=0,
    ).start()
    http = HttpServer(server).start()
    client = HttpServeClient(http.url, timeout=30.0)
    yield server, http, client
    http.stop()
    server.stop()


def wait_for_spans(names, trace_id=None, timeout_s=5.0):
    """Poll the tracer until every span name appears (telemetry is
    emitted *after* futures resolve, so callers can win the race)."""
    deadline = time.perf_counter() + timeout_s
    while True:
        spans = TRACER.finished()
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        seen = {s.name for s in spans}
        if set(names) <= seen:
            return spans
        if time.perf_counter() > deadline:
            raise AssertionError(
                f"spans {set(names) - seen} never appeared; saw {sorted(seen)}"
            )
        time.sleep(0.01)


# ---------------------------------------------------------------------- #
# 1. Cross-thread propagation inside ModelServer
# ---------------------------------------------------------------------- #


class TestSchedulerPropagation:
    def test_submit_to_forward_shares_one_trace(self, server, tracing):
        with TRACER.span("test.root") as root:
            labels = server.predict_nodes(np.array([0, 1, 2], dtype=np.int64))
        assert labels.shape == (3,)
        spans = wait_for_spans(
            ("server.request", "server.batch", "server.forward",
             "handle.sliced_forward", "server.queue_wait"),
            trace_id=root.trace_id,
        )
        by_name = {s.name: s for s in spans}

        request = by_name["server.request"]
        assert request.parent_id == root.span_id
        assert request.attrs["ids"] == 3
        assert request.attrs["proba"] is False

        # The batch span is parented to the submitting request's context
        # even though it was opened on a scheduler thread.
        batch = by_name["server.batch"]
        assert batch.parent_id == root.span_id
        assert batch.thread_id != root.thread_id

        # The handle's forward joined via the scheduler thread's own
        # context stack (the batch span was ambient when it ran).
        forward = by_name["handle.sliced_forward"]
        assert forward.parent_id == batch.span_id

        # Phase children hang off the request span and tile its lifetime.
        for phase in ("server.queue_wait", "server.batch_assembly",
                      "server.forward"):
            assert by_name[phase].parent_id == request.span_id
        phase_total = sum(
            by_name[p].duration_s
            for p in ("server.queue_wait", "server.batch_assembly",
                      "server.forward")
        )
        assert phase_total <= request.duration_s + 0.05

        tree = build_span_tree(root, spans)
        assert tree["children"], "root span has no children in the tree"

    def test_disabled_tracer_emits_nothing(self, server):
        assert not TRACER.enabled
        before = len(TRACER.finished())
        server.predict_nodes(np.array([0, 1], dtype=np.int64))
        time.sleep(0.05)
        assert len(TRACER.finished()) == before


# ---------------------------------------------------------------------- #
# 2. Wire propagation over HTTP
# ---------------------------------------------------------------------- #


class TestWirePropagation:
    def test_client_and_server_spans_share_trace(self, http_stack, tracing):
        _, _, client = http_stack
        client.predict_nodes(np.array([0, 1, 2], dtype=np.int64))
        client_span = next(
            s for s in TRACER.finished() if s.name == "http.client.predict"
        )
        spans = wait_for_spans(
            ("http.client.predict", "http.predict", "server.request",
             "server.batch", "handle.sliced_forward"),
            trace_id=client_span.trace_id,
        )
        by_name = {s.name: s for s in spans}
        assert by_name["http.predict"].parent_id == client_span.span_id
        assert by_name["http.predict"].attrs["status"] == 200
        assert (
            by_name["server.request"].parent_id
            == by_name["http.predict"].span_id
        )

    def test_explicit_traceparent_header_is_honored(self, http_stack, tracing):
        _, http, _ = http_stack
        trace_id, span_id = "ab" * 16, "cd" * 8
        header = f"00-{trace_id}-{span_id}-01"
        body = json.dumps({"ids": [0, 1]}).encode("utf-8")
        request = urllib.request.Request(
            http.url + "/predict",
            data=body,
            headers={"Content-Type": "application/json",
                     "traceparent": header},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            echoed = parse_traceparent(response.headers["traceparent"])
            json.loads(response.read())
        # Same trace id, but the server's own span id (a child, not an
        # echo of our span).
        assert echoed.trace_id == trace_id
        assert echoed.span_id != span_id
        spans = wait_for_spans(("http.predict",), trace_id=trace_id)
        server_span = next(s for s in spans if s.name == "http.predict")
        assert server_span.parent_id == span_id

    def test_header_echoed_verbatim_when_tracing_off(self, http_stack):
        assert not TRACER.enabled
        _, http, _ = http_stack
        header = "00-" + "12" * 16 + "-" + "34" * 8 + "-01"
        body = json.dumps({"ids": [0]}).encode("utf-8")
        request = urllib.request.Request(
            http.url + "/predict",
            data=body,
            headers={"Content-Type": "application/json",
                     "traceparent": header},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            assert response.headers["traceparent"] == header
            json.loads(response.read())

    def test_chrome_export_spans_the_whole_request(
        self, http_stack, tracing, tmp_path
    ):
        _, _, client = http_stack
        client.predict_nodes(np.array([0, 1, 2, 3], dtype=np.int64))
        client_span = next(
            s for s in TRACER.finished() if s.name == "http.client.predict"
        )
        wait_for_spans(
            ("http.predict", "server.request", "handle.sliced_forward"),
            trace_id=client_span.trace_id,
        )
        path = tmp_path / "trace.json"
        events = TRACER.export_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == events
        in_trace = [
            e for e in events
            if e["args"]["trace_id"] == client_span.trace_id
        ]
        names = {e["name"] for e in in_trace}
        assert {"http.client.predict", "http.predict", "server.request",
                "handle.sliced_forward"} <= names


# ---------------------------------------------------------------------- #
# 3. GET /metrics
# ---------------------------------------------------------------------- #


class TestMetricsEndpoint:
    def test_prometheus_page_covers_the_stack(
        self, http_stack, dblp_tiny
    ):
        _, _, client = http_stack
        # A live engine (shared per-HIN registry) guarantees engine and
        # cache collector lines on the page.
        engine = get_engine(dblp_tiny.hin)
        client.predict_nodes(np.array([0, 1, 2], dtype=np.int64))
        text = client.metrics_text()
        assert "repro_http_requests_total" in text
        assert "repro_http_request_seconds_bucket" in text
        assert "repro_server_latency_seconds_bucket" in text
        assert 'repro_server_answered{instance=' in text
        assert 'repro_engine_' in text
        assert 'repro_cache_' in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part and value
            float(value.replace("+Inf", "inf").replace("NaN", "nan"))
        assert engine is not None  # keep the engine alive past the fetch


# ---------------------------------------------------------------------- #
# 4. Timings opt-in
# ---------------------------------------------------------------------- #


class TestTimingsOptIn:
    def test_predict_returns_phase_breakdown(self, http_stack):
        _, _, client = http_stack
        out = client._request(
            "POST", "/predict", {"ids": [0, 1, 2], "timings": True}
        )
        timings = out["timings"]
        for key in ("queue_wait_s", "batch_assembly_s", "forward_s",
                    "serialization_s"):
            assert key in timings, key
            assert timings[key] >= 0.0
        assert "labels" in out

    def test_timings_absent_unless_requested(self, http_stack):
        _, _, client = http_stack
        out = client._request("POST", "/predict", {"ids": [0, 1]})
        assert "timings" not in out


# ---------------------------------------------------------------------- #
# 5. Slow-request log
# ---------------------------------------------------------------------- #


class TestSlowLog:
    def test_stats_surface_worst_requests(self, server):
        rng = np.random.default_rng(3)
        for _ in range(20):
            server.predict_nodes(
                rng.integers(0, server.handle.num_objects, size=3)
            )
        deadline = time.perf_counter() + 5.0
        while True:
            slow = server.stats()["slow_requests"]
            if len(slow) >= server._slow_log.capacity:
                break
            assert time.perf_counter() < deadline, "slow log never filled"
            time.sleep(0.01)
        durations = [entry["duration_s"] for entry in slow]
        assert durations == sorted(durations, reverse=True)
        for entry in slow:
            assert entry["name"] == "server.request"
            child_names = [c["name"] for c in entry["children"]]
            assert child_names == [
                "server.queue_wait", "server.batch_assembly", "server.forward"
            ]
        # Served over HTTP too, as plain JSON.
        assert json.dumps(slow)
