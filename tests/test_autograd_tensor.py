"""Tests for the core Tensor autodiff engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, no_grad
from repro.autograd.tensor import _unbroadcast


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_float32_upcast_to_float64(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float64

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_item_scalar(self):
        assert Tensor(np.array(3.5)).item() == 3.5

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestBackwardMechanics:
    def test_simple_chain(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_gradient_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_seed(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_seed_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 3).backward(np.array([1.0]))

    def test_backward_on_constant_raises(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_diamond_graph(self):
        # z = a*b where a = x+1, b = x*2; dz/dx = b + 2a.
        x = Tensor([3.0], requires_grad=True)
        a = x + 1.0
        b = x * 2.0
        z = (a * b).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0 + 8.0])

    def test_deep_chain_iterative_topo(self):
        # A long chain would overflow a recursive topological sort.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestUnbroadcast:
    def test_no_change_when_shapes_match(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        out = _unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((5, 4))
        out = _unbroadcast(g, ())
        assert out.shape == ()
        assert out == 20.0


class TestArithmeticGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def _rand(self, *shape):
        return Tensor(self.rng.normal(size=shape), requires_grad=True)

    def test_add_gradcheck(self):
        gradcheck(lambda a, b: a + b, [self._rand(3, 4), self._rand(3, 4)])

    def test_add_broadcast_gradcheck(self):
        gradcheck(lambda a, b: a + b, [self._rand(3, 4), self._rand(4)])

    def test_sub_gradcheck(self):
        gradcheck(lambda a, b: a - b, [self._rand(2, 3), self._rand(2, 3)])

    def test_rsub(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (5.0 - x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_mul_gradcheck(self):
        gradcheck(lambda a, b: a * b, [self._rand(3, 2), self._rand(3, 2)])

    def test_div_gradcheck(self):
        a = self._rand(3, 3)
        b = Tensor(self.rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        gradcheck(lambda a, b: a / b, [a, b])

    def test_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        (4.0 / x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0])

    def test_neg_gradcheck(self):
        gradcheck(lambda a: -a, [self._rand(4)])

    def test_pow_gradcheck(self):
        x = Tensor(self.rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        gradcheck(lambda a: a ** 3, [x])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor([2.0])

    def test_scalar_mixing(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (2.0 * x + 1.0).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])


class TestMatmulGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def _rand(self, *shape):
        return Tensor(self.rng.normal(size=shape), requires_grad=True)

    def test_matmul_2d_gradcheck(self):
        gradcheck(lambda a, b: a @ b, [self._rand(3, 4), self._rand(4, 2)])

    def test_matvec_gradcheck(self):
        gradcheck(lambda a, b: a @ b, [self._rand(3, 4), self._rand(4)])

    def test_transpose_gradcheck(self):
        gradcheck(lambda a: a.T @ a, [self._rand(3, 4)])

    def test_transpose_with_axes(self):
        x = self._rand(2, 3, 4)
        y = x.transpose(2, 0, 1)
        assert y.shape == (4, 2, 3)
        gradcheck(lambda a: a.transpose(2, 0, 1), [x])

    def test_reshape_gradcheck(self):
        gradcheck(lambda a: a.reshape(6, 2), [self._rand(3, 4)])

    def test_flatten(self):
        x = self._rand(2, 3)
        assert x.flatten().shape == (6,)


class TestReductionGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(11)

    def _rand(self, *shape):
        return Tensor(self.rng.normal(size=shape), requires_grad=True)

    def test_sum_all(self):
        gradcheck(lambda a: a.sum(), [self._rand(3, 4)])

    def test_sum_axis(self):
        gradcheck(lambda a: a.sum(axis=0), [self._rand(3, 4)])

    def test_sum_keepdims(self):
        gradcheck(lambda a: a.sum(axis=1, keepdims=True), [self._rand(3, 4)])

    def test_mean_all(self):
        gradcheck(lambda a: a.mean(), [self._rand(5,)])

    def test_mean_axis(self):
        gradcheck(lambda a: a.mean(axis=1), [self._rand(3, 4)])

    def test_max_all_unique(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])


class TestNonlinearityGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(13)

    def _rand(self, *shape, offset=0.0):
        return Tensor(self.rng.normal(size=shape) + offset, requires_grad=True)

    def test_exp(self):
        gradcheck(lambda a: a.exp(), [self._rand(4)])

    def test_log(self):
        x = Tensor(self.rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        gradcheck(lambda a: a.log(), [x])

    def test_sqrt(self):
        x = Tensor(self.rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        gradcheck(lambda a: a.sqrt(), [x])

    def test_abs(self):
        x = Tensor(np.array([-2.0, 3.0, -0.5]), requires_grad=True)
        gradcheck(lambda a: a.abs(), [x])

    def test_relu_forward(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(x.relu().data, [0.0, 0.0, 2.0])

    def test_relu_gradient(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_tanh_gradcheck(self):
        gradcheck(lambda a: a.tanh(), [self._rand(5)])

    def test_sigmoid_gradcheck(self):
        gradcheck(lambda a: a.sigmoid(), [self._rand(5)])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor(np.array([-500.0, 500.0]))
        out = x.sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_elu_gradcheck(self):
        gradcheck(lambda a: a.elu(), [self._rand(6)])

    def test_elu_forward(self):
        x = Tensor(np.array([-1.0, 1.0]))
        out = x.elu().data
        np.testing.assert_allclose(out, [np.exp(-1.0) - 1.0, 1.0])

    def test_clip(self):
        x = Tensor(np.array([-5.0, 0.5, 5.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestIndexing:
    def test_getitem_slice(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        x[0].sum().backward()
        np.testing.assert_allclose(x.grad, [[1, 1, 1], [0, 0, 0]])

    def test_index_select_with_duplicates(self):
        x = Tensor(np.eye(3), requires_grad=True)
        y = x.index_select(np.array([0, 0, 2]))
        assert y.shape == (3, 3)
        y.sum().backward()
        # Row 0 selected twice -> each entry accumulates gradient 2.
        np.testing.assert_allclose(x.grad.sum(axis=1), [6.0, 0.0, 3.0])

    def test_fancy_index_gradient(self):
        x = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        y = x[np.array([1, 1, 3])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 0.0, 1.0])

    def test_argmax(self):
        x = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]))
        np.testing.assert_array_equal(x.argmax(axis=1), [1, 0])

    def test_comparisons_return_arrays(self):
        x = Tensor(np.array([1.0, 3.0]))
        assert (x > 2.0).tolist() == [False, True]
        assert (x < 2.0).tolist() == [True, False]
