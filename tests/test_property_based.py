"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, ops
from repro.autograd.tensor import _unbroadcast
from repro.data.splits import stratified_split
from repro.eval.metrics import accuracy, f1_scores, macro_f1, micro_f1
from repro.hin import HIN, MetaPath
from repro.hin.pathsim import pathsim_matrix


finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def label_pairs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    num_classes = draw(st.integers(min_value=1, max_value=5))
    y_true = draw(
        arrays(np.int64, n, elements=st.integers(0, num_classes - 1))
    )
    y_pred = draw(
        arrays(np.int64, n, elements=st.integers(0, num_classes - 1))
    )
    return y_true, y_pred, num_classes


class TestMetricProperties:
    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, data):
        y_true, y_pred, k = data
        assert 0.0 <= micro_f1(y_true, y_pred) <= 1.0
        assert 0.0 <= macro_f1(y_true, y_pred, k) <= 1.0

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_identity_is_perfect(self, data):
        y_true, _, k = data
        assert micro_f1(y_true, y_true) == 1.0

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariance(self, data):
        y_true, y_pred, k = data
        rng = np.random.default_rng(0)
        perm = rng.permutation(y_true.size)
        assert micro_f1(y_true, y_pred) == pytest.approx(
            micro_f1(y_true[perm], y_pred[perm])
        )
        assert macro_f1(y_true, y_pred, k) == pytest.approx(
            macro_f1(y_true[perm], y_pred[perm], k)
        )

    @given(label_pairs())
    @settings(max_examples=60, deadline=None)
    def test_f1_symmetric_in_true_pred(self, data):
        # Swapping y_true and y_pred transposes the confusion matrix, which
        # swaps precision and recall per class -> per-class F1 unchanged.
        y_true, y_pred, k = data
        np.testing.assert_allclose(
            f1_scores(y_true, y_pred, k), f1_scores(y_pred, y_true, k)
        )


class TestSoftmaxProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_is_distribution(self, x):
        out = ops.softmax(Tensor(x), axis=1).data
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-9)

    @given(
        arrays(np.float64, st.integers(2, 20), elements=finite_floats),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_shift_invariance(self, x, shift):
        a = ops.softmax(Tensor(x), axis=0).data
        b = ops.softmax(Tensor(x + shift), axis=0).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(
        arrays(np.float64, st.integers(1, 30), elements=finite_floats),
        st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_softmax_sums_to_one_per_nonempty_segment(self, x, k):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, k, size=x.size)
        out = ops.segment_softmax(Tensor(x), ids, k).data
        for segment in range(k):
            mask = ids == segment
            if mask.any():
                np.testing.assert_allclose(out[mask].sum(), 1.0, rtol=1e-9)


class TestUnbroadcastProperty:
    @given(
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast_sum(self, shape, lead):
        rng = np.random.default_rng(0)
        base = rng.normal(size=shape)
        expanded = np.broadcast_to(base, (lead,) + shape)
        grad = np.ones_like(expanded)
        out = _unbroadcast(grad, shape)
        np.testing.assert_allclose(out, np.full(shape, float(lead)))


@st.composite
def random_bipartite_hin(draw):
    """A random 2-type HIN with an X-Y-X meta-path."""
    nx = draw(st.integers(min_value=2, max_value=8))
    ny = draw(st.integers(min_value=1, max_value=6))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, nx - 1), st.integers(0, ny - 1)),
            min_size=1,
            max_size=25,
        )
    )
    hin = HIN()
    hin.add_node_type("X", nx)
    hin.add_node_type("Y", ny)
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    hin.add_edges("r", "X", "Y", src, dst)
    return hin


class TestPathSimProperties:
    @given(random_bipartite_hin())
    @settings(max_examples=40, deadline=None)
    def test_pathsim_bounds_and_symmetry(self, hin):
        scores = pathsim_matrix(hin, MetaPath.parse("XYX")).toarray()
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0 + 1e-12)
        np.testing.assert_allclose(scores, scores.T)

    @given(random_bipartite_hin())
    @settings(max_examples=40, deadline=None)
    def test_identical_twins_score_one(self, hin):
        """Duplicate a node's neighborhood: PathSim between twins is 1."""
        adj = hin.adjacency("X", "Y").toarray()
        row = adj[0]
        if row.sum() == 0:
            return
        twin = HIN()
        nx = adj.shape[0] + 1
        twin.add_node_type("X", nx)
        twin.add_node_type("Y", adj.shape[1])
        src, dst = np.nonzero(np.vstack([adj, row]))
        twin.add_edges("r", "X", "Y", src, dst)
        scores = pathsim_matrix(twin, MetaPath.parse("XYX"))
        assert scores[0, nx - 1] == pytest.approx(1.0)


class TestSplitProperties:
    @given(
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=8, max_value=30),
        st.sampled_from([0.05, 0.1, 0.2, 0.3]),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_split_is_partition(self, num_classes, per_class, fraction, seed):
        labels = np.repeat(np.arange(num_classes), per_class)
        split = stratified_split(labels, fraction, seed=seed)
        combined = np.sort(
            np.concatenate([split.train, split.val, split.test])
        )
        np.testing.assert_array_equal(combined, np.arange(labels.size))
        # Every class in every partition of train.
        for cls in range(num_classes):
            assert (labels[split.train] == cls).sum() >= 1
            assert (labels[split.test] == cls).sum() >= 1


class TestTensorAlgebraProperties:
    @given(
        arrays(np.float64, st.integers(1, 12), elements=finite_floats),
        arrays(np.float64, st.integers(1, 12), elements=finite_floats),
    )
    @settings(max_examples=60, deadline=None)
    def test_addition_commutes(self, a, b):
        n = min(a.size, b.size)
        x, y = Tensor(a[:n]), Tensor(b[:n])
        np.testing.assert_allclose((x + y).data, (y + x).data)

    @given(arrays(np.float64, st.integers(1, 12), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_relu_idempotent(self, a):
        x = Tensor(a)
        once = x.relu().data
        twice = x.relu().relu().data
        np.testing.assert_allclose(once, twice)

    @given(arrays(np.float64, st.integers(2, 12), elements=finite_floats))
    @settings(max_examples=60, deadline=None)
    def test_sum_gradient_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 6)),
            elements=finite_floats,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_double_transpose_identity(self, a):
        x = Tensor(a)
        np.testing.assert_allclose(x.T.T.data, a)
