"""Tests for the ConCHClassifier wrapper and ASCII plotting."""

import numpy as np
import pytest

from repro.core import ConCHClassifier, ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.eval import ConvergenceRecorder, ascii_bars, ascii_plot, convergence_plot


TINY = DBLPConfig(num_authors=80, num_papers=260, num_conferences=8)
FAST = dict(
    epochs=30, patience=30, k=3, num_layers=1, context_dim=16,
    hidden_dim=16, out_dim=16, lr=0.01,
    embed_num_walks=3, embed_walk_length=15, embed_epochs=2,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("dblp", config=TINY)


@pytest.fixture(scope="module")
def split(dataset):
    return stratified_split(dataset.labels, 0.2, seed=0)


@pytest.fixture(scope="module")
def fitted(dataset, split):
    return ConCHClassifier(**FAST).fit(dataset, split)


class TestClassifier:
    def test_config_xor_kwargs(self):
        with pytest.raises(ValueError):
            ConCHClassifier(config=ConCHConfig(), k=5)

    def test_unfitted_raises(self):
        clf = ConCHClassifier(**FAST)
        assert not clf.is_fitted
        with pytest.raises(RuntimeError):
            clf.predict()

    def test_fit_predict(self, fitted, dataset, split):
        assert fitted.is_fitted
        predictions = fitted.predict(split.test)
        assert predictions.shape == split.test.shape
        acc = (predictions == dataset.labels[split.test]).mean()
        assert acc > 0.3

    def test_scores_are_probabilities(self, fitted, dataset):
        probs = fitted.predict_scores()
        assert probs.shape == (dataset.num_targets, dataset.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(probs >= 0)

    def test_scores_match_predictions(self, fitted):
        probs = fitted.predict_scores()
        np.testing.assert_array_equal(probs.argmax(axis=1), fitted.predict())

    def test_embeddings(self, fitted, dataset):
        z = fitted.embeddings()
        assert z.shape == (dataset.num_targets, FAST["out_dim"])

    def test_score_dict(self, fitted, split):
        scores = fitted.score(split.test)
        assert set(scores) == {"micro_f1", "macro_f1"}

    def test_metapath_weights(self, fitted, dataset):
        weights = fitted.metapath_weights()
        assert weights.shape == (len(dataset.metapaths),)
        np.testing.assert_allclose(weights.sum(), 1.0, atol=1e-6)

    def test_save_load_roundtrip(self, fitted, dataset, split, tmp_path):
        path = tmp_path / "weights.npz"
        fitted.save_weights(path)
        clone = ConCHClassifier(**FAST)
        clone.load_weights(path, dataset, split)
        np.testing.assert_array_equal(clone.predict(), fitted.predict())


class TestAsciiPlot:
    def test_empty_series(self):
        assert ascii_plot({}) == "(no data)"

    def test_contains_markers_and_legend(self):
        text = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20,
            height=6,
            title="demo",
        )
        assert "demo" in text
        assert "*=a" in text
        assert "o=b" in text

    def test_constant_series(self):
        text = ascii_plot({"flat": [(0, 1.0), (5, 1.0)]}, width=10, height=4)
        assert "*" in text

    def test_bars(self):
        text = ascii_bars({"APA": 0.1, "APCPA": 0.9}, width=10, title="w")
        lines = text.splitlines()
        assert lines[0] == "w"
        assert lines[2].count("#") == 10  # APCPA is the peak
        assert lines[1].count("#") == 1

    def test_bars_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_convergence_plot(self):
        recorder = ConvergenceRecorder(method="x")
        recorder.start()
        recorder.log(0, 1.0, 0.2)
        recorder.log(1, 0.5, 0.8)
        text = convergence_plot({"x": recorder}, width=20, height=5)
        assert "seconds" in text

    def test_convergence_plot_skips_empty(self):
        empty = ConvergenceRecorder()
        assert convergence_plot({"x": empty}) == "(no data)"
