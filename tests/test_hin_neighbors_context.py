"""Tests for neighbor filtering (§IV-A), contexts (Def. 4), bipartite graphs (§IV-C)."""

import numpy as np
import pytest

from repro.hin import (
    HIN,
    MetaPath,
    NeighborFilter,
    build_bipartite_graph,
    enumerate_path_instances,
    extract_contexts,
    random_k_neighbors,
    top_k_pathsim_neighbors,
)
from repro.hin.bipartite import incidence_from_pairs
from repro.hin.context import count_instances
from tests.test_hin_graph import movie_hin


class TestTopKNeighbors:
    def test_at_most_k(self):
        hin = movie_hin()
        neighbors = top_k_pathsim_neighbors(hin, MetaPath.parse("MAM"), k=1)
        assert all(len(n) <= 1 for n in neighbors)

    def test_sorted_by_score(self):
        hin = movie_hin()
        neighbors = top_k_pathsim_neighbors(hin, MetaPath.parse("MAM"), k=3)
        # For M1 (idx 0): PS to M2 = 1.0, to M3 = 2/3, to M4 = 2/3.
        assert neighbors[0][0] == 1

    def test_k_larger_than_neighborhood(self):
        hin = movie_hin()
        neighbors = top_k_pathsim_neighbors(hin, MetaPath.parse("MAM"), k=100)
        # M3 only reaches M1, M2 via A1.
        assert set(neighbors[2].tolist()) == {0, 1}

    def test_invalid_k(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            top_k_pathsim_neighbors(hin, MetaPath.parse("MAM"), k=0)

    def test_random_k_subset_of_true_neighbors(self):
        hin = movie_hin()
        rng = np.random.default_rng(0)
        random_lists = random_k_neighbors(hin, MetaPath.parse("MAM"), 2, rng)
        full = top_k_pathsim_neighbors(hin, MetaPath.parse("MAM"), k=100)
        for rand, ref in zip(random_lists, full):
            assert set(rand.tolist()) <= set(ref.tolist())

    def test_filter_strategy_validation(self):
        with pytest.raises(ValueError):
            NeighborFilter(k=5, strategy="best")
        with pytest.raises(ValueError):
            NeighborFilter(k=-1)

    def test_random_strategy_needs_rng(self):
        hin = movie_hin()
        nf = NeighborFilter(k=2, strategy="random")
        with pytest.raises(ValueError):
            nf.select(hin, MetaPath.parse("MAM"))

    def test_retained_pairs_are_sorted_unique(self):
        hin = movie_hin()
        nf = NeighborFilter(k=2)
        pairs = nf.retained_pairs(hin, MetaPath.parse("MAM"))
        assert pairs.shape[1] == 2
        assert np.all(pairs[:, 0] < pairs[:, 1])
        as_tuples = [tuple(p) for p in pairs]
        assert len(as_tuples) == len(set(as_tuples))


class TestPathInstanceEnumeration:
    def test_instances_match_commuting_count(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        for u in range(4):
            for v in range(4):
                if u == v:
                    continue
                ctx = enumerate_path_instances(hin, mp, u, v, max_instances=100)
                assert len(ctx.instances) == count_instances(hin, mp, u, v)

    def test_instance_structure(self):
        hin = movie_hin()
        ctx = enumerate_path_instances(hin, MetaPath.parse("MAM"), 0, 1)
        for instance in ctx.instances:
            assert len(instance) == 3
            assert instance[0] == 0
            assert instance[-1] == 1
        # M1 and M2 share A1 and A2: two instances.
        middles = sorted(inst[1] for inst in ctx.instances)
        assert middles == [0, 1]

    def test_cap_truncates(self):
        hin = movie_hin()
        ctx = enumerate_path_instances(hin, MetaPath.parse("MAM"), 0, 1, max_instances=1)
        assert len(ctx.instances) == 1
        assert ctx.truncated

    def test_unordered_arguments_canonicalized(self):
        """Regression: u > v used to enumerate from v while claiming u < v."""
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        ctx = enumerate_path_instances(hin, mp, 1, 0, max_instances=100)
        assert (ctx.u, ctx.v) == (0, 1)
        assert all(i[0] == 0 and i[-1] == 1 for i in ctx.instances)
        assert ctx.instances == enumerate_path_instances(
            hin, mp, 0, 1, max_instances=100
        ).instances

    def test_longer_metapath(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAMAM")
        ctx = enumerate_path_instances(hin, mp, 0, 2, max_instances=1000)
        assert len(ctx.instances) == count_instances(hin, mp, 0, 2)
        for instance in ctx.instances:
            assert len(instance) == 5

    def test_extract_contexts_batch(self):
        hin = movie_hin()
        pairs = np.array([[0, 1], [0, 2]])
        contexts = extract_contexts(hin, MetaPath.parse("MAM"), pairs)
        assert len(contexts) == 2
        assert contexts[0].size == 2
        assert contexts[1].size == 1

    def test_extract_contexts_empty(self):
        hin = movie_hin()
        assert extract_contexts(hin, MetaPath.parse("MAM"), np.empty((0, 2))) == []

    def test_extract_contexts_bad_shape(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            extract_contexts(hin, MetaPath.parse("MAM"), np.array([0, 1]))


class TestBipartiteGraph:
    def test_incidence_shape_and_degrees(self):
        pairs = np.array([[0, 1], [1, 2]])
        incidence = incidence_from_pairs(pairs, 4)
        assert incidence.shape == (4, 2)
        degrees = np.asarray(incidence.sum(axis=0)).ravel()
        np.testing.assert_allclose(degrees, [2.0, 2.0])  # each context: 2 endpoints

    def test_incidence_empty(self):
        incidence = incidence_from_pairs(np.empty((0, 2)), 3)
        assert incidence.shape == (3, 0)

    def test_build_bipartite_graph(self):
        hin = movie_hin()
        graph = build_bipartite_graph(
            hin, MetaPath.parse("MAM"), NeighborFilter(k=2)
        )
        assert graph.num_objects == 4
        assert graph.num_contexts == graph.pairs.shape[0]
        assert np.all(graph.context_degrees() == 2)

    def test_object_degree_bounded_by_2k(self):
        hin = movie_hin()
        k = 2
        graph = build_bipartite_graph(hin, MetaPath.parse("MAM"), NeighborFilter(k=k))
        assert graph.object_degrees().max() <= 2 * k

    def test_with_instances(self):
        hin = movie_hin()
        graph = build_bipartite_graph(
            hin,
            MetaPath.parse("MAM"),
            NeighborFilter(k=2),
            enumerate_instances=True,
        )
        assert graph.contexts is not None
        assert len(graph.contexts) == graph.num_contexts
        for pair, ctx in zip(graph.pairs, graph.contexts):
            assert (ctx.u, ctx.v) == (pair[0], pair[1])
            assert ctx.size >= 1

    def test_rejects_non_target_metapath(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            build_bipartite_graph(hin, MetaPath(["M", "A"]), NeighborFilter(k=2))
