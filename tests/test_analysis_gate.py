"""The self-gate: the repo's own tree must pass its own analyzer.

This is the tier-1 enforcement point for the invariants in
``repro.analysis.rules``: lock discipline in the cache/serving/autograd
tiers, fingerprint completeness in the staged pipeline, determinism of
content-key inputs, canonical CSR construction, plus the
interprocedural tier — lock acquisition order, blocking-under-lock,
and future resolution.  Any unsuppressed finding in ``src``, ``tests``,
``benchmarks``, or ``examples`` fails this test with the analyzer's own
rendering — the same output ``python -m repro.analysis`` prints.

The gate shares the CLI's content-hash cache
(``.repro-analysis-cache.json`` at the repo root), so only files whose
bytes changed since the last run — any run, CLI or test — are
re-analyzed; a warm gate is two orders of magnitude cheaper than a
cold one.
"""

from pathlib import Path

from repro.analysis import AnalysisCache, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The trees the gate covers (must mirror ``repro.analysis.__main__``).
GATED_PATHS = ("src", "tests", "benchmarks", "examples")


def test_repo_tree_has_zero_findings():
    paths = [
        REPO_ROOT / name for name in GATED_PATHS if (REPO_ROOT / name).is_dir()
    ]
    assert paths, "repo layout changed: no gated directories found"
    cache = AnalysisCache(REPO_ROOT / ".repro-analysis-cache.json")
    result = analyze_paths(paths, cache=cache)
    rendered = "\n".join(finding.render() for finding in result.findings)
    assert result.ok, (
        f"repro.analysis found {len(result.findings)} violation(s); fix them "
        f"or add a deliberate '# repro: ignore[rule]' suppression:\n{rendered}"
    )
    # The gate must actually be looking at the repo, not an empty glob.
    assert result.files_scanned > 100
