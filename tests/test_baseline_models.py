"""Model-level unit tests for baseline architectures (shapes, gradients,
attention normalization) — complementing the end-to-end tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.baselines.gat import GAT, GATLayer, edges_with_self_loops
from repro.baselines.gcn import GCN
from repro.baselines.han import HAN, HANSemanticAttention
from repro.baselines.hgcn import HGCN
from repro.baselines.hgt import HGT, HGTLayer, relation_edge_lists
from repro.baselines.magnn import MAGNN
from repro.baselines.mvgrl import MVGRLModel, ppr_diffusion
from repro.autograd.sparse import normalize_adjacency
from repro.hin import MetaPath
from tests.test_hin_graph import movie_hin


def small_graph(n=6, seed=0):
    rng = np.random.default_rng(seed)
    dense = (rng.random((n, n)) > 0.5).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0)
    return sp.csr_matrix(dense)


class TestGCNModel:
    def test_logits_shape(self):
        rng = np.random.default_rng(0)
        adj = normalize_adjacency(small_graph())
        model = GCN(4, 8, 3, rng)
        logits = model(adj, Tensor(np.random.default_rng(1).normal(size=(6, 4))))
        assert logits.shape == (6, 3)

    def test_gradients_reach_both_layers(self):
        rng = np.random.default_rng(0)
        adj = normalize_adjacency(small_graph())
        model = GCN(4, 8, 3, rng)
        logits = model(adj, Tensor(np.ones((6, 4))))
        logits.sum().backward()
        assert model.layer1.weight.grad is not None
        assert model.layer2.weight.grad is not None


class TestGATModel:
    def test_layer_multi_head_concat(self):
        rng = np.random.default_rng(0)
        src, dst = edges_with_self_loops(small_graph())
        layer = GATLayer(4, 8, num_heads=3, rng=rng, concat=True)
        out = layer(src, dst, Tensor(np.ones((6, 4))))
        assert out.shape == (6, 24)

    def test_layer_head_average(self):
        rng = np.random.default_rng(0)
        src, dst = edges_with_self_loops(small_graph())
        layer = GATLayer(4, 8, num_heads=3, rng=rng, concat=False)
        out = layer(src, dst, Tensor(np.ones((6, 4))))
        assert out.shape == (6, 8)

    def test_full_model(self):
        rng = np.random.default_rng(0)
        src, dst = edges_with_self_loops(small_graph())
        model = GAT(4, 5, 3, rng, num_heads=2)
        logits = model(src, dst, Tensor(np.ones((6, 4))))
        assert logits.shape == (6, 3)
        logits.sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestHANModel:
    def test_semantic_attention_weights(self):
        rng = np.random.default_rng(0)
        attn = HANSemanticAttention(4, 8, rng)
        paths = [Tensor(rng.normal(size=(5, 4))) for _ in range(3)]
        fused, weights = attn(paths)
        assert fused.shape == (5, 4)
        assert weights.shape == (3,)
        np.testing.assert_allclose(weights.sum(), 1.0)

    def test_full_model_and_weights_exposed(self):
        rng = np.random.default_rng(0)
        adj = small_graph()
        edge_lists = [edges_with_self_loops(adj), edges_with_self_loops(adj.T.tocsr())]
        model = HAN(4, 5, 3, 2, rng, num_heads=2)
        logits = model(edge_lists, Tensor(np.ones((6, 4))))
        assert logits.shape == (6, 3)
        assert model.semantic_weights().shape == (2,)


class TestHGTModel:
    def test_forward_shapes(self):
        hin = movie_hin()
        rng = np.random.default_rng(0)
        for t, dim in [("M", 4), ("A", 3), ("D", 3), ("P", 3)]:
            hin.set_features(t, rng.normal(size=(hin.num_nodes(t), dim)))
        relations = relation_edge_lists(hin)
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = HGT(type_dims, relations, "M", 8, 3, rng, num_layers=2, num_heads=2)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        logits = model(features)
        assert logits.shape == (4, 3)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            HGTLayer(["A"], [], dim=7, num_heads=2, rng=np.random.default_rng(0))

    def test_residual_keeps_isolated_types(self):
        # A node type with no incoming relations keeps its representation.
        hin = movie_hin()
        rng = np.random.default_rng(0)
        relations = [
            r for r in relation_edge_lists(hin)
            if r[0] == "A" and r[1] == "M"
        ]
        layer = HGTLayer(["M", "A"], relations, 8, 2, rng)
        h = {
            "M": Tensor(rng.normal(size=(4, 8))),
            "A": Tensor(rng.normal(size=(2, 8))),
        }
        out = layer(h)
        np.testing.assert_allclose(out["A"].data, h["A"].data)


class TestMAGNNModel:
    def test_forward(self):
        hin = movie_hin()
        rng = np.random.default_rng(0)
        for t, dim in [("M", 4), ("A", 3), ("D", 3), ("P", 3)]:
            hin.set_features(t, rng.normal(size=(hin.num_nodes(t), dim)))
        from repro.baselines.magnn import enumerate_instances_from_all

        metapaths = [MetaPath.parse("MAM"), MetaPath.parse("MDM")]
        instance_data = [
            enumerate_instances_from_all(hin, mp, per_node_cap=16) for mp in metapaths
        ]
        type_dims = {t: hin.features(t).shape[1] for t in hin.node_types}
        model = MAGNN(type_dims, metapaths, 8, 3, rng)
        features = {t: Tensor(hin.features(t)) for t in hin.node_types}
        logits = model(features, instance_data)
        assert logits.shape == (4, 3)
        logits.sum().backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert any(grads)


class TestHGCNModel:
    def test_forward(self):
        rng = np.random.default_rng(0)
        subnetworks = [small_graph(seed=1), small_graph(seed=2)]
        model = HGCN(4, subnetworks, kernel_dim=6, num_classes=3, rng=rng)
        logits = model(Tensor(np.ones((6, 4))))
        assert logits.shape == (6, 3)


class TestMVGRLModel:
    def test_ppr_requires_valid_alpha(self):
        diff = ppr_diffusion(small_graph(), alpha=0.3)
        assert diff.shape == (6, 6)
        assert np.all(np.isfinite(diff))

    def test_loss_and_embed(self):
        rng = np.random.default_rng(0)
        adj = normalize_adjacency(small_graph())
        diff = ppr_diffusion(small_graph())
        model = MVGRLModel(4, 8, rng)
        x = Tensor(np.random.default_rng(1).normal(size=(6, 4)))
        shuffled = Tensor(np.random.default_rng(2).normal(size=(6, 4)))
        loss = model.loss(adj, diff, x, shuffled)
        assert np.isfinite(loss.item())
        emb = model.embed(adj, diff, x)
        assert emb.shape == (6, 8)
