"""Tests for the batched frontier context kernel (vs the reference DFS).

Covers the PR's contract: bit-identical instance sets between
:func:`repro.hin.context.enumerate_contexts` and the brute-force DFS,
exact sizes against the commuting matrix when under caps, canonical
endpoint ordering for both argument orders, deterministic ascending
truncation, and vectorized-vs-loop equality of the context feature
builder.
"""

import numpy as np
import pytest

from repro.core.context_features import (
    build_context_features,
    context_embedding,
    context_features_from_batch,
)
from repro.hin import (
    HIN,
    MetaPath,
    NeighborFilter,
    build_bipartite_graph,
    enumerate_contexts,
    enumerate_path_instances,
)
from repro.hin.context import (
    count_instances,
    dfs_enumerate_path_instances,
)
from repro.hin.engine import get_engine
from tests.test_hin_graph import movie_hin


def random_hin(seed: int, n_a: int = 12, n_b: int = 18, n_c: int = 5) -> HIN:
    """A small random A/B/C tripartite HIN for exhaustive comparisons."""
    rng = np.random.default_rng(seed)
    hin = HIN(name=f"rand{seed}")
    hin.add_node_type("A", n_a)
    hin.add_node_type("B", n_b)
    hin.add_node_type("C", n_c)
    n_ab = max(1, int(n_a * n_b * 0.15))
    n_bc = max(1, int(n_b * n_c * 0.3))
    hin.add_edges(
        "ab", "A", "B",
        rng.integers(0, n_a, size=n_ab), rng.integers(0, n_b, size=n_ab),
    )
    hin.add_edges(
        "bc", "B", "C",
        rng.integers(0, n_b, size=n_bc), rng.integers(0, n_c, size=n_bc),
    )
    return hin


def all_pairs(n: int) -> np.ndarray:
    u, v = np.triu_indices(n, k=1)
    return np.stack([u, v], axis=1)


class TestKernelEquivalence:
    """Frontier kernel == brute-force DFS, instance for instance."""

    @pytest.mark.parametrize("mp_name", ["MAM", "MAMAM", "MDMPM"])
    def test_movie_hin_all_pairs_uncapped(self, mp_name):
        hin = movie_hin()
        mp = MetaPath.parse(mp_name)
        pairs = all_pairs(4)
        batch = enumerate_contexts(hin, mp, pairs, max_instances=10_000)
        for j, (u, v) in enumerate(pairs):
            ref = dfs_enumerate_path_instances(
                hin, mp, int(u), int(v),
                max_instances=10_000, max_expansions=10**9,
            )
            got = batch.context(j)
            assert got.instances == ref.instances
            assert not got.truncated and not ref.truncated

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("mp_name", ["ABA", "ABCBA"])
    def test_random_hins_uncapped(self, seed, mp_name):
        hin = random_hin(seed)
        mp = MetaPath.parse(mp_name)
        pairs = all_pairs(hin.num_nodes("A"))
        batch = enumerate_contexts(hin, mp, pairs, max_instances=10**6)
        for j, (u, v) in enumerate(pairs):
            ref = dfs_enumerate_path_instances(
                hin, mp, int(u), int(v),
                max_instances=10**6, max_expansions=10**9,
            )
            assert batch.context(j).instances == ref.instances

    @pytest.mark.parametrize("cap", [1, 2, 5])
    def test_capped_sets_match_dfs(self, cap):
        """Both implementations keep the same deterministic prefix."""
        hin = random_hin(3)
        mp = MetaPath.parse("ABCBA")
        pairs = all_pairs(hin.num_nodes("A"))
        batch = enumerate_contexts(hin, mp, pairs, max_instances=cap)
        for j, (u, v) in enumerate(pairs):
            ref = dfs_enumerate_path_instances(
                hin, mp, int(u), int(v),
                max_instances=cap, max_expansions=10**9,
            )
            got = batch.context(j)
            assert got.instances == ref.instances
            assert got.truncated == ref.truncated

    def test_sizes_match_commuting_counts_under_caps(self):
        hin = random_hin(4)
        mp = MetaPath.parse("ABA")
        pairs = all_pairs(hin.num_nodes("A"))
        batch = enumerate_contexts(hin, mp, pairs, max_instances=10**6)
        for j, (u, v) in enumerate(pairs):
            expected = count_instances(hin, mp, int(u), int(v))
            assert batch.context(j).size == expected
            assert int(batch.total_counts[j]) == expected

    def test_single_hop_metapath(self):
        """Degenerate two-type path: instances are the edges themselves."""
        hin = random_hin(5)
        mp = MetaPath(["A", "B"])
        adjacency = hin.adjacency("A", "B").tocoo()
        pairs = np.stack([adjacency.row, adjacency.col], axis=1).astype(np.int64)
        batch = enumerate_contexts(hin, mp, pairs, max_instances=4)
        assert np.array_equal(batch.instance_ids, pairs)
        assert np.all(batch.sizes == 1)
        assert not batch.truncated.any()


class TestEndpointCanonicalization:
    def test_both_argument_orders_identical(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        forward = enumerate_path_instances(hin, mp, 0, 2, max_instances=100)
        backward = enumerate_path_instances(hin, mp, 2, 0, max_instances=100)
        assert (forward.u, forward.v) == (0, 2) == (backward.u, backward.v)
        assert forward.instances == backward.instances
        for instance in forward.instances:
            assert instance[0] == forward.u
            assert instance[-1] == forward.v

    def test_dfs_canonicalizes_too(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        context = dfs_enumerate_path_instances(hin, mp, 3, 1)
        assert (context.u, context.v) == (1, 3)
        assert all(i[0] == 1 and i[-1] == 3 for i in context.instances)

    def test_asymmetric_endpoints_not_swapped(self):
        """Cross-type pairs keep their orientation (swap is meaningless)."""
        hin = random_hin(6)
        mp = MetaPath(["A", "B"])
        adjacency = hin.adjacency("A", "B").tocoo()
        u, v = int(adjacency.row[0]), int(adjacency.col[0])
        context = enumerate_path_instances(hin, mp, u, v)
        assert (context.u, context.v) == (u, v)


class TestTruncation:
    def test_truncation_keeps_ascending_prefix(self):
        hin = random_hin(7)
        mp = MetaPath.parse("ABCBA")
        pairs = all_pairs(hin.num_nodes("A"))
        full = enumerate_contexts(hin, mp, pairs, max_instances=10**6)
        capped = enumerate_contexts(hin, mp, pairs, max_instances=3)
        for j in range(pairs.shape[0]):
            whole = full.context(j)
            prefix = capped.context(j)
            assert prefix.instances == whole.instances[:3]
            assert prefix.truncated == (whole.size > 3)
            # Ascending lexicographic order within the full set.
            assert whole.instances == sorted(whole.instances)

    def test_truncated_flag_consistent_with_counts(self):
        hin = random_hin(8)
        mp = MetaPath.parse("ABA")
        pairs = all_pairs(hin.num_nodes("A"))
        batch = enumerate_contexts(hin, mp, pairs, max_instances=2)
        np.testing.assert_array_equal(
            batch.truncated, batch.total_counts > batch.sizes
        )

    def test_truncation_deterministic_across_calls(self):
        hin = random_hin(9)
        mp = MetaPath.parse("ABCBA")
        pairs = all_pairs(hin.num_nodes("A"))
        first = enumerate_contexts(hin, mp, pairs, max_instances=2)
        get_engine(hin).invalidate()
        second = enumerate_contexts(hin, mp, pairs, max_instances=2)
        assert np.array_equal(first.instance_ids, second.instance_ids)
        assert np.array_equal(first.indptr, second.indptr)

    def test_dfs_expansion_budget_bounds_stack(self):
        """max_expansions stops pushes (memory), marking truncation."""
        hin = random_hin(10)
        mp = MetaPath.parse("ABCBA")
        pairs = all_pairs(hin.num_nodes("A"))
        counts = get_engine(hin).pair_counts(mp, pairs)
        # Pick the best-connected pair so a tiny budget must truncate.
        u, v = map(int, pairs[int(np.argmax(counts))])
        context = dfs_enumerate_path_instances(
            hin, mp, u, v, max_instances=10**6, max_expansions=1
        )
        assert context.truncated
        assert context.size < context.total_count

    def test_max_instances_must_be_positive(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            enumerate_contexts(
                hin, MetaPath.parse("MAM"), np.array([[0, 1]]), max_instances=0
            )


class TestBatchStructure:
    def test_empty_pairs(self):
        hin = movie_hin()
        batch = enumerate_contexts(hin, MetaPath.parse("MAM"), np.empty((0, 2)))
        assert batch.num_pairs == 0
        assert batch.instance_ids.shape == (0, 3)
        assert batch.to_contexts() == []

    def test_bad_shape_rejected(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            enumerate_contexts(hin, MetaPath.parse("MAM"), np.array([0, 1]))

    def test_owner_and_indptr_agree(self):
        hin = random_hin(11)
        mp = MetaPath.parse("ABA")
        pairs = all_pairs(hin.num_nodes("A"))
        batch = enumerate_contexts(hin, mp, pairs, max_instances=5)
        owner = batch.owner()
        assert owner.shape[0] == batch.instance_ids.shape[0]
        assert np.all(np.diff(owner) >= 0)
        for j in range(batch.num_pairs):
            segment = owner[batch.indptr[j]: batch.indptr[j + 1]]
            assert np.all(segment == j)

    def test_disconnected_pair_has_empty_context(self):
        hin = movie_hin()
        # M (idx 2) and M (idx 3) share no actor: MAM context is empty.
        mp = MetaPath.parse("MAM")
        assert count_instances(hin, mp, 2, 3) == 0
        batch = enumerate_contexts(hin, mp, np.array([[2, 3]]))
        context = batch.context(0)
        assert context.size == 0
        assert not context.truncated


class TestVectorizedFeatures:
    def _embeddings(self, hin, dim=6, seed=0):
        rng = np.random.default_rng(seed)
        return {t: rng.normal(size=(hin.num_nodes(t), dim)) for t in hin.node_types}

    @pytest.mark.parametrize("mp_name", ["MAM", "MAMAM"])
    def test_batch_features_match_per_context_loop(self, mp_name):
        hin = movie_hin()
        mp = MetaPath.parse(mp_name)
        embeddings = self._embeddings(hin)
        graph = build_bipartite_graph(
            hin, mp, NeighborFilter(k=2), enumerate_instances=True
        )
        vectorized = build_context_features(graph, embeddings)
        loop = np.stack(
            [
                context_embedding(context, mp, embeddings, 6)
                for context in graph.contexts
            ]
        )
        np.testing.assert_allclose(vectorized, loop, rtol=1e-12, atol=1e-12)

    def test_empty_context_fallback_matches_loop(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        embeddings = self._embeddings(hin)
        # Pair (2, 3) has no MAM instance: endpoint-mean fallback.
        batch = enumerate_contexts(hin, mp, np.array([[0, 1], [2, 3]]))
        features = context_features_from_batch(batch, embeddings)
        expected_fallback = 0.5 * (embeddings["M"][2] + embeddings["M"][3])
        np.testing.assert_allclose(features[1], expected_fallback)
        expected_mean = context_embedding(batch.context(0), mp, embeddings, 6)
        np.testing.assert_allclose(features[0], expected_mean)

    def test_hand_assembled_graph_uses_loop_fallback(self):
        from repro.hin.bipartite import BipartiteGraph, incidence_from_pairs
        from repro.hin.context import MetaPathContext

        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        embeddings = self._embeddings(hin)
        pairs = np.array([[0, 1]])
        graph = BipartiteGraph(
            metapath=mp,
            num_objects=4,
            pairs=pairs,
            incidence=incidence_from_pairs(pairs, 4),
            contexts=[MetaPathContext(u=0, v=1, instances=[(0, 0, 1)])],
        )
        features = build_context_features(graph, embeddings)
        expected = (
            embeddings["M"][0] + embeddings["A"][0] + embeddings["M"][1]
        ) / 3.0
        np.testing.assert_allclose(features[0], expected)

    def test_trainer_records_truncation(self):
        from repro.core import ConCHConfig
        from repro.core.trainer import prepare_conch_data
        from repro.data import DBLPConfig, load_dataset

        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(num_authors=30, num_papers=80, num_conferences=4),
        )
        config = ConCHConfig(
            k=3, context_dim=8, embed_num_walks=1, embed_walk_length=6,
            embed_epochs=1, max_instances=1,
        )
        data = prepare_conch_data(dataset, config)
        # With a cap of one instance per pair, the dense APCPA meta-path
        # must truncate somewhere.
        assert any(m.truncated_contexts > 0 for m in data.metapath_data)
