"""Tests for meta-paths, commuting matrices, and PathSim (Eq. 1)."""

import numpy as np
import pytest

from repro.hin import HIN, MetaPath
from repro.hin.adjacency import (
    metapath_adjacency,
    metapath_binary_adjacency,
    relation_chain,
)
from repro.hin.pathsim import pathsim_matrix, pathsim_pairs, pathsim_single
from tests.test_hin_graph import movie_hin


class TestMetaPathParsing:
    def test_parse_single_char(self):
        mp = MetaPath.parse("APA")
        assert mp.node_types == ["A", "P", "A"]
        assert mp.name == "APA"

    def test_parse_dashed(self):
        mp = MetaPath.parse("Movie-Actor-Movie")
        assert mp.node_types == ["Movie", "Actor", "Movie"]

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            MetaPath.parse("")

    def test_parse_malformed_dashes(self):
        with pytest.raises(ValueError):
            MetaPath.parse("A--B")

    def test_too_short(self):
        with pytest.raises(ValueError):
            MetaPath(["A"])

    def test_length_is_hops(self):
        assert MetaPath.parse("APCPA").length == 4
        assert len(MetaPath.parse("APCPA")) == 5

    def test_symmetry(self):
        assert MetaPath.parse("APA").is_symmetric()
        assert MetaPath.parse("APCPA").is_symmetric()
        assert not MetaPath.parse("APC").is_symmetric()

    def test_endpoints(self):
        mp = MetaPath.parse("APC")
        assert mp.source_type == "A"
        assert mp.target_type == "C"
        assert not mp.endpoints_match("A")
        assert MetaPath.parse("APA").endpoints_match("A")

    def test_reversed(self):
        assert MetaPath.parse("APC").reversed().node_types == ["C", "P", "A"]

    def test_equality_and_hash(self):
        assert MetaPath.parse("APA") == MetaPath.parse("APA")
        assert hash(MetaPath.parse("APA")) == hash(MetaPath.parse("APA"))
        assert MetaPath.parse("APA") != MetaPath.parse("APCPA")

    def test_validate_against_schema(self):
        hin = movie_hin()
        MetaPath.parse("MAM").validate(hin.schema())
        with pytest.raises(ValueError):
            MetaPath.parse("MAD").validate(hin.schema())


class TestCommutingMatrix:
    def test_relation_chain_shapes(self):
        hin = movie_hin()
        chain = relation_chain(hin, MetaPath.parse("MAM"))
        assert chain[0].shape == (4, 2)
        assert chain[1].shape == (2, 4)

    def test_mam_counts_match_hand_computation(self):
        hin = movie_hin()
        counts = metapath_adjacency(
            hin, MetaPath.parse("MAM"), remove_self_paths=False
        ).toarray()
        # M1 stars A1,A2; M2 stars A1,A2; M3 stars A1; M4 stars A2.
        # counts[0,1] = |{A1, A2}| = 2; counts[0,2] = 1 (A1); counts[0,0]=2.
        assert counts[0, 1] == 2
        assert counts[0, 2] == 1
        assert counts[0, 3] == 1
        assert counts[0, 0] == 2
        assert counts[2, 3] == 0  # M3 (A1 only) vs M4 (A2 only)

    def test_remove_self_paths(self):
        hin = movie_hin()
        counts = metapath_adjacency(hin, MetaPath.parse("MAM")).toarray()
        assert np.all(np.diag(counts) == 0)

    def test_binary_adjacency(self):
        hin = movie_hin()
        binary = metapath_binary_adjacency(hin, MetaPath.parse("MAM")).toarray()
        assert set(np.unique(binary)) <= {0.0, 1.0}
        assert binary[0, 1] == 1.0

    def test_max_count_clamp(self):
        hin = movie_hin()
        counts = metapath_adjacency(
            hin, MetaPath.parse("MAM"), remove_self_paths=False, max_count=1.0
        )
        assert counts.toarray().max() == 1.0

    def test_invalid_metapath_rejected(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            metapath_adjacency(hin, MetaPath.parse("MAD"))


class TestPathSim:
    def test_symmetric_range(self):
        hin = movie_hin()
        scores = pathsim_matrix(hin, MetaPath.parse("MAM")).toarray()
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0)
        np.testing.assert_allclose(scores, scores.T)

    def test_hand_computed_value(self):
        hin = movie_hin()
        # M1-M2 via MAM: M[0,1]=2, M[0,0]=2, M[1,1]=2 -> PS = 2*2/(2+2) = 1.
        assert pathsim_single(hin, MetaPath.parse("MAM"), 0, 1) == 1.0
        # M1-M3: M[0,2]=1, M[0,0]=2, M[2,2]=1 -> PS = 2/3.
        assert pathsim_single(hin, MetaPath.parse("MAM"), 0, 2) == pytest.approx(2 / 3)

    def test_matrix_matches_single(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        matrix = pathsim_matrix(hin, mp)
        for u in range(4):
            for v in range(4):
                if u == v:
                    continue
                assert matrix[u, v] == pytest.approx(pathsim_single(hin, mp, u, v))

    def test_identical_neighborhoods_score_one(self):
        hin = movie_hin()
        # M1 and M2 both star exactly {A1, A2}.
        assert pathsim_single(hin, MetaPath.parse("MAM"), 0, 1) == 1.0

    def test_disconnected_pair_scores_zero(self):
        hin = movie_hin()
        assert pathsim_single(hin, MetaPath.parse("MAM"), 2, 3) == 0.0

    def test_requires_symmetric_metapath(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            pathsim_matrix(hin, MetaPath(["M", "A"]))

    def test_pairs_interface(self):
        hin = movie_hin()
        pairs = np.array([[0, 1], [0, 2]])
        scores = pathsim_pairs(hin, MetaPath.parse("MAM"), pairs)
        np.testing.assert_allclose(scores, [1.0, 2 / 3])

    def test_pairs_bad_shape(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            pathsim_pairs(hin, MetaPath.parse("MAM"), np.array([0, 1]))
