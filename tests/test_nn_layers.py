"""Tests for nn layers, modules, initializers."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    MLP,
    Bilinear,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    glorot_normal,
    glorot_uniform,
    kaiming_uniform,
    zeros_init,
)
from repro.nn.module import ModuleList, ParameterList


class TestModuleRegistration:
    def test_parameters_discovered(self):
        rng = np.random.default_rng(0)

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.linear = Linear(3, 2, rng)
                self.scale = Parameter(np.ones(2))

        net = Net()
        names = dict(net.named_parameters())
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_num_parameters(self):
        rng = np.random.default_rng(0)
        linear = Linear(3, 2, rng)
        assert linear.num_parameters() == 3 * 2 + 2

    def test_train_eval_propagates(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        a = Linear(3, 2, rng)
        b = Linear(3, 2, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self):
        rng = np.random.default_rng(0)
        a = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((2, 3))})

    def test_state_dict_shape_mismatch_raises(self):
        rng = np.random.default_rng(0)
        a = Linear(3, 2, rng)
        bad = a.state_dict()
        bad["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(bad)

    def test_zero_grad(self):
        rng = np.random.default_rng(0)
        linear = Linear(2, 1, rng)
        out = linear(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None

    def test_module_list(self):
        rng = np.random.default_rng(0)
        layers = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(layers) == 2
        assert len(list(layers[0].parameters())) == 2
        parent = Module()
        parent.layers = layers
        assert len(parent.parameters()) == 4

    def test_parameter_list(self):
        params = ParameterList([Parameter(np.ones(2)), Parameter(np.zeros(3))])
        assert len(params) == 2
        assert params[1].data.shape == (3,)


class TestLinear:
    def test_output_shape(self):
        rng = np.random.default_rng(0)
        linear = Linear(4, 3, rng)
        out = linear(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        rng = np.random.default_rng(0)
        linear = Linear(4, 3, rng, bias=False)
        assert linear.bias is None
        assert len(linear.parameters()) == 1

    def test_invalid_dims(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Linear(0, 3, rng)

    def test_gradcheck_through_linear(self):
        rng = np.random.default_rng(0)
        linear = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda a: linear(a), [x])
        # Also check weight gradient.
        gradcheck(lambda w: Tensor(x.data) @ w.T, [linear.weight])

    def test_known_values(self):
        rng = np.random.default_rng(0)
        linear = Linear(2, 1, rng)
        linear.weight.data[...] = [[2.0, 3.0]]
        linear.bias.data[...] = [1.0]
        out = linear(Tensor(np.array([[1.0, 1.0]])))
        np.testing.assert_allclose(out.data, [[6.0]])


class TestMLP:
    def test_requires_two_dims(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_depth(self):
        rng = np.random.default_rng(0)
        mlp = MLP([4, 8, 3], rng)
        assert len(mlp.linears) == 2

    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        mlp = MLP([4, 8, 3], rng, dropout=0.2)
        out = mlp(Tensor(np.ones((7, 4))))
        assert out.shape == (7, 3)

    def test_no_activation_after_last_layer(self):
        # Output of an MLP must be able to go negative (logits).
        rng = np.random.default_rng(0)
        mlp = MLP([2, 4, 1], rng)
        outs = mlp(Tensor(np.linspace(-3, 3, 50).reshape(25, 2))).data
        assert outs.min() < 0  # ReLU after last layer would forbid this

    def test_custom_activation(self):
        rng = np.random.default_rng(0)
        mlp = MLP([2, 4, 1], rng, activation=Tanh())
        assert isinstance(mlp.activation, Tanh)


class TestBilinear:
    def test_scores_shape_vector_summary(self):
        rng = np.random.default_rng(0)
        bilinear = Bilinear(4, 4, rng)
        x = Tensor(np.ones((6, 4)))
        s = Tensor(np.ones(4))
        assert bilinear(x, s).shape == (6,)

    def test_matches_manual_computation(self):
        rng = np.random.default_rng(0)
        bilinear = Bilinear(3, 3, rng)
        x = np.random.default_rng(1).normal(size=(2, 3))
        s = np.random.default_rng(2).normal(size=3)
        expected = x @ bilinear.weight.data @ s
        np.testing.assert_allclose(bilinear(Tensor(x), Tensor(s)).data, expected)

    def test_batch_summary(self):
        rng = np.random.default_rng(0)
        bilinear = Bilinear(3, 3, rng)
        x = Tensor(np.ones((5, 3)))
        y = Tensor(np.ones((5, 3)))
        assert bilinear(x, y).shape == (5,)


class TestActivationsAndDropout:
    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 1.0]))
        assert ReLU()(x).data.tolist() == [0.0, 1.0]
        assert Sigmoid()(x).data[1] > 0.5
        np.testing.assert_allclose(Tanh()(x).data, np.tanh(x.data))

    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(0)
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5, np.random.default_rng(0))


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_glorot_normal_std(self):
        rng = np.random.default_rng(0)
        w = glorot_normal((500, 500), rng)
        assert abs(w.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_kaiming_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = kaiming_uniform((10, 40), rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 40))

    def test_zeros(self):
        assert zeros_init((3, 3), np.random.default_rng(0)).sum() == 0.0

    def test_vector_shape(self):
        rng = np.random.default_rng(0)
        assert glorot_uniform((7,), rng).shape == (7,)
