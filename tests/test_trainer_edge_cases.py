"""Edge-case tests for the ConCH trainer and prepared-data plumbing."""

import numpy as np
import pytest

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.core.trainer import ConCHData, MetaPathData
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.embedding.metapath2vec import metapath2vec_embeddings


TINY = DBLPConfig(num_authors=80, num_papers=260, num_conferences=8)
FAST = dict(
    epochs=15, patience=15, k=3, num_layers=1, context_dim=16,
    hidden_dim=16, out_dim=16, lr=0.01,
    embed_num_walks=3, embed_walk_length=15, embed_epochs=1,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("dblp", config=TINY)


@pytest.fixture(scope="module")
def split(dataset):
    return stratified_split(dataset.labels, 0.2, seed=0)


class TestPrecomputedEmbeddings:
    def test_prepare_accepts_external_embeddings(self, dataset):
        config = ConCHConfig(**FAST)
        embeddings = metapath2vec_embeddings(
            dataset.hin, dataset.metapaths, dim=config.context_dim,
            num_walks=2, walk_length=10, epochs=1,
        )
        data = prepare_conch_data(dataset, config, embeddings=embeddings)
        assert data.context_dim == config.context_dim

    def test_same_embeddings_give_same_features(self, dataset):
        config = ConCHConfig(**FAST)
        embeddings = metapath2vec_embeddings(
            dataset.hin, dataset.metapaths, dim=config.context_dim,
            num_walks=2, walk_length=10, epochs=1,
        )
        a = prepare_conch_data(dataset, config, embeddings=embeddings)
        b = prepare_conch_data(dataset, config, embeddings=embeddings)
        for mp_a, mp_b in zip(a.metapath_data, b.metapath_data):
            np.testing.assert_allclose(mp_a.context_features, mp_b.context_features)


class TestTrainerBehaviour:
    def test_early_stopping_limits_epochs(self, dataset, split):
        config = ConCHConfig(**FAST).with_overrides(epochs=500, patience=3)
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        # With patience 3 the run must stop well before 500 epochs.
        assert len(trainer.recorder.records) < 200

    def test_recorder_val_matches_evaluate(self, dataset, split):
        config = ConCHConfig(**FAST)
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        best_recorded = max(r.val_metric for r in trainer.recorder.records)
        # After restore, current val metric equals the best recorded one.
        assert trainer.evaluate(split.val)["micro_f1"] == pytest.approx(best_recorded)

    def test_jacobi_mode_runs(self, dataset, split):
        config = ConCHConfig(**FAST).with_overrides(update_order="jacobi")
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        assert trainer.evaluate(split.test)["micro_f1"] > 0.25

    def test_sum_aggregator_runs(self, dataset, split):
        config = ConCHConfig(**FAST).with_overrides(aggregator="sum")
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        assert trainer.evaluate(split.test)["micro_f1"] > 0.25

    def test_zero_lambda_multitask_equals_supervised_loss_path(self, dataset, split):
        # lambda_ss = 0 in multitask mode must not try to build the SS term.
        config = ConCHConfig(**FAST).with_overrides(lambda_ss=0.0)
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        assert len(trainer.recorder.records) > 0

    def test_preprocess_seconds_positive(self, dataset):
        config = ConCHConfig(**FAST)
        data = prepare_conch_data(dataset, config)
        assert data.preprocess_seconds > 0
        assert data.num_objects == dataset.num_targets

    def test_metapath_data_properties(self, dataset):
        config = ConCHConfig(**FAST)
        data = prepare_conch_data(dataset, config)
        assert [m.metapath for m in data.metapath_data] == data.metapaths
        for mp_data in data.metapath_data:
            assert mp_data.num_contexts == mp_data.incidence.shape[1]
