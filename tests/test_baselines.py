"""Tests for the baseline zoo: each method runs and beats chance on a tiny
dataset; structural units (projections, propagation) are checked directly."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import BASELINES, choose_best_metapath, make_method
from repro.baselines.base import TrainSettings
from repro.baselines.gat import edges_with_self_loops
from repro.baselines.gnetmine import gnetmine_scores
from repro.baselines.hetgnn import type_reach_operators
from repro.baselines.hgcn import kernel_operators, relation_subnetworks
from repro.baselines.hgt import relation_edge_lists
from repro.baselines.label_propagation import propagate_labels
from repro.baselines.logreg import fit_logreg_on_embeddings
from repro.baselines.magnn import enumerate_instances_from_all
from repro.baselines.mvgrl import ppr_diffusion
from repro.baselines.registry import conch_method
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.eval.harness import run_method_on_split
from repro.hin import MetaPath
from tests.test_hin_graph import movie_hin


TINY = DBLPConfig(num_authors=80, num_papers=260, num_conferences=8)
FAST_SETTINGS = TrainSettings(epochs=30, patience=30, lr=0.01)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("dblp", config=TINY)


@pytest.fixture(scope="module")
def split(dataset):
    return stratified_split(dataset.labels, 0.2, seed=0)


CHANCE = 0.25  # four balanced classes


class TestStructuralUnits:
    def test_edges_with_self_loops(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        src, dst = edges_with_self_loops(adj)
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert (0, 1) in pairs
        assert (0, 0) in pairs and (1, 1) in pairs

    def test_ppr_diffusion_rows_sum_to_one(self):
        adj = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        diff = ppr_diffusion(adj, alpha=0.2)
        # PPR over a symmetric-normalized operator preserves total mass.
        np.testing.assert_allclose(diff.sum(axis=1), 1.0, atol=1e-8)

    def test_type_reach_operators_cover_multi_hop(self):
        dataset = load_dataset("yelp")
        operators = type_reach_operators(dataset.hin, "B")
        # U and K are two hops from B (through R).
        assert set(operators) == {"R", "U", "K"}
        assert operators["U"].shape == (
            dataset.hin.num_nodes("B"),
            dataset.hin.num_nodes("U"),
        )

    def test_relation_subnetworks(self):
        hin = movie_hin()
        subnetworks = relation_subnetworks(hin, "M")
        assert len(subnetworks) == 3  # via A, D, P
        for sub in subnetworks:
            assert sub.shape == (4, 4)
            assert np.all(sub.diagonal() == 0)

    def test_kernel_operators_count(self):
        adj = sp.csr_matrix(np.eye(3))
        assert len(kernel_operators(adj)) == 3

    def test_relation_edge_lists(self, dataset):
        relations = relation_edge_lists(dataset.hin)
        names = {(s, d) for s, d, _, _ in relations}
        assert ("A", "P") in names and ("P", "A") in names

    def test_magnn_instance_enumeration(self):
        hin = movie_hin()
        instances, anchors = enumerate_instances_from_all(
            hin, MetaPath.parse("MAM"), per_node_cap=100
        )
        assert instances.shape[1] == 3
        np.testing.assert_array_equal(instances[:, 0], anchors)
        assert np.all(instances[:, 0] != instances[:, 2])

    def test_magnn_budget_raises_memory_error(self):
        hin = movie_hin()
        with pytest.raises(MemoryError):
            enumerate_instances_from_all(
                hin, MetaPath.parse("MAM"), per_node_cap=100, instance_budget=2
            )

    def test_gnetmine_propagates_labels(self, dataset, split):
        scores = gnetmine_scores(
            dataset.hin,
            "A",
            split.train,
            dataset.labels[split.train],
            dataset.num_classes,
        )
        predictions = scores[split.test].argmax(axis=1)
        acc = (predictions == dataset.labels[split.test]).mean()
        assert acc > CHANCE

    def test_label_propagation_unit(self):
        # Two cliques, one seed each: propagation labels each clique.
        dense = np.zeros((6, 6))
        dense[:3, :3] = 1
        dense[3:, 3:] = 1
        np.fill_diagonal(dense, 0)
        scores = propagate_labels(
            sp.csr_matrix(dense),
            train_indices=np.array([0, 3]),
            train_labels=np.array([0, 1]),
            num_nodes=6,
            num_classes=2,
        )
        predictions = scores.argmax(axis=1)
        np.testing.assert_array_equal(predictions, [0, 0, 0, 1, 1, 1])

    def test_propagate_invalid_beta(self):
        with pytest.raises(ValueError):
            propagate_labels(
                sp.eye(2, format="csr"), np.array([0]), np.array([0]), 2, 2, beta=1.5
            )

    def test_logreg_learns_linear_problem(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(120, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        labels = y
        split = stratified_split(labels, 0.3, seed=0)
        preds = fit_logreg_on_embeddings(x, labels, split, 2)
        acc = (preds == labels[split.test]).mean()
        assert acc > 0.9

    def test_choose_best_metapath_picks_max_val(self, dataset, split):
        calls = []

        def run(adjacency, metapath):
            calls.append(metapath.name)
            score = {"APA": 0.3, "APAPA": 0.9, "APCPA": 0.5}[metapath.name]
            return {
                "val_metric": score,
                "test_predictions": np.zeros(split.test.size, dtype=int),
            }

        best = choose_best_metapath(dataset, split, run)
        assert best["metapath"].name == "APAPA"
        assert len(calls) == 3


class TestRegistry:
    def test_all_names_registered(self):
        expected = {
            # Table-I panel.
            "node2vec", "mp2vec", "GCN", "GAT", "MVGRL", "HAN", "HetGNN",
            "MAGNN", "HGT", "HDGI", "HGCN", "GNetMine", "LabelProp",
            # Related-work extensions (§II).
            "GraphSAGE", "DGI", "Grempt", "HIN2Vec",
            "RGCN", "GTN", "LINE", "PTE",
        }
        assert set(BASELINES) == expected

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_method("DeepThought")


@pytest.mark.parametrize(
    "name,kwargs",
    [
        ("GNetMine", {}),
        ("LabelProp", {}),
        ("GCN", {"settings": FAST_SETTINGS}),
        ("HGCN", {"settings": FAST_SETTINGS}),
        ("HDGI", {"epochs": 20}),
        ("HetGNN", {"epochs": 20}),
        ("MVGRL", {"epochs": 20}),
        ("HGT", {"settings": FAST_SETTINGS, "num_layers": 1}),
        ("HAN", {"settings": FAST_SETTINGS, "num_heads": 2}),
        ("GAT", {"settings": FAST_SETTINGS, "num_heads": 2}),
        ("MAGNN", {"settings": FAST_SETTINGS, "per_node_cap": 16}),
        ("node2vec", {"num_walks": 2, "walk_length": 10}),
        ("mp2vec", {"num_walks": 5, "walk_length": 20}),
    ],
)
def test_baseline_beats_chance(dataset, split, name, kwargs):
    method = make_method(name, **kwargs)
    scores = run_method_on_split(method, dataset, split, seed=0)
    assert scores["micro_f1"] > CHANCE + 0.1, f"{name} too weak: {scores}"


class TestMVGRLMemoryGuard:
    def test_oom_on_large_dataset(self, dataset, split):
        method = make_method("MVGRL", max_nodes=10)
        with pytest.raises(MemoryError):
            method(dataset, split, 0)


class TestConCHMethodAdapter:
    def test_conch_method_runs(self, dataset, split):
        cfg = ConCHConfig(
            epochs=30, patience=30, k=3, num_layers=1, context_dim=16,
            hidden_dim=16, out_dim=16, lr=0.01, aggregator="mean",
        )
        method = conch_method(base_config=cfg)
        scores = run_method_on_split(method, dataset, split, seed=0)
        assert scores["micro_f1"] > CHANCE + 0.1

    def test_conch_variant_adapter(self, dataset, split):
        cfg = ConCHConfig(
            epochs=20, patience=20, k=3, num_layers=1, context_dim=16,
            hidden_dim=16, out_dim=16, lr=0.01, aggregator="mean",
        )
        method = conch_method("nc", base_config=cfg)
        scores = run_method_on_split(method, dataset, split, seed=0)
        assert scores["micro_f1"] > CHANCE

    def test_preprocessing_cached_across_splits(self, dataset):
        cfg = ConCHConfig(
            epochs=5, patience=5, k=3, num_layers=1, context_dim=16,
            hidden_dim=16, out_dim=16, aggregator="mean",
        )
        method = conch_method(base_config=cfg)
        import time

        split_a = stratified_split(dataset.labels, 0.2, seed=0)
        split_b = stratified_split(dataset.labels, 0.2, seed=1)
        start = time.perf_counter()
        method(dataset, split_a, 0)
        first = time.perf_counter() - start
        start = time.perf_counter()
        method(dataset, split_b, 0)
        second = time.perf_counter() - start
        assert second < first  # preparation reused
