"""Tests for the label-corruption helper used by the robustness bench."""

import numpy as np
import pytest

from repro.data import corrupt_labels


class TestCorruptLabels:
    def setup_method(self):
        self.labels = np.repeat([0, 1, 2, 3], 25)
        self.indices = np.arange(40)

    def test_zero_noise_is_identity(self):
        noisy = corrupt_labels(self.labels, self.indices, 0.0, 4)
        assert np.array_equal(noisy, self.labels)

    def test_original_untouched(self):
        before = self.labels.copy()
        corrupt_labels(self.labels, self.indices, 0.5, 4, seed=0)
        assert np.array_equal(self.labels, before)

    def test_flip_count(self):
        noisy = corrupt_labels(self.labels, self.indices, 0.5, 4, seed=0)
        changed = (noisy != self.labels).sum()
        assert changed == 20  # round(0.5 * 40)

    def test_flips_only_inside_indices(self):
        noisy = corrupt_labels(self.labels, self.indices, 1.0, 4, seed=0)
        outside = np.setdiff1d(np.arange(self.labels.size), self.indices)
        assert np.array_equal(noisy[outside], self.labels[outside])

    def test_flipped_labels_differ(self):
        noisy = corrupt_labels(self.labels, self.indices, 1.0, 4, seed=0)
        assert (noisy[self.indices] != self.labels[self.indices]).all()

    def test_flipped_labels_in_range(self):
        noisy = corrupt_labels(self.labels, self.indices, 1.0, 4, seed=0)
        assert noisy.min() >= 0 and noisy.max() < 4

    def test_deterministic_with_seed(self):
        a = corrupt_labels(self.labels, self.indices, 0.3, 4, seed=5)
        b = corrupt_labels(self.labels, self.indices, 0.3, 4, seed=5)
        assert np.array_equal(a, b)

    def test_bad_noise_rate(self):
        with pytest.raises(ValueError):
            corrupt_labels(self.labels, self.indices, 1.5, 4)

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            corrupt_labels(self.labels, self.indices, 0.5, 1)

    def test_binary_flip_is_complement(self):
        labels = np.array([0, 1, 0, 1, 0, 1])
        noisy = corrupt_labels(labels, np.arange(6), 1.0, 2, seed=0)
        assert np.array_equal(noisy, 1 - labels)
