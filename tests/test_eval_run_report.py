"""Tests for the ``python -m repro.eval.run_report`` CLI."""

import numpy as np
import pytest

import repro.eval.run_report as run_report
from repro.data.dblp import DBLPConfig, make_dblp


@pytest.fixture()
def tiny_dblp(monkeypatch):
    dataset = make_dblp(DBLPConfig(num_authors=60, num_papers=180, seed=9))
    monkeypatch.setattr(run_report, "load_dataset", lambda name: dataset)
    return dataset


class TestBuildMethods:
    def test_known_methods(self):
        methods = run_report.build_methods(
            ["Grempt", "GNetMine", "ConCH"], "dblp", epochs=10
        )
        assert set(methods) == {"Grempt", "GNetMine", "ConCH"}
        assert all(callable(m) for m in methods.values())

    def test_unknown_method_exits(self):
        with pytest.raises(SystemExit, match="unknown method"):
            run_report.build_methods(["Nope"], "dblp", epochs=10)


class TestMain:
    def test_writes_report_file(self, tiny_dblp, tmp_path, capsys):
        out = tmp_path / "report.md"
        run_report.main(
            [
                "--dataset", "dblp",
                "--fractions", "0.2",
                "--methods", "Grempt", "GNetMine",
                "--out", str(out),
            ]
        )
        text = out.read_text()
        assert text.startswith("# Contest report — dblp")
        assert "| method |" in text
        assert "Grempt" in text and "GNetMine" in text
        assert "Contests won" in text

    def test_prints_to_stdout_without_out(self, tiny_dblp, capsys):
        run_report.main(
            ["--fractions", "0.2", "--methods", "Grempt", "LabelProp"]
        )
        captured = capsys.readouterr().out
        assert "# Contest report" in captured

    def test_reference_defaults_to_conch_when_present(self, tiny_dblp, capsys):
        run_report.main(
            [
                "--fractions", "0.2",
                "--methods", "Grempt", "ConCH",
                "--epochs", "15",
            ]
        )
        captured = capsys.readouterr().out
        assert "| ConCH vs |" in captured

    def test_no_pairwise_without_reference(self, tiny_dblp, capsys):
        run_report.main(["--fractions", "0.2", "--methods", "Grempt", "LabelProp"])
        captured = capsys.readouterr().out
        assert "vs |" not in captured.splitlines()[0]
