"""The replica autoscaling policy, one deterministic tick at a time.

:class:`repro.serve.autoscale.ReplicaAutoscaler` is duck-typed over its
server and never reads a wall clock (ticks carry their own elapsed
time), so the whole control law — thresholds, vote hysteresis, the
shed-rate override, cooldown, and the policy bounds — is pinned here
against a scripted fake server, no processes or sleeps involved.  The
live loop (real thread driving a real replica pool) is exercised by the
scale tests in ``tests/test_serve_lifecycle.py``.
"""

from __future__ import annotations

import pytest

from repro.serve import AutoscalePolicy, ReplicaAutoscaler


class FakeServer:
    """Scripted signals + a recording ``scale_to``."""

    def __init__(self, replicas: int = 1):
        self.replicas = replicas
        self.queue_depth = 0.0
        self.shed_total = 0.0
        self.calls: list = []

    def autoscale_signals(self):
        return {
            "queue_depth": float(self.queue_depth),
            "shed_total": float(self.shed_total),
            "replicas": float(self.replicas),
        }

    def scale_to(self, count: int) -> int:
        self.calls.append(count)
        self.replicas = count
        return count


def make(replicas=1, **policy_kwargs):
    policy_kwargs.setdefault("up_ticks", 2)
    policy_kwargs.setdefault("down_ticks", 3)
    policy_kwargs.setdefault("cooldown_s", 1.0)
    policy = AutoscalePolicy(**policy_kwargs)
    server = FakeServer(replicas=replicas)
    return server, ReplicaAutoscaler(server, policy)


class TestPolicyValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match="interval_s"):
            AutoscalePolicy(interval_s=0.0)
        with pytest.raises(ValueError, match="down_queue_per_replica"):
            AutoscalePolicy(
                up_queue_per_replica=2.0, down_queue_per_replica=5.0
            )
        with pytest.raises(ValueError, match="up_ticks"):
            AutoscalePolicy(up_ticks=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            AutoscalePolicy(cooldown_s=-1.0)


class TestControlLaw:
    def test_scale_up_needs_consecutive_votes(self):
        server, scaler = make()
        server.queue_depth = 100.0  # way past up_queue_per_replica * 1
        assert scaler.tick() is None  # first vote: hysteresis holds
        assert scaler.tick() == 2  # second consecutive vote: act
        assert server.calls == [2]

    def test_vote_streak_resets_when_load_drops(self):
        server, scaler = make()
        server.queue_depth = 100.0
        assert scaler.tick() is None
        server.queue_depth = 4.0  # between the thresholds: neutral
        assert scaler.tick() is None  # streak broken
        server.queue_depth = 100.0
        assert scaler.tick() is None  # streak restarts from one
        assert server.calls == []

    def test_shed_forces_up_vote_even_with_empty_queue(self):
        server, scaler = make()
        assert scaler.tick() is None  # baseline shed sample
        server.shed_total = 5.0  # something was turned away since
        assert scaler.tick() is None
        server.shed_total = 6.0
        assert scaler.tick() == 2
        assert server.calls == [2]

    def test_scale_down_is_slower_and_needs_quiet(self):
        server, scaler = make(replicas=3)
        server.queue_depth = 0.0
        assert scaler.tick() is None
        assert scaler.tick() is None
        # A shed in the window vetoes the down vote and resets the streak.
        server.shed_total = 1.0
        assert scaler.tick() is None
        assert scaler.tick() is None
        assert scaler.tick() is None
        assert scaler.tick() == 2  # three quiet ticks after the reset
        assert server.calls == [2]

    def test_cooldown_blocks_flapping(self):
        server, scaler = make(cooldown_s=10.0)
        server.queue_depth = 100.0
        scaler.tick()
        assert scaler.tick() == 2
        # Load still high: votes keep accumulating, but the cooldown
        # holds the controller still until enough time is credited.
        assert scaler.tick(elapsed_s=1.0) is None
        assert scaler.tick(elapsed_s=1.0) is None
        assert scaler.tick(elapsed_s=20.0) == 3
        assert server.calls == [2, 3]

    def test_bounds_are_respected(self):
        server, scaler = make(replicas=4, max_replicas=4)
        server.queue_depth = 1000.0
        for _ in range(6):
            assert scaler.tick(elapsed_s=100.0) is None  # already at max
        server, scaler = make(replicas=1, down_ticks=1)
        server.queue_depth = 0.0
        for _ in range(6):
            assert scaler.tick(elapsed_s=100.0) is None  # already at min
        assert server.calls == []

    def test_stats_reports_ticks_and_events(self):
        server, scaler = make()
        server.queue_depth = 100.0
        scaler.tick()
        scaler.tick()
        stats = scaler.stats()
        assert stats["ticks"] == 2
        assert stats["policy"]["max_replicas"] == 4
        (event,) = stats["scale_events"]
        assert event["direction"] == "up"
        assert (event["from_replicas"], event["to_replicas"]) == (1, 2)

    def test_thread_lifecycle_is_idempotent(self):
        server, scaler = make()
        scaler.start()
        scaler.start()  # no second thread
        scaler.stop()
        scaler.stop()  # idempotent
        scaler.start()  # restart-safe
        scaler.stop()
