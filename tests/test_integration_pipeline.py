"""Cross-module integration tests: the full pipeline on micro datasets.

These complement the per-module unit tests by checking that the pieces
compose: generator → PathSim filter → contexts → bipartite graphs →
model → trainer → metrics, and that the paper's qualitative orderings
emerge end to end even at micro scale.
"""

import numpy as np
import pytest

from repro.baselines.registry import conch_method
from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data, variant_config
from repro.data import (
    DBLPConfig,
    YelpConfig,
    load_dataset,
    stratified_split,
)
from repro.eval.harness import run_contest, summarize_results


MICRO_DBLP = DBLPConfig(num_authors=100, num_papers=340, num_conferences=10)
MICRO_YELP = YelpConfig(
    num_businesses=60, num_reviews=500, num_users=40, num_keywords=20
)
FAST = dict(
    epochs=60, patience=60, k=4, context_dim=16, hidden_dim=24, out_dim=24,
    lr=0.01, lambda_ss=0.3,
    embed_num_walks=4, embed_walk_length=20, embed_epochs=2,
)


@pytest.fixture(scope="module")
def dblp():
    return load_dataset("dblp", config=MICRO_DBLP)


@pytest.fixture(scope="module")
def yelp():
    return load_dataset("yelp", config=MICRO_YELP)


class TestEndToEnd:
    def test_conch_learns_dblp(self, dblp):
        config = ConCHConfig(num_layers=2, **FAST)
        split = stratified_split(dblp.labels, 0.2, seed=0)
        data = prepare_conch_data(dblp, config)
        trainer = ConCHTrainer(data, config).fit(split)
        assert trainer.evaluate(split.test)["micro_f1"] > 0.6

    def test_conch_learns_yelp(self, yelp):
        config = ConCHConfig(num_layers=1, **FAST)
        split = stratified_split(yelp.labels, 0.2, seed=0)
        data = prepare_conch_data(yelp, config)
        trainer = ConCHTrainer(data, config).fit(split)
        assert trainer.evaluate(split.test)["micro_f1"] > 0.5

    def test_yelp_attention_prefers_keyword_path(self, yelp):
        """Fig. 6b shape at micro scale: BRKRB >= BRURB."""
        config = ConCHConfig(num_layers=1, **FAST)
        split = stratified_split(yelp.labels, 0.2, seed=0)
        data = prepare_conch_data(yelp, config)
        trainer = ConCHTrainer(data, config).fit(split)
        weights = trainer.attention_weights()
        names = [m.name for m in yelp.metapaths]
        assert weights[names.index("BRKRB")] >= weights[names.index("BRURB")] - 0.15

    def test_more_labels_do_not_hurt_much(self, dblp):
        # Averaged over two split seeds: a single micro-scale run is noisy
        # enough that legitimate substrate changes (e.g. deterministic
        # PathSim tie-breaking) flip the one-seed comparison by <0.001.
        config = ConCHConfig(num_layers=2, **FAST)
        data = prepare_conch_data(dblp, config)
        scores = {}
        for fraction in (0.05, 0.20):
            per_seed = []
            for seed in (0, 1):
                split = stratified_split(dblp.labels, fraction, seed=seed)
                trainer = ConCHTrainer(data, config).fit(split)
                per_seed.append(trainer.evaluate(split.test)["micro_f1"])
            scores[fraction] = float(np.mean(per_seed))
        assert scores[0.20] >= scores[0.05] - 0.1

    def test_full_beats_random_neighbors_on_average(self, dblp):
        base = ConCHConfig(num_layers=2, **FAST)
        splits = [stratified_split(dblp.labels, 0.1, seed=s) for s in range(2)]
        data_full = prepare_conch_data(dblp, base)
        rd_config = variant_config("rd", base)
        data_rd = prepare_conch_data(dblp, rd_config)
        full_scores = [
            ConCHTrainer(data_full, base).fit(s).evaluate(s.test)["micro_f1"]
            for s in splits
        ]
        rd_scores = [
            ConCHTrainer(data_rd, rd_config).fit(s).evaluate(s.test)["micro_f1"]
            for s in splits
        ]
        # PathSim filtering should not lose to random selection by much;
        # typically it wins (paper Fig. 3-5).
        assert np.mean(full_scores) >= np.mean(rd_scores) - 0.05

    def test_contest_harness_with_conch(self, dblp):
        method = conch_method(base_config=ConCHConfig(num_layers=1, **FAST))
        results = run_contest(
            {"ConCH": method}, dblp, train_fractions=[0.1], repeats=2
        )
        table = summarize_results(results)
        assert 0.0 <= table["ConCH"]["dblp@10%"] <= 1.0

    def test_prepared_data_reusable_across_variants(self, dblp):
        """su/ew variants share preprocessing with the full model."""
        base = ConCHConfig(num_layers=1, **FAST)
        data = prepare_conch_data(dblp, base)
        split = stratified_split(dblp.labels, 0.2, seed=0)
        for variant in ("su", "ew", "ft"):
            config = variant_config(variant, base)
            trainer = ConCHTrainer(data, config).fit(split)
            assert trainer.evaluate(split.test)["micro_f1"] > 0.4
