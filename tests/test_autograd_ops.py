"""Tests for functional ops: softmax family, segment ops, shape ops, dropout."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, ops


class TestSoftmax:
    def setup_method(self):
        self.rng = np.random.default_rng(3)

    def test_rows_sum_to_one(self):
        x = Tensor(self.rng.normal(size=(4, 5)))
        out = ops.softmax(x, axis=1).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))

    def test_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = ops.softmax(x).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_gradcheck(self):
        x = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda a: ops.softmax(a, axis=1), [x])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(self.rng.normal(size=(3, 4)))
        np.testing.assert_allclose(
            ops.log_softmax(x, axis=1).data,
            np.log(ops.softmax(x, axis=1).data),
        )

    def test_log_softmax_gradcheck(self):
        x = Tensor(self.rng.normal(size=(2, 5)), requires_grad=True)
        gradcheck(lambda a: ops.log_softmax(a, axis=1), [x])

    def test_masked_softmax_zeroes_masked(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        mask = np.array([[True, False, True]])
        out = ops.masked_softmax(x, mask, axis=1).data
        assert out[0, 1] == 0.0
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_masked_softmax_all_masked_row_is_zero(self):
        x = Tensor(np.array([[1.0, 2.0]]))
        out = ops.masked_softmax(x, np.array([[False, False]]), axis=1).data
        np.testing.assert_allclose(out, [[0.0, 0.0]])

    def test_masked_softmax_gradcheck(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        mask = rng.random((3, 4)) > 0.3
        mask[:, 0] = True  # no fully-masked rows
        gradcheck(lambda a: ops.masked_softmax(a, mask, axis=1), [x])


class TestSegmentOps:
    def test_segment_sum_values(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = ops.segment_sum(x, np.array([0, 0, 1]), 2).data
        np.testing.assert_allclose(out, [[3.0], [3.0]])

    def test_segment_sum_empty_segment(self):
        x = Tensor(np.array([[1.0]]))
        out = ops.segment_sum(x, np.array([2]), 3).data
        np.testing.assert_allclose(out, [[0.0], [0.0], [1.0]])

    def test_segment_sum_gradcheck(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        ids = np.array([0, 1, 0, 2, 1])
        gradcheck(lambda a: ops.segment_sum(a, ids, 3), [x])

    def test_segment_mean_values(self):
        x = Tensor(np.array([[2.0], [4.0], [10.0]]))
        out = ops.segment_mean(x, np.array([0, 0, 1]), 2).data
        np.testing.assert_allclose(out, [[3.0], [10.0]])

    def test_segment_mean_empty_segment_is_zero(self):
        x = Tensor(np.array([[2.0]]))
        out = ops.segment_mean(x, np.array([0]), 2).data
        np.testing.assert_allclose(out[1], [0.0])

    def test_segment_softmax_normalizes_per_segment(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0, 4.0]))
        ids = np.array([0, 0, 1, 1])
        out = ops.segment_softmax(scores, ids, 2).data
        np.testing.assert_allclose(out[:2].sum(), 1.0)
        np.testing.assert_allclose(out[2:].sum(), 1.0)

    def test_segment_softmax_gradcheck(self):
        rng = np.random.default_rng(2)
        scores = Tensor(rng.normal(size=7), requires_grad=True)
        ids = np.array([0, 1, 0, 2, 1, 2, 2])
        gradcheck(lambda a: ops.segment_softmax(a, ids, 3), [scores])

    def test_segment_softmax_large_scores_stable(self):
        scores = Tensor(np.array([1000.0, 1000.0]))
        out = ops.segment_softmax(scores, np.array([0, 0]), 1).data
        np.testing.assert_allclose(out, [0.5, 0.5])


class TestShapeOps:
    def setup_method(self):
        self.rng = np.random.default_rng(5)

    def test_concatenate_forward(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((3, 2)))
        out = ops.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)

    def test_concatenate_gradcheck(self):
        a = Tensor(self.rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(2, 2)), requires_grad=True)
        gradcheck(lambda x, y: ops.concatenate([x, y], axis=1), [a, b])

    def test_stack_forward(self):
        a = Tensor(np.ones(3))
        b = Tensor(np.zeros(3))
        assert ops.stack([a, b], axis=0).shape == (2, 3)
        assert ops.stack([a, b], axis=1).shape == (3, 2)

    def test_stack_gradcheck(self):
        a = Tensor(self.rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(self.rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda x, y: ops.stack([x, y], axis=1), [a, b])

    def test_where_gradcheck(self):
        cond = np.array([True, False, True])
        a = Tensor(self.rng.normal(size=3), requires_grad=True)
        b = Tensor(self.rng.normal(size=3), requires_grad=True)
        gradcheck(lambda x, y: ops.where(cond, x, y), [a, b])

    def test_constructors(self):
        assert ops.zeros(2, 3).shape == (2, 3)
        assert ops.ones(4).data.sum() == 4.0
        base = Tensor(np.ones((2, 2)))
        assert ops.zeros_like(base).data.sum() == 0.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = ops.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_p_is_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(5))
        assert ops.dropout(x, 0.0, rng, training=True) is x

    def test_invalid_p_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_expected_scale_preserved(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = ops.dropout(x, 0.5, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_gradient_flows_through_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(1000), requires_grad=True)
        out = ops.dropout(x, 0.5, rng, training=True)
        out.sum().backward()
        # Gradient equals the mask: zeros where dropped, 2.0 where kept.
        kept = x.grad > 0
        np.testing.assert_allclose(x.grad[kept], 2.0)

    def test_embedding_lookup(self):
        table = Tensor(np.eye(4), requires_grad=True)
        out = ops.embedding_lookup(table, np.array([3, 1]))
        np.testing.assert_allclose(out.data, [[0, 0, 0, 1], [0, 1, 0, 0]])
