"""Tests for stratified splitting (Table-I protocol)."""

import numpy as np
import pytest

from repro.data.splits import Split, split_grid, stratified_split


def balanced_labels(per_class=50, num_classes=4):
    return np.repeat(np.arange(num_classes), per_class)


class TestStratifiedSplit:
    def test_partition_is_disjoint_and_complete(self):
        labels = balanced_labels()
        split = stratified_split(labels, 0.1)
        combined = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(combined), np.arange(labels.size))

    def test_train_fraction_respected(self):
        labels = balanced_labels(per_class=100)
        split = stratified_split(labels, 0.1)
        assert split.train.size == 40  # 10% of 400

    def test_stratification(self):
        labels = balanced_labels(per_class=100)
        split = stratified_split(labels, 0.2)
        for cls in range(4):
            assert (labels[split.train] == cls).sum() == 20

    def test_minimum_one_per_class(self):
        labels = balanced_labels(per_class=10)
        split = stratified_split(labels, 0.02)  # 0.2 nodes/class -> floor 1
        for cls in range(4):
            assert (labels[split.train] == cls).sum() >= 1

    def test_at_least_one_test_per_class(self):
        labels = balanced_labels(per_class=5)
        split = stratified_split(labels, 0.2, val_fraction=0.2)
        for cls in range(4):
            assert (labels[split.test] == cls).sum() >= 1

    def test_seed_determinism(self):
        labels = balanced_labels()
        a = stratified_split(labels, 0.1, seed=7)
        b = stratified_split(labels, 0.1, seed=7)
        np.testing.assert_array_equal(a.train, b.train)

    def test_different_seeds_differ(self):
        labels = balanced_labels()
        a = stratified_split(labels, 0.1, seed=1)
        b = stratified_split(labels, 0.1, seed=2)
        assert not np.array_equal(a.train, b.train)

    def test_invalid_fractions(self):
        labels = balanced_labels()
        with pytest.raises(ValueError):
            stratified_split(labels, 0.0)
        with pytest.raises(ValueError):
            stratified_split(labels, 1.2)
        with pytest.raises(ValueError):
            stratified_split(labels, 0.5, val_fraction=0.6)

    def test_tiny_class_rejected(self):
        labels = np.array([0, 0, 0, 1, 1])  # class 1 has only 2 members
        with pytest.raises(ValueError):
            stratified_split(labels, 0.2)

    def test_overlapping_split_rejected(self):
        with pytest.raises(ValueError):
            Split(
                train=np.array([0, 1]),
                val=np.array([1, 2]),
                test=np.array([3]),
            )

    def test_sizes_property(self):
        labels = balanced_labels()
        split = stratified_split(labels, 0.1)
        sizes = split.sizes
        assert sizes["train"] + sizes["val"] + sizes["test"] == labels.size


class TestSplitGrid:
    def test_grid_structure(self):
        labels = balanced_labels()
        grid = split_grid(labels, fractions=[0.05, 0.2], repeats=3)
        assert set(grid) == {0.05, 0.2}
        assert all(len(v) == 3 for v in grid.values())

    def test_repeats_differ(self):
        labels = balanced_labels()
        grid = split_grid(labels, fractions=[0.1], repeats=2)
        a, b = grid[0.1]
        assert not np.array_equal(a.train, b.train)

    def test_grid_deterministic(self):
        labels = balanced_labels()
        g1 = split_grid(labels, fractions=[0.1], repeats=2, seed=3)
        g2 = split_grid(labels, fractions=[0.1], repeats=2, seed=3)
        np.testing.assert_array_equal(g1[0.1][0].train, g2[0.1][0].train)
