"""Tests for automatic meta-path discovery (enumerate / rank / select)."""

import numpy as np
import pytest

from repro.data.dblp import DBLPConfig, make_dblp
from repro.hin import HIN, MetaPath
from repro.hin.discovery import (
    MetaPathScore,
    discover_metapaths,
    rank_metapaths,
    select_metapaths,
)
from tests.test_hin_graph import movie_hin


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=100, num_papers=320, seed=3))


class TestDiscover:
    def test_movie_schema_paths(self):
        paths = discover_metapaths(movie_hin(), "M", max_length=2)
        names = {p.name for p in paths}
        assert names == {"MAM", "MDM", "MPM"}

    def test_longer_paths_at_length_four(self):
        # Every movie half-path of length 2 revisits M (the schema is a
        # star), so length-4 candidates only appear with include_trivial.
        paths = discover_metapaths(movie_hin(), "M", max_length=4, include_trivial=True)
        names = {p.name for p in paths}
        assert {"MAM", "MDM", "MPM"} <= names
        assert any(p.length == 4 for p in paths)
        assert "MAMAM" in names

    def test_all_results_symmetric_and_anchored(self):
        for path in discover_metapaths(movie_hin(), "M", max_length=4):
            assert path.is_symmetric()
            assert path.endpoints_match("M")
            assert len(path.node_types) % 2 == 1

    def test_trivial_revisits_excluded_by_default(self):
        dblp_paths = discover_metapaths(
            make_dblp(DBLPConfig(num_authors=40, num_papers=120, seed=0)).hin,
            "A",
            max_length=4,
        )
        names = {p.name for p in dblp_paths}
        assert "APCPA" in names
        assert "APAPA" not in names  # half-path revisits A

    def test_trivial_revisits_opt_in(self):
        hin = make_dblp(DBLPConfig(num_authors=40, num_papers=120, seed=0)).hin
        names = {
            p.name
            for p in discover_metapaths(hin, "A", max_length=4, include_trivial=True)
        }
        assert "APAPA" in names

    def test_deterministic_order(self):
        first = [p.name for p in discover_metapaths(movie_hin(), "M", max_length=4)]
        second = [p.name for p in discover_metapaths(movie_hin(), "M", max_length=4)]
        assert first == second
        assert first == sorted(first, key=lambda n: (len(n), n))

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            discover_metapaths(movie_hin(), "X")

    def test_bad_max_length(self):
        with pytest.raises(ValueError):
            discover_metapaths(movie_hin(), "M", max_length=1)


class TestRank:
    def test_scores_sorted_descending(self, dblp):
        candidates = discover_metapaths(dblp.hin, "A", max_length=4)
        ranked = rank_metapaths(dblp.hin, candidates, dblp.labels)
        scores = [entry.score for entry in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_homophily_in_unit_interval(self, dblp):
        candidates = discover_metapaths(dblp.hin, "A", max_length=4)
        for entry in rank_metapaths(dblp.hin, candidates, dblp.labels):
            assert 0.0 <= entry.homophily <= 1.0
            assert 0.0 <= entry.coverage <= 1.0

    def test_train_restriction_uses_fewer_pairs(self, dblp):
        candidates = discover_metapaths(dblp.hin, "A", max_length=4)
        full = rank_metapaths(dblp.hin, candidates, dblp.labels)
        train_idx = np.arange(20)
        restricted = rank_metapaths(
            dblp.hin, candidates, dblp.labels, train_idx=train_idx
        )
        full_pairs = {e.metapath.name: e.labeled_pairs for e in full}
        for entry in restricted:
            assert entry.labeled_pairs <= full_pairs[entry.metapath.name]

    def test_empty_train_set_scores_zero(self, dblp):
        candidates = discover_metapaths(dblp.hin, "A", max_length=2)
        ranked = rank_metapaths(
            dblp.hin, candidates, dblp.labels, train_idx=np.empty(0, dtype=np.int64)
        )
        assert all(entry.score == 0.0 for entry in ranked)

    def test_informative_path_beats_random_relation(self):
        # Plant a relation that ignores labels entirely next to one that
        # follows them: the label-following path must rank first.
        rng = np.random.default_rng(0)
        hin = HIN()
        hin.add_node_type("A", 60)
        hin.add_node_type("G", 6)   # label-pure groups
        hin.add_node_type("R", 6)   # random groups
        labels = np.repeat([0, 1, 2], 20)
        hin.add_edges("in_group", "A", "G", np.arange(60), labels * 2)
        hin.add_edges("in_random", "A", "R", np.arange(60), rng.integers(0, 6, 60))
        ranked = rank_metapaths(
            hin,
            [MetaPath.parse("AGA"), MetaPath.parse("ARA")],
            labels,
        )
        assert ranked[0].metapath.name == "AGA"
        assert ranked[0].homophily == pytest.approx(1.0)


class TestSelect:
    def test_limit_respected(self, dblp):
        selected = select_metapaths(dblp.hin, "A", dblp.labels, limit=1)
        assert len(selected) == 1

    def test_selected_are_scored_entries(self, dblp):
        selected = select_metapaths(dblp.hin, "A", dblp.labels, limit=3)
        assert all(isinstance(entry, MetaPathScore) for entry in selected)
        assert all(entry.labeled_pairs > 0 for entry in selected)

    def test_redundant_duplicate_is_skipped(self):
        # Two relations producing identical pair sets: only one survives.
        hin = HIN()
        hin.add_node_type("A", 30)
        hin.add_node_type("G", 3)
        hin.add_node_type("H", 3)
        labels = np.repeat([0, 1, 2], 10)
        hin.add_edges("g", "A", "G", np.arange(30), labels)
        hin.add_edges("h", "A", "H", np.arange(30), labels)
        selected = select_metapaths(hin, "A", labels, limit=3)
        names = [entry.metapath.name for entry in selected]
        assert len(names) == 1
        assert names[0] in ("AGA", "AHA")

    def test_min_coverage_filters_sparse_relations(self):
        hin = HIN()
        hin.add_node_type("A", 50)
        hin.add_node_type("G", 5)
        hin.add_node_type("S", 2)
        labels = np.repeat([0, 1, 2, 3, 4], 10)
        hin.add_edges("g", "A", "G", np.arange(50), labels)
        hin.add_edges("s", "A", "S", [0, 1], [0, 0])  # covers 2/50 nodes
        selected = select_metapaths(hin, "A", labels, min_coverage=0.2, limit=3)
        assert [entry.metapath.name for entry in selected] == ["AGA"]

    def test_bad_limit(self, dblp):
        with pytest.raises(ValueError):
            select_metapaths(dblp.hin, "A", dblp.labels, limit=0)

    def test_discovered_set_feeds_conch_pipeline(self, dblp):
        # The discovered meta-paths slot into the standard preprocessing.
        from repro.core.config import ConCHConfig
        from repro.core.trainer import prepare_conch_data
        from repro.data.base import HINDataset

        selected = select_metapaths(dblp.hin, "A", dblp.labels, limit=2)
        dataset = HINDataset(
            name="dblp-discovered",
            hin=dblp.hin,
            target_type="A",
            metapaths=[entry.metapath for entry in selected],
            class_names=dblp.class_names,
        ).validate()
        config = ConCHConfig(
            context_dim=16, embed_num_walks=2, embed_walk_length=10, embed_epochs=1
        )
        data = prepare_conch_data(dataset, config)
        assert len(data.metapath_data) == len(selected)
