"""Cache-management subsystem: LRU budget, disk store, weak registry.

Four properties of :mod:`repro.hin.cache` + the engine integration:

1. **Eviction equivalence** — for random small HINs and meta-paths,
   every engine view computed under ``memory_budget=0`` (evict
   everything), a tiny budget, and an unlimited budget is bit-exact
   equal; eviction changes recomposition counts, never semantics.
2. **Disk-store round trips** — persist-then-reload yields identical CSR
   matrices; mutating the HIN changes the content hash so stale files
   are never served; a truncated/corrupt ``.npz`` is skipped without
   raising and gets rewritten; a second engine over a warm store
   composes zero products (including through ``prepare_conch_data``).
3. **LRU accounting** — deterministic access sequences produce the
   expected eviction order, ``stats()`` counters match by exact count,
   and resident bytes never exceed the budget after any operation.
4. **Weak engine registry** — dropping the last reference to a HIN
   releases its engine (and everything the engine pinned);
   ``release_engine`` does so explicitly.

All disk-store tests route writes through pytest ``tmp_path`` fixtures,
and the repo-level ``conftest.py`` strips ``REPRO_CACHE_DIR`` for every
test, so CI never touches a shared cache directory.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hin import HIN, MetaPath
from repro.hin.cache import (
    LRUByteCache,
    ProductStore,
    nbytes_of,
)
from repro.hin.context import enumerate_contexts
from repro.hin.engine import CommutingEngine, get_engine, release_engine
from repro.hin.io import hin_content_hash

APA = MetaPath.parse("APA")
APCPA = MetaPath.parse("APCPA")
APAPA = MetaPath.parse("APAPA")


def dblp_like_hin(seed: int = 0) -> HIN:
    """Small random A/P/C network supporting APA, APCPA, APAPA."""
    rng = np.random.default_rng(seed)
    hin = HIN("fixture")
    hin.add_node_type("A", 20)
    hin.add_node_type("P", 40)
    hin.add_node_type("C", 5)
    hin.add_edges(
        "writes", "A", "P",
        rng.integers(0, 20, size=80),
        rng.integers(0, 40, size=80),
    )
    hin.add_edges(
        "published_in", "P", "C",
        np.arange(40),
        rng.integers(0, 5, size=40),
    )
    return hin


def assert_csr_identical(left: sp.spmatrix, right: sp.spmatrix) -> None:
    """Bit-exact CSR equality: structure and values."""
    left, right = sp.csr_matrix(left), sp.csr_matrix(right)
    left.sort_indices()
    right.sort_indices()
    assert left.shape == right.shape
    np.testing.assert_array_equal(left.indptr, right.indptr)
    np.testing.assert_array_equal(left.indices, right.indices)
    np.testing.assert_array_equal(left.data, right.data)


# ---------------------------------------------------------------------- #
# 1. Eviction equivalence
# ---------------------------------------------------------------------- #


class TestEvictionEquivalence:
    BUDGETS = (0, 4096, None)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("budget", BUDGETS)
    def test_every_view_bit_exact_under_eviction(self, seed, budget):
        hin = dblp_like_hin(seed)
        reference = CommutingEngine(hin)  # unlimited, no disk
        engine = CommutingEngine(hin, memory_budget=budget)
        rng = np.random.default_rng(seed)
        n = hin.num_nodes("A")
        pairs = np.stack(
            [rng.integers(0, n, size=30), rng.integers(0, n, size=30)], axis=1
        )
        for metapath in (APA, APCPA, APAPA):
            # Interleave accesses so eviction happens mid-stream.
            for _ in range(2):
                assert_csr_identical(
                    engine.counts(metapath), reference.counts(metapath)
                )
                assert_csr_identical(
                    engine.counts(metapath, remove_self_paths=True),
                    reference.counts(metapath, remove_self_paths=True),
                )
                assert_csr_identical(
                    engine.counts(metapath, max_count=2.0),
                    reference.counts(metapath, max_count=2.0),
                )
                np.testing.assert_array_equal(
                    engine.diagonal(metapath), reference.diagonal(metapath)
                )
                assert_csr_identical(
                    engine.binary(metapath), reference.binary(metapath)
                )
                for measure in ("pathsim", "hetesim", "joinsim", "cosine"):
                    assert_csr_identical(
                        engine.similarity(metapath, measure),
                        reference.similarity(metapath, measure),
                    )
                for k in (1, 4):
                    got = engine.top_k(metapath, k)
                    want = reference.top_k(metapath, k)
                    assert len(got) == len(want)
                    for g, w in zip(got, want):
                        np.testing.assert_array_equal(g, w)
                np.testing.assert_array_equal(
                    engine.pathsim_pairs(metapath, pairs),
                    reference.pathsim_pairs(metapath, pairs),
                )
                np.testing.assert_array_equal(
                    engine.pair_counts(metapath, pairs),
                    reference.pair_counts(metapath, pairs),
                )
                for position in range(len(metapath.node_types) - 1):
                    assert_csr_identical(
                        engine.suffix_product(metapath, position),
                        reference.suffix_product(metapath, position),
                    )
                    np.testing.assert_array_equal(
                        engine.suffix_pair_keys(metapath, position),
                        reference.suffix_pair_keys(metapath, position),
                    )
        assert_csr_identical(engine.half(APCPA), reference.half(APCPA))
        if budget is not None:
            assert engine.stats()["resident_bytes"] <= budget

    @pytest.mark.parametrize("budget", BUDGETS)
    def test_context_kernel_bit_exact_under_eviction(self, budget):
        # Same-seed twin HINs so the registry engines are independent.
        budgeted_hin = dblp_like_hin(7)
        reference_hin = dblp_like_hin(7)
        get_engine(budgeted_hin, memory_budget=budget)
        rng = np.random.default_rng(7)
        pairs = np.stack(
            [rng.integers(0, 20, size=25), rng.integers(0, 20, size=25)], axis=1
        )
        for metapath in (APA, APCPA, APAPA):
            got = enumerate_contexts(budgeted_hin, metapath, pairs, 6)
            want = enumerate_contexts(reference_hin, metapath, pairs, 6)
            np.testing.assert_array_equal(got.pairs, want.pairs)
            np.testing.assert_array_equal(got.instance_ids, want.instance_ids)
            np.testing.assert_array_equal(got.indptr, want.indptr)
            np.testing.assert_array_equal(got.total_counts, want.total_counts)
            np.testing.assert_array_equal(got.truncated, want.truncated)

    def test_budget_zero_still_recomposes_correctly_after_warm_use(self):
        """Shrinking a warm engine's budget evicts but keeps answers exact."""
        hin = dblp_like_hin(4)
        engine = CommutingEngine(hin)
        warm = engine.similarity(APCPA, "pathsim").toarray()
        assert engine.stats()["resident_bytes"] > 0
        engine.set_memory_budget(0)
        assert engine.stats()["resident_bytes"] == 0
        np.testing.assert_array_equal(
            engine.similarity(APCPA, "pathsim").toarray(), warm
        )

    def test_eviction_changes_recomposition_counts_not_results(self):
        hin = dblp_like_hin(5)
        engine = CommutingEngine(hin, memory_budget=0)
        engine.counts(APCPA)
        first = len(engine.compose_log)
        engine.counts(APCPA)
        # Evict-everything really does recompose on the second access...
        assert len(engine.compose_log) > first
        unlimited = CommutingEngine(hin)
        unlimited.counts(APCPA)
        unlimited.counts(APCPA)
        # ...while the unlimited engine composes each key exactly once.
        assert len(unlimited.compose_log) == len(set(unlimited.compose_log))


# ---------------------------------------------------------------------- #
# 2. Disk-backed product store
# ---------------------------------------------------------------------- #


class TestProductStore:
    def test_round_trip_identity(self, tmp_path):
        store = ProductStore(tmp_path)
        rng = np.random.default_rng(0)
        dense = rng.random((13, 9))
        dense[dense < 0.7] = 0.0
        matrix = sp.csr_matrix(dense)
        assert store.save("hash-a", ("A", "P", "C"), matrix)
        loaded = store.load("hash-a", ("A", "P", "C"))
        assert loaded is not None
        assert_csr_identical(loaded, matrix)
        assert loaded.dtype == matrix.dtype

    def test_wrong_hash_or_key_not_served(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = sp.csr_matrix(np.eye(3))
        store.save("hash-a", ("A", "P", "A"), matrix)
        assert store.load("hash-b", ("A", "P", "A")) is None
        assert store.load("hash-a", ("A", "P", "C")) is None

    def test_missing_file_is_a_miss(self, tmp_path):
        assert ProductStore(tmp_path).load("nope", ("A", "P")) is None

    @pytest.mark.parametrize("corruption", ["truncate", "garbage", "empty"])
    def test_corrupt_file_skipped_and_rewritten(self, tmp_path, corruption):
        store = ProductStore(tmp_path)
        matrix = sp.csr_matrix(np.arange(12.0).reshape(3, 4))
        store.save("hash-a", ("A", "P", "C"), matrix)
        path = store.path_for("hash-a", ("A", "P", "C"))
        payload = path.read_bytes()
        if corruption == "truncate":
            path.write_bytes(payload[: len(payload) // 2])
        elif corruption == "garbage":
            path.write_bytes(b"not an npz archive at all")
        else:
            path.write_bytes(b"")
        assert store.load("hash-a", ("A", "P", "C")) is None  # no raise
        assert store.save("hash-a", ("A", "P", "C"), matrix)  # rewritten
        assert_csr_identical(store.load("hash-a", ("A", "P", "C")), matrix)

    def test_engine_round_trip_yields_identical_csr(self, tmp_path):
        hin = dblp_like_hin(0)
        first = CommutingEngine(hin, cache_dir=str(tmp_path))
        composed = first.counts(APCPA)
        assert first.spills > 0  # write-through at composition
        second = CommutingEngine(hin, cache_dir=str(tmp_path))
        reloaded = second.counts(APCPA)
        assert second.compose_log == []  # composed zero products
        assert second.disk_hits > 0
        assert_csr_identical(reloaded, composed)

    def test_mutation_changes_hash_so_stale_files_are_not_served(self, tmp_path):
        hin = dblp_like_hin(0)
        engine = CommutingEngine(hin, cache_dir=str(tmp_path))
        stale = engine.counts(APA).toarray()
        old_hash = hin_content_hash(hin)

        hin.add_edges("reviews", "A", "P", [0, 1, 2], [5, 6, 7])
        assert hin_content_hash(hin) != old_hash
        fresh = engine.counts(APA).toarray()
        assert engine.compose_log  # recomposed, not served from disk
        reference = CommutingEngine(hin)
        np.testing.assert_array_equal(fresh, reference.counts(APA).toarray())
        assert not np.array_equal(stale, fresh)

    def test_corrupt_engine_file_recomposed_and_rewritten(self, tmp_path):
        hin = dblp_like_hin(1)
        engine = CommutingEngine(hin, cache_dir=str(tmp_path))
        expected = engine.counts(APCPA).toarray()
        store = ProductStore(tmp_path)
        path = store.path_for(hin_content_hash(hin), ("A", "P", "C", "P", "A"))
        assert path.exists()
        path.write_bytes(b"corrupted beyond repair")

        recovered = CommutingEngine(hin, cache_dir=str(tmp_path))
        np.testing.assert_array_equal(recovered.counts(APCPA).toarray(), expected)
        assert recovered.compose_log  # had to recompose the corrupt entry
        # ... and the store is healthy again for the next consumer.
        third = CommutingEngine(hin, cache_dir=str(tmp_path))
        np.testing.assert_array_equal(third.counts(APCPA).toarray(), expected)
        assert third.compose_log == []

    def test_eviction_spills_to_disk_when_store_attached_late(self, tmp_path):
        hin = dblp_like_hin(2)
        engine = CommutingEngine(hin)  # no store yet
        engine.counts(APCPA)
        engine.set_cache_dir(str(tmp_path))
        spills_before = engine.spills
        engine.set_memory_budget(0)  # evicts everything resident
        assert engine.spills > spills_before
        # The spilled product now serves a fresh engine from disk.
        fresh = CommutingEngine(hin, cache_dir=str(tmp_path))
        fresh.counts(APCPA)
        assert ("A", "P", "C", "P", "A") not in fresh.compose_log

    def test_eviction_never_spills_stale_products_after_mutation(self, tmp_path):
        """Regression: a pre-mutation product must not be written under
        the post-mutation content hash when eviction fires without a
        sync (``set_cache_dir`` + ``set_memory_budget``)."""
        hin = dblp_like_hin(9)
        engine = CommutingEngine(hin)  # no store yet
        stale = engine.counts(APA).toarray()
        hin.add_edges("reviews", "A", "P", [0, 1, 2], [5, 6, 7])
        # No engine access between the mutation and the spill trigger:
        engine.set_cache_dir(str(tmp_path))
        engine.set_memory_budget(0)  # evicts the pre-mutation products

        fresh = CommutingEngine(hin, cache_dir=str(tmp_path))
        served = fresh.counts(APA).toarray()
        reference = CommutingEngine(hin)
        np.testing.assert_array_equal(served, reference.counts(APA).toarray())
        assert not np.array_equal(served, stale)

    def test_content_hash_is_instance_independent(self):
        assert hin_content_hash(dblp_like_hin(3)) == hin_content_hash(
            dblp_like_hin(3)
        )
        assert hin_content_hash(dblp_like_hin(3)) != hin_content_hash(
            dblp_like_hin(4)
        )

    def test_content_hash_covers_edge_weights(self):
        """Same structure, different edge values -> different hash (the
        disk store must never serve one weighting's products as the
        other's, even though today's loaders binarize)."""
        weighted = dblp_like_hin(3)
        weighted.relation_matrix("writes").data[:] = 2.0  # repro: ignore[delta-discipline]
        assert hin_content_hash(weighted) != hin_content_hash(dblp_like_hin(3))


class TestWarmDiskPrepare:
    def test_second_prepare_run_composes_zero_products(self, tmp_path):
        """Acceptance: warm-disk ``prepare_conch_data`` skips composition.

        Two independent loads of the same synthetic DBLP fixture share
        only the on-disk product store; the compose spy proves the second
        run multiplies no chains at all.
        """
        from repro.core import ConCHConfig
        from repro.core.trainer import prepare_conch_data
        from repro.data import DBLPConfig, load_dataset

        def load():
            return load_dataset(
                "dblp",
                config=DBLPConfig(
                    num_authors=60, num_papers=150, num_conferences=6
                ),
            )

        config = ConCHConfig(
            k=3, context_dim=8, max_instances=4,
            embed_num_walks=1, embed_walk_length=5, embed_epochs=1,
            cache_dir=str(tmp_path),
        )
        rng = np.random.default_rng(0)

        def fake_embeddings(hin):
            return {
                t: rng.normal(size=(hin.num_nodes(t), config.context_dim))
                for t in hin.node_types
            }

        cold_dataset = load()
        cold = prepare_conch_data(
            cold_dataset, config, embeddings=fake_embeddings(cold_dataset.hin)
        )
        assert cold.substrate_stats["composed_products"] > 0
        assert cold.substrate_stats["spills"] > 0

        warm_dataset = load()  # identical content, different instance
        assert hin_content_hash(warm_dataset.hin) == hin_content_hash(
            cold_dataset.hin
        )
        engine = get_engine(warm_dataset.hin)
        warm = prepare_conch_data(
            warm_dataset, config, embeddings=fake_embeddings(warm_dataset.hin)
        )
        assert engine.compose_log == []  # zero products composed from scratch
        assert warm.substrate_stats["composed_products"] == 0
        assert warm.substrate_stats["disk_hits"] > 0
        # Same substrate -> identical preprocessed incidence structures.
        for got, want in zip(warm.metapath_data, cold.metapath_data):
            assert_csr_identical(got.incidence, want.incidence)


# ---------------------------------------------------------------------- #
# 3. LRU accounting
# ---------------------------------------------------------------------- #


def _array_of(nbytes: int) -> np.ndarray:
    return np.zeros(nbytes, dtype=np.uint8)


class TestLRUAccounting:
    def test_deterministic_eviction_order(self):
        evicted = []
        cache = LRUByteCache(budget=300, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", _array_of(100))
        cache.put("b", _array_of(100))
        cache.put("c", _array_of(100))
        assert evicted == []
        cache.get("a")  # freshen a: LRU order is now b, c, a
        cache.put("d", _array_of(100))
        assert evicted == ["b"]
        cache.put("e", _array_of(200))
        assert evicted == ["b", "c", "a"]
        assert set(cache.keys()) == {"d", "e"}

    def test_counters_match_exact_counts(self):
        cache = LRUByteCache(budget=250)
        assert cache.get("missing") is None
        cache.put("x", _array_of(100))
        cache.get("x")
        cache.get("x")
        cache.get("y")
        cache.put("z", _array_of(200))  # evicts x
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["resident_bytes"] == 200
        assert stats["entries"] == 1

    def test_resident_never_exceeds_budget_after_any_operation(self):
        rng = np.random.default_rng(0)
        budget = 500
        cache = LRUByteCache(budget=budget)
        shadow_max = 0
        for step in range(200):
            op = rng.integers(0, 3)
            key = int(rng.integers(0, 12))
            if op == 0:
                cache.put(key, _array_of(int(rng.integers(1, 400))))
            elif op == 1:
                cache.get(key)
            else:
                cache.discard(key)
            assert cache.resident_bytes <= budget
            shadow_max = max(shadow_max, cache.resident_bytes)
        assert shadow_max > 0  # the sequence exercised real residency

    def test_budget_zero_admits_nothing_but_returns_values(self):
        cache = LRUByteCache(budget=0)
        cache.put("a", _array_of(10))
        assert len(cache) == 0
        assert cache.resident_bytes == 0
        assert cache.evictions == 1

    def test_oversized_entry_evicted_immediately(self):
        cache = LRUByteCache(budget=50)
        cache.put("big", _array_of(100))
        assert "big" not in cache
        assert cache.resident_bytes == 0

    def test_shrinking_budget_evicts_eagerly(self):
        cache = LRUByteCache(budget=None)
        cache.put("a", _array_of(100))
        cache.put("b", _array_of(100))
        cache.budget = 100
        assert list(cache.keys()) == ["b"]  # LRU-first eviction
        assert cache.resident_bytes == 100

    def test_unevictable_and_zero_byte_entries_survive(self):
        cache = LRUByteCache(budget=100)
        cache.put("pinned", _array_of(80), evictable=False)
        cache.put("alias", object(), nbytes=0)
        cache.put("victim", _array_of(80))
        assert "pinned" in cache and "alias" in cache
        assert "victim" not in cache
        # Non-evictable residency may exceed the budget; nothing loops.
        cache.put("pinned2", _array_of(80), evictable=False)
        assert cache.resident_bytes == 160

    def test_replacing_an_entry_adjusts_residency(self):
        cache = LRUByteCache(budget=None)
        cache.put("k", _array_of(100))
        cache.put("k", _array_of(30))
        assert cache.resident_bytes == 30
        cache.discard("k")
        assert cache.resident_bytes == 0

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            LRUByteCache(budget=-1)

    def test_nbytes_of_accounts_sparse_and_containers(self):
        matrix = sp.csr_matrix(np.eye(4))
        expected = (
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )
        assert nbytes_of(matrix) == expected
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80
        assert nbytes_of([np.zeros(4, dtype=np.uint8), np.zeros(6, dtype=np.uint8)]) == 10
        assert nbytes_of({"a": np.zeros(3, dtype=np.uint8)}) == 3
        assert nbytes_of(True) > 0

    def test_engine_stats_counters_are_exact(self):
        hin = dblp_like_hin(6)
        engine = CommutingEngine(hin)
        baseline = engine.stats()
        assert baseline["hits"] == baseline["misses"] == 0
        engine.counts(APA)   # miss: ("A","P","A") + the two len-2 aliases
        first = engine.stats()
        assert first["misses"] > 0 and first["hits"] == 0
        engine.counts(APA)   # pure hit
        second = engine.stats()
        assert second["hits"] == first["hits"] + 1
        assert second["misses"] == first["misses"]
        assert second["resident_bytes"] > 0
        assert second["evictions"] == 0
        engine.invalidate()
        cleared = engine.stats()
        assert cleared["hits"] == cleared["misses"] == 0
        assert cleared["resident_bytes"] == 0

    def test_engine_resident_bytes_respects_budget_during_pipeline(self):
        budget = 16 * 1024
        hin = dblp_like_hin(8)
        engine = CommutingEngine(hin, memory_budget=budget)
        for metapath in (APA, APCPA, APAPA):
            engine.similarity(metapath, "pathsim")
            assert engine.stats()["resident_bytes"] <= budget
            engine.top_k(metapath, 3)
            assert engine.stats()["resident_bytes"] <= budget
        assert engine.stats()["evictions"] > 0


# ---------------------------------------------------------------------- #
# 4. Weak engine registry
# ---------------------------------------------------------------------- #


class TestEngineRegistry:
    def test_engine_dies_with_its_hin(self):
        """Regression: the registry must not outlive-pin dropped HINs."""
        hin = dblp_like_hin(0)
        engine = get_engine(hin)
        engine.counts(APCPA)  # pin some real state
        engine_ref = weakref.ref(engine)
        hin_ref = weakref.ref(hin)
        del engine
        del hin
        gc.collect()  # engine <-> LRU callback form a cycle; collect it
        assert hin_ref() is None
        assert engine_ref() is None

    def test_directly_constructed_engine_pins_its_hin(self):
        """The pre-registry contract survives: an engine built from a
        temporary HIN keeps the graph alive for its own lifetime."""
        engine = CommutingEngine(dblp_like_hin(0))  # no other HIN ref
        gc.collect()
        assert engine.counts(APCPA).nnz > 0  # no ReferenceError

    def test_release_engine_forgets_the_shared_instance(self):
        hin = dblp_like_hin(0)
        first = get_engine(hin)
        release_engine(hin)
        second = get_engine(hin)
        assert second is not first
        release_engine(hin)  # idempotent on an absent entry

    def test_get_engine_is_shared_and_configurable(self):
        hin = dblp_like_hin(0)
        engine = get_engine(hin)
        assert get_engine(hin) is engine
        assert engine.memory_budget is None
        # Reconfiguring through get_engine touches the shared instance...
        assert get_engine(hin, memory_budget=1024) is engine
        assert engine.memory_budget == 1024
        # ...and omitting the knobs leaves it untouched.
        assert get_engine(hin).memory_budget == 1024


# ---------------------------------------------------------------------- #
# 5. Cost-aware eviction (GreedyDual-Size)
# ---------------------------------------------------------------------- #


class TestCostAwareEviction:
    def test_zero_costs_reproduce_exact_lru(self):
        """The historical policy is the cost=0 degenerate case."""
        evicted = []
        cache = LRUByteCache(budget=200, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", _array_of(100))
        cache.put("b", _array_of(100))
        cache.get("a")
        cache.put("c", _array_of(100))  # b is LRU -> evicted
        assert evicted == ["b"]

    def test_expensive_entry_survives_cheap_recency(self):
        """A costly product outlives fresher cheap entries under pressure."""
        evicted = []
        cache = LRUByteCache(budget=300, on_evict=lambda k, v: evicted.append(k))
        cache.put("expensive", _array_of(100), cost=10.0)
        cache.put("cheap1", _array_of(100))
        cache.put("cheap2", _array_of(100))
        # Pure LRU would evict "expensive" (least recent); cost keeps it.
        cache.put("cheap3", _array_of(100))
        assert evicted == ["cheap1"]
        cache.put("cheap4", _array_of(100))
        assert evicted == ["cheap1", "cheap2"]
        assert "expensive" in cache

    def test_costly_entries_age_out_eventually(self):
        """GDS aging: the clock rises with evictions, so a stale costly
        entry cannot pin the cache forever."""
        cache = LRUByteCache(budget=200)
        cache.put("old-costly", _array_of(100), cost=5e-4)  # 5e-6 per byte
        survived_rounds = 0
        for round_id in range(8):
            cache.put(f"fresh{round_id}", _array_of(100), cost=2e-4)
            if "old-costly" in cache:
                survived_rounds = round_id + 1
        # It outlives several cheap generations (cost protection)...
        assert survived_rounds >= 3
        # ...but the eviction clock eventually catches up (aging).
        assert "old-costly" not in cache

    def test_engine_records_compose_costs(self):
        hin = dblp_like_hin(0)
        engine = get_engine(hin)
        engine.invalidate()
        engine.counts(APCPA)
        key = tuple(APCPA.node_types)
        assert key in engine.compose_seconds
        assert engine.compose_seconds[key] >= 0.0
        release_engine(hin)

    @pytest.mark.parametrize("budget", (0, 4096))
    def test_cost_weighting_stays_bit_exact_under_eviction(self, budget):
        """Cost-aware victim choice changes *what* is evicted, never the
        answers: every view matches the unlimited-budget engine."""
        hin = dblp_like_hin(3)
        reference = CommutingEngine(hin)
        budgeted = CommutingEngine(hin, memory_budget=budget)
        for metapath in (APA, APCPA, APAPA):
            assert_csr_identical(
                budgeted.counts(metapath), reference.counts(metapath)
            )
            assert_csr_identical(
                budgeted.similarity(metapath, "pathsim"),
                reference.similarity(metapath, "pathsim"),
            )


# ---------------------------------------------------------------------- #
# 6. Concurrent-writer dedupe (claim protocol)
# ---------------------------------------------------------------------- #


class TestClaimProtocol:
    KEY = ("A", "P", "C", "P", "A")

    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = ProductStore(tmp_path)
        assert store.acquire_claim("hash", self.KEY)
        assert not store.acquire_claim("hash", self.KEY)
        store.release_claim("hash", self.KEY)
        assert store.acquire_claim("hash", self.KEY)
        store.release_claim("hash", self.KEY)

    def test_claims_are_per_product(self, tmp_path):
        store = ProductStore(tmp_path)
        assert store.acquire_claim("hash", self.KEY)
        assert store.acquire_claim("hash", ("A", "P", "A"))
        assert store.acquire_claim("other-hash", self.KEY)

    def test_stale_claim_is_broken(self, tmp_path):
        import os

        store = ProductStore(tmp_path, claim_ttl=10.0)
        assert store.acquire_claim("hash", self.KEY)
        claim = store.claim_path_for("hash", self.KEY)
        old = claim.stat().st_mtime - 60.0
        os.utime(claim, (old, old))
        assert store.acquire_claim("hash", self.KEY)  # broke the stale lease

    def test_wait_for_returns_product_written_by_holder(self, tmp_path):
        import threading

        hin = dblp_like_hin(1)
        matrix = CommutingEngine(hin).counts(APCPA)
        content_hash = hin_content_hash(hin)
        store = ProductStore(tmp_path)
        assert store.acquire_claim(content_hash, self.KEY)

        def writer():
            store.save(content_hash, self.KEY, matrix)
            store.release_claim(content_hash, self.KEY)

        timer = threading.Timer(0.15, writer)
        timer.start()
        try:
            waited = store.wait_for(content_hash, self.KEY, timeout=5.0)
        finally:
            timer.join()
        assert waited is not None
        assert_csr_identical(waited, matrix)

    def test_wait_for_gives_up_on_dead_writer(self, tmp_path):
        store = ProductStore(tmp_path, claim_ttl=0.1)
        assert store.acquire_claim("hash", self.KEY)
        import time as _time

        _time.sleep(0.15)  # let the claim go stale
        assert store.wait_for("hash", self.KEY, timeout=5.0) is None

    def test_engine_waits_instead_of_composing(self, tmp_path):
        """A worker that loses the claim race loads the winner's product
        and composes nothing."""
        import threading

        hin = dblp_like_hin(2)
        content_hash = hin_content_hash(hin)
        key = tuple(APCPA.node_types)
        expected = CommutingEngine(hin).counts(APCPA)

        engine = CommutingEngine(hin, cache_dir=str(tmp_path))
        store = engine._store
        assert store.acquire_claim(content_hash, key)  # simulate a peer

        def peer_finishes():
            store.save(content_hash, key, expected)
            store.release_claim(content_hash, key)

        timer = threading.Timer(0.15, peer_finishes)
        timer.start()
        try:
            result = engine.counts(APCPA)
        finally:
            timer.join()
        assert_csr_identical(result, expected)
        assert key not in engine.compose_log  # waited, never multiplied
        assert engine.claim_waits == 1
        assert engine.stats()["claim_waits"] == 1

    def test_engine_composes_after_peer_dies(self, tmp_path):
        """A stale claim (crashed peer) never deadlocks composition."""
        hin = dblp_like_hin(2)
        content_hash = hin_content_hash(hin)
        key = tuple(APCPA.node_types)
        engine = CommutingEngine(
            hin, cache_dir=str(tmp_path)
        )
        engine._store.claim_ttl = 0.1
        assert engine._store.acquire_claim(content_hash, key)
        import time as _time

        _time.sleep(0.15)
        result = engine.counts(APCPA)
        assert result.nnz > 0
        assert key in engine.compose_log  # fell back to composing itself

    def test_parallel_engines_compose_each_product_once(self, tmp_path):
        """Two workers over one store: every product is multiplied by
        exactly one of them (modulo the benign both-miss-then-claim race,
        which the barrier below removes)."""
        import threading

        results = {}

        def worker(name, barrier):
            hin = dblp_like_hin(4)  # same content -> same hash
            engine = CommutingEngine(hin, cache_dir=str(tmp_path))
            barrier.wait()
            if name == "late":
                import time as _time

                _time.sleep(0.05)  # guarantee the peer claims first
            matrix = engine.counts(APCPA)
            results[name] = (matrix, list(engine.compose_log))

        barrier = threading.Barrier(2)
        threads = [
            threading.Thread(target=worker, args=(name, barrier))
            for name in ("early", "late")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert_csr_identical(results["early"][0], results["late"][0])
        composed = [
            key for _, log in results.values() for key in log
            if key == tuple(APCPA.node_types)
        ]
        assert len(composed) == 1  # once per cluster, not once per worker
