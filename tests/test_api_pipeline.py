"""The staged pipeline: typed artifacts, content keys, and resume.

Covers the `repro.api` acceptance contract:

- **Resume**: a second run over an unchanged dataset + config skips all
  prep stages (the compose spy asserts zero products composed) and
  reproduces predictions bit-exactly.
- **Artifact round-trips**: every stage artifact reloads bit-identical
  to the in-memory original; corrupt files read as misses.
- **Warm-store skip**: with stage artifacts gone but the product store
  warm, rerunning still composes zero products.
- **Keys**: config fingerprints are stage-scoped and cumulative (a `k`
  change invalidates enumeration but not composition).
- **Back-compat**: the legacy `prepare_conch_data` / `ConCHTrainer`
  quickstart works verbatim through the deprecation shim.
"""

import numpy as np
import pytest

from repro.api import Pipeline, default_config
from repro.api.artifacts import (
    ArtifactStore,
    ContextSet,
    FeatureSet,
    MetaPathPlan,
    config_fingerprint,
    stage_key,
)
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.engine import get_engine


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(autouse=True)
def _fresh_engine(dblp_tiny):
    """Each test starts from a cold, store-less engine."""
    engine = get_engine(dblp_tiny.hin)
    engine.set_cache_dir(None)
    engine.invalidate()
    yield
    engine.set_cache_dir(None)
    engine.invalidate()


class TestStagedPrep:
    def test_stage_order_and_log(self, dblp_tiny, tiny_config, tmp_path):
        pipe = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        pipe.prepare()
        stages = [event.stage for event in pipe.stage_log]
        assert stages == ["discover", "compose", "enumerate", "featurize"]
        assert all(event.action == "computed" for event in pipe.stage_log)

    def test_staged_prep_is_deterministic(self, dblp_tiny, tiny_config):
        data_a = Pipeline(dblp_tiny, config=tiny_config).prepare()
        get_engine(dblp_tiny.hin).invalidate()
        data_b = Pipeline(dblp_tiny, config=tiny_config).prepare()
        for m_a, m_b in zip(data_a.metapath_data, data_b.metapath_data):
            assert np.array_equal(m_a.context_features, m_b.context_features)
            assert (m_a.incidence != m_b.incidence).nnz == 0
            assert (m_a.neighbor_adj != m_b.neighbor_adj).nnz == 0

    def test_compose_stage_records_every_metapath(self, dblp_tiny, tiny_config):
        pipe = Pipeline(dblp_tiny, config=tiny_config)
        report = pipe.compose()
        assert len(report.product_keys) == len(dblp_tiny.metapaths)
        assert report.composed > 0
        assert all(n > 0 for n in report.nnz)

    def test_discovery_source(self, dblp_tiny, tiny_config):
        pipe = Pipeline(
            dblp_tiny, config=tiny_config, discover_source="discovery"
        )
        plan = pipe.discover()
        assert plan.source == "discovery"
        assert plan.names  # the DBLP schema yields symmetric candidates
        with pytest.raises(ValueError):
            Pipeline(dblp_tiny, discover_source="nope")


class TestResume:
    def test_second_run_skips_all_stages_and_is_bit_exact(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
        first = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        est_first = first.fit(split=split)
        pred_first = est_first.predict()
        proba_first = est_first.predict_proba()

        # Fresh process simulation: cold memory, same store.
        engine = get_engine(dblp_tiny.hin)
        engine.invalidate()
        second = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        est_second = second.fit(split=split)

        actions = {e.stage: e.action for e in second.stage_log}
        assert actions == {
            "discover": "loaded", "featurize": "loaded", "fit": "loaded",
        }
        # The compose spy: nothing was multiplied on the resumed run.
        assert engine.compose_log == []
        assert np.array_equal(pred_first, est_second.predict())
        assert np.array_equal(proba_first, est_second.predict_proba())

    def test_warm_product_store_alone_composes_zero(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        first = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        first.prepare()
        # Drop the stage artifacts but keep the composed products: every
        # stage re-runs, yet the engine multiplies nothing.
        for artifact in (tmp_path / "artifacts").iterdir():
            artifact.unlink()
        engine = get_engine(dblp_tiny.hin)
        engine.invalidate()
        second = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        second.prepare()
        assert all(e.action == "computed" for e in second.stage_log)
        assert engine.compose_log == []
        assert engine.disk_hits > 0

    def test_supplied_embeddings_never_poison_the_store(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        """Features built from caller-supplied embeddings are outside the
        content key: they must not be stored under (or later satisfy)
        the canonical featurize/fit keys."""
        from repro.embedding.metapath2vec import metapath2vec_embeddings

        custom = metapath2vec_embeddings(
            dblp_tiny.hin, dblp_tiny.metapaths, dim=8,
            num_walks=1, walk_length=6, epochs=1, seed=99,
        )
        split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
        off_key = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        off_key.prepare(embeddings=custom)
        off_key.fit(split=split)
        get_engine(dblp_tiny.hin).invalidate()
        canonical = Pipeline(
            dblp_tiny, config=tiny_config, store_dir=tmp_path
        )
        canonical.fit(split=split)
        actions = {e.stage: e.action for e in canonical.stage_log}
        # Upstream stages are embedding-independent and may reload;
        # featurize and fit must recompute canonically.
        assert actions["featurize"] == "computed"
        assert actions["fit"] == "computed"

    def test_memo_honors_fresh_embeddings_argument(
        self, dblp_tiny, tiny_config
    ):
        from repro.embedding.metapath2vec import metapath2vec_embeddings

        pipe = Pipeline(dblp_tiny, config=tiny_config)
        canonical = pipe.prepare()
        custom = metapath2vec_embeddings(
            dblp_tiny.hin, dblp_tiny.metapaths, dim=8,
            num_walks=1, walk_length=6, epochs=1, seed=99,
        )
        recomputed = pipe.prepare(embeddings=custom)
        assert not np.array_equal(
            canonical.metapath_data[0].context_features,
            recomputed.metapath_data[0].context_features,
        )

    def test_config_change_invalidates_downstream_only(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        base = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        base.prepare()
        get_engine(dblp_tiny.hin).invalidate()
        changed = Pipeline(
            dblp_tiny,
            config=tiny_config.with_overrides(k=4),
            store_dir=tmp_path,
        )
        changed.prepare()
        actions = {e.stage: e.action for e in changed.stage_log}
        # k does not key discover/compose, so those reload; enumeration
        # and featurization recompute under the new fingerprint.
        assert actions["discover"] == "loaded"
        assert actions["compose"] == "loaded"
        assert actions["enumerate"] == "computed"
        assert actions["featurize"] == "computed"


class TestContentKeys:
    def test_fingerprints_are_stage_scoped(self):
        config = ConCHConfig()
        assert config_fingerprint(config, "enumerate") != config_fingerprint(
            config.with_overrides(k=7), "enumerate"
        )
        # k is not a compose-stage field.
        assert config_fingerprint(config, "compose") == config_fingerprint(
            config.with_overrides(k=7), "compose"
        )
        # ...but strategy is, and it cascades into enumerate.
        assert config_fingerprint(config, "compose") != config_fingerprint(
            config.with_overrides(neighbor_strategy="hetesim"), "compose"
        )
        # Training-only fields key only the fit stage.
        assert config_fingerprint(config, "featurize") == config_fingerprint(
            config.with_overrides(epochs=1), "featurize"
        )
        assert config_fingerprint(config, "fit") != config_fingerprint(
            config.with_overrides(epochs=1), "fit"
        )

    def test_stage_key_covers_content_hash(self):
        config = ConCHConfig()
        assert stage_key("aaa", config, "enumerate") != stage_key(
            "bbb", config, "enumerate"
        )
        with pytest.raises(KeyError):
            stage_key("aaa", config, "unknown-stage")


class TestArtifactRoundTrips:
    def test_context_set_round_trip(self, dblp_tiny, tiny_config, tmp_path):
        pipe = Pipeline(dblp_tiny, config=tiny_config)
        context_set = pipe.enumerate()
        path = tmp_path / "ctx.npz"
        context_set.save(path)
        loaded = ContextSet.load(path)
        assert loaded is not None and loaded.key == context_set.key
        for i in range(context_set.num_metapaths):
            assert np.array_equal(loaded.pairs[i], context_set.pairs[i])
            assert np.array_equal(
                loaded.instance_ids[i], context_set.instance_ids[i]
            )
            assert np.array_equal(loaded.indptr[i], context_set.indptr[i])
            assert np.array_equal(
                loaded.total_counts[i], context_set.total_counts[i]
            )
            assert np.array_equal(
                loaded.truncated[i], context_set.truncated[i]
            )

    def test_feature_set_round_trip_rebuilds_identical_data(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        pipe = Pipeline(dblp_tiny, config=tiny_config)
        data = pipe.prepare()
        feature_set = pipe.featurize()
        path = tmp_path / "feat.npz"
        feature_set.save(path)
        loaded = FeatureSet.load(path)
        assert loaded is not None
        rebuilt = loaded.to_conch_data(dblp_tiny)
        for m_a, m_b in zip(data.metapath_data, rebuilt.metapath_data):
            assert m_a.metapath.name == m_b.metapath.name
            assert np.array_equal(m_a.context_features, m_b.context_features)
            assert (m_a.incidence != m_b.incidence).nnz == 0
            assert (m_a.neighbor_adj != m_b.neighbor_adj).nnz == 0
            assert m_a.truncated_contexts == m_b.truncated_contexts

    def test_nc_mode_context_set_round_trip(self, dblp_tiny, tmp_path):
        config = ConCHConfig(k=3, use_contexts=False)
        pipe = Pipeline(dblp_tiny, config=config)
        context_set = pipe.enumerate()
        assert all(ids is None for ids in context_set.instance_ids)
        path = tmp_path / "ctx-nc.npz"
        context_set.save(path)
        loaded = ContextSet.load(path)
        assert loaded is not None
        assert all(ids is None for ids in loaded.instance_ids)
        assert np.array_equal(loaded.pairs[0], context_set.pairs[0])

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = MetaPathPlan(
            key="deadbeef", node_types=[("A", "P", "A")], names=["APA"]
        )
        path = store.put(plan)
        assert store.get("discover", "deadbeef") is not None
        path.write_bytes(b"not an archive")
        assert store.get("discover", "deadbeef") is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        plan = MetaPathPlan(
            key="deadbeef", node_types=[("A", "P", "A")], names=["APA"]
        )
        store.put(plan)
        # A file renamed under another key must not satisfy that key.
        store.path_for("discover", "deadbeef").rename(
            store.path_for("discover", "cafebabe")
        )
        assert store.get("discover", "cafebabe") is None


class TestLegacyShim:
    def test_old_quickstart_verbatim(self, dblp_tiny):
        """The pre-pipeline quickstart, exactly as documented."""
        from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data

        dataset = dblp_tiny
        split = stratified_split(dataset.labels, train_fraction=0.2)
        config = ConCHConfig(
            epochs=8, k=3, num_layers=2, context_dim=8,
            embed_num_walks=2, embed_walk_length=8, embed_epochs=1,
        )
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        scores = trainer.evaluate(split.test)
        assert set(scores) == {"micro_f1", "macro_f1"}
        assert 0.0 <= scores["micro_f1"] <= 1.0

    def test_shim_matches_staged_prep_bit_exactly(self, dblp_tiny, tiny_config):
        from repro.core import prepare_conch_data

        legacy = prepare_conch_data(dblp_tiny, tiny_config)
        get_engine(dblp_tiny.hin).invalidate()
        staged = Pipeline(dblp_tiny, config=tiny_config).prepare()
        for m_a, m_b in zip(legacy.metapath_data, staged.metapath_data):
            assert np.array_equal(m_a.context_features, m_b.context_features)
            assert (m_a.incidence != m_b.incidence).nnz == 0

    def test_shim_still_honors_cache_config(self, dblp_tiny, tiny_config, tmp_path):
        from repro.core import prepare_conch_data

        config = tiny_config.with_overrides(cache_dir=str(tmp_path / "store"))
        data = prepare_conch_data(dblp_tiny, config)
        assert data.substrate_stats["spills"] > 0  # wrote through to disk


class TestDefaultConfig:
    def test_registered_dataset_defaults(self):
        config = default_config("dblp")
        assert (config.k, config.num_layers) == (5, 2)
        yelp = default_config("yelp", epochs=7)
        assert (yelp.k, yelp.epochs) == (10, 7)

    def test_unregistered_name_falls_back(self):
        config = default_config("custom-hin")
        assert config.k == ConCHConfig().k


class TestStageClaimDedupe:
    """Pipeline-level claim dedupe: two cold workers sharing a store
    never both pay a stage — one computes, the other waits and loads
    the write-through (`ArtifactStore.claim` / `Pipeline._claimed_compute`,
    the product store's claim protocol extended to whole stages)."""

    def test_waiter_loads_the_winners_featurize(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        # Worker A computes everything and releases its claims.
        first = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        first.prepare()

        # Simulate worker B arriving while a (fake) worker holds the
        # featurize claim: B must *wait*, then serve A's artifact —
        # not recompute.  The artifact is temporarily hidden so B's
        # plain load misses and the claim path is actually exercised.
        second = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        key = second._key(
            "featurize", extra=second.discover().plan_fingerprint()
        )
        path = second.store.path_for("featurize", key)
        hidden = path.with_name("hidden.npz")
        path.rename(hidden)
        claim = second.store.claim("featurize", key)
        assert claim.acquire()

        import threading

        def writer():
            # The "winner" finishes its write-through, then releases.
            hidden.rename(path)
            claim.release()

        timer = threading.Timer(0.2, writer)
        timer.start()
        try:
            feature_set = second.featurize()
        finally:
            timer.cancel()
        actions = {e.stage: e.action for e in second.stage_log}
        assert actions["featurize"] == "waited"
        assert feature_set.key == key
        reference = first.featurize()
        for left, right in zip(
            feature_set.context_features, reference.context_features
        ):
            np.testing.assert_array_equal(left, right)

    def test_stale_claim_falls_back_to_computing(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        """A crashed writer's claim must never deadlock the cluster:
        after the TTL the waiter computes the stage itself."""
        pipe = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        pipe.store.claim_ttl = 0.2  # fast lease expiry for the test
        key = pipe._key("discover", extra="dataset|" + ";".join(
            "-".join(m.node_types) for m in dblp_tiny.metapaths
        ))
        claim = pipe.store.claim("discover", key)
        assert claim.acquire()  # the "crashed" writer: never releases
        plan = pipe.discover()  # waits ~ttl, then computes
        assert plan.names
        actions = {e.stage: e.action for e in pipe.stage_log}
        assert actions["discover"] == "computed"

    def test_fit_stage_waiter_loads_winner_bundle(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
        first = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        trained = first.fit(split=split)

        second = Pipeline(dblp_tiny, config=tiny_config, store_dir=tmp_path)
        feature_set = second.featurize()
        from repro.api.artifacts import split_hash, supervision_hash

        key = second._key(
            "fit",
            extra=f"{feature_set.key}|{split_hash(split)}"
                  f"|{supervision_hash(dblp_tiny)}",
        )
        path = second.store.path_for("fit", key)
        hidden = path.with_name("hidden-fit.npz")
        path.rename(hidden)
        claim = second.store.claim("fit", key)
        assert claim.acquire()

        import threading

        timer = threading.Timer(
            0.2, lambda: (hidden.rename(path), claim.release())
        )
        timer.start()
        try:
            estimator = second.fit(split=split)
        finally:
            timer.cancel()
        actions = [e for e in second.stage_log if e.stage == "fit"]
        assert actions[-1].action == "waited"
        np.testing.assert_array_equal(
            estimator.predict(split.test), trained.predict(split.test)
        )

    def test_store_level_artifact_wait_api(self, tmp_path):
        """`ArtifactStore.wait_for` returns the artifact the moment the
        claim holder writes it (the primitive the pipeline builds on)."""
        store = ArtifactStore(tmp_path)
        plan = MetaPathPlan(
            key="k1", node_types=[("A", "P", "A")], names=["APA"]
        )
        claim = store.claim("discover", "k1")
        assert claim.acquire()

        import threading

        timer = threading.Timer(
            0.15, lambda: (store.put(plan), claim.release())
        )
        timer.start()
        try:
            loaded = store.wait_for("discover", "k1", timeout=5.0)
        finally:
            timer.cancel()
        assert loaded is not None and loaded.names == ["APA"]
        # And an unclaimed, unwritten key times out to None (caller
        # computes itself).
        assert store.wait_for("discover", "nope", timeout=0.1) is None


    def test_live_holder_outlasting_ttl_is_waited_on(self, tmp_path):
        """A holder that heartbeats its lease past the TTL keeps waiters
        waiting (no duplicate compute); only a *dead* holder expires."""
        import threading
        import time as _time

        from repro.hin.cache import ClaimFile

        claim = ClaimFile(tmp_path / "stage.claim", ttl=0.3)
        assert claim.acquire()
        result_path = tmp_path / "result.txt"

        def holder():
            with claim.keepalive(interval=0.05):
                _time.sleep(0.8)  # well past the 0.3s TTL
                result_path.write_text("done")
            claim.release()

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            waiter = ClaimFile(tmp_path / "stage.claim", ttl=0.3)
            value = waiter.wait(
                lambda: result_path.read_text()
                if result_path.exists() else None,
                poll_interval=0.02,
            )
        finally:
            thread.join()
        assert value == "done"  # waited through 2.5x TTL, no fallback
