"""Tests for HIN diagnostics (hin.analysis) and explanations (core.explain)."""

import numpy as np
import pytest

from repro.core import ConCHConfig, ConCHTrainer, prepare_conch_data
from repro.core.explain import Explanation, explain_node
from repro.data import DBLPConfig, FreebaseConfig, load_dataset, stratified_split
from repro.hin import MetaPath
from repro.hin.analysis import dataset_report, label_homophily, metapath_stats
from tests.test_hin_graph import movie_hin


class TestMetaPathStats:
    def test_fig1_example_values(self):
        hin = movie_hin()
        hin.set_labels("M", np.array([0, 0, 1, 1]))
        stats = metapath_stats(hin, MetaPath.parse("MAM"))
        # Every movie has at least one MAM neighbor.
        assert stats.coverage == 1.0
        # Binary MAM projection: M1-M2, M1-M3, M1-M4, M2-M3, M2-M4 (sym).
        assert stats.mean_degree == pytest.approx(10 / 4)
        # Same-label connected pairs: (M1,M2) and (M3? M3-M4 not connected).
        # Pairs (directed): 12,13,14,21,23,24,31,32,41,42 -> same: 12,21,34? no.
        assert 0.0 <= stats.homophily <= 1.0
        assert stats.mean_instances_per_pair >= 1.0

    def test_pathsim_homophily_bounds(self):
        hin = movie_hin()
        hin.set_labels("M", np.array([0, 0, 1, 1]))
        stats = metapath_stats(hin, MetaPath.parse("MAM"))
        assert 0.0 <= stats.pathsim_homophily <= 1.0

    def test_explicit_labels_override(self):
        hin = movie_hin()
        stats = metapath_stats(
            hin, MetaPath.parse("MAM"), labels=np.array([0, 0, 0, 0])
        )
        assert stats.homophily == 1.0

    def test_label_homophily_shortcut(self):
        hin = movie_hin()
        hin.set_labels("M", np.array([0, 0, 0, 0]))
        assert label_homophily(hin, MetaPath.parse("MAM")) == 1.0

    def test_generator_semantics_dblp(self):
        """APA should have lower coverage (sparser) than APCPA."""
        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(num_authors=80, num_papers=260, num_conferences=8),
        )
        apa = metapath_stats(dataset.hin, dataset.metapaths[0])
        apcpa = metapath_stats(dataset.hin, dataset.metapaths[2])
        assert apcpa.mean_degree > apa.mean_degree

    def test_dataset_report_renders(self):
        dataset = load_dataset(
            "freebase",
            config=FreebaseConfig(
                num_movies=40, num_actors=120, num_directors=25, num_producers=40
            ),
        )
        report = dataset_report(dataset)
        assert "freebase" in report
        for metapath in dataset.metapaths:
            assert metapath.name in report


class TestExplainNode:
    @pytest.fixture(scope="class")
    def fitted(self):
        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(num_authors=80, num_papers=260, num_conferences=8),
        )
        config = ConCHConfig(
            epochs=25, patience=25, k=3, num_layers=1, context_dim=16,
            hidden_dim=16, out_dim=16, lr=0.01,
            embed_num_walks=3, embed_walk_length=15, embed_epochs=1,
        )
        split = stratified_split(dataset.labels, 0.2, seed=0)
        data = prepare_conch_data(dataset, config)
        trainer = ConCHTrainer(data, config).fit(split)
        trainer.data = data  # explain_node reads trainer.data
        return dataset, trainer

    def test_explanation_structure(self, fitted):
        dataset, trainer = fitted
        explanation = explain_node(trainer, dataset, node=0, max_neighbors=3)
        assert isinstance(explanation, Explanation)
        assert explanation.node == 0
        assert 0 <= explanation.predicted_label < dataset.num_classes
        assert len(explanation.evidence) == len(dataset.metapaths)
        attention_total = sum(e.attention_weight for e in explanation.evidence)
        assert attention_total == pytest.approx(1.0, abs=1e-6)

    def test_neighbors_sorted_by_pathsim(self, fitted):
        dataset, trainer = fitted
        explanation = explain_node(trainer, dataset, node=1, max_neighbors=5)
        for evidence in explanation.evidence:
            scores = [n.pathsim for n in evidence.neighbors]
            assert scores == sorted(scores, reverse=True)

    def test_instances_connect_the_pair(self, fitted):
        dataset, trainer = fitted
        explanation = explain_node(trainer, dataset, node=2, max_neighbors=2)
        for evidence in explanation.evidence:
            for item in evidence.neighbors:
                for instance in item.instances:
                    assert instance[0] in (2, item.neighbor)
                    assert instance[-1] in (2, item.neighbor)

    def test_render(self, fitted):
        dataset, trainer = fitted
        explanation = explain_node(trainer, dataset, node=0)
        text = explanation.render(class_names=dataset.class_names)
        assert "node 0" in text
        assert any(mp.name in text for mp in dataset.metapaths)

    def test_out_of_range(self, fitted):
        dataset, trainer = fitted
        with pytest.raises(IndexError):
            explain_node(trainer, dataset, node=10_000)
