"""Tests for meta-graphs (conjunctive meta-path stages)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hin import HIN, MetaPath
from repro.hin.adjacency import metapath_adjacency
from repro.hin.metagraph import (
    MetaGraph,
    metagraph_adjacency,
    metagraph_binary_adjacency,
    metagraph_pathsim,
    top_k_metagraph_neighbors,
)
from repro.hin.pathsim import pathsim_matrix
from tests.test_hin_graph import movie_hin

MAM = MetaPath.parse("MAM")
MDM = MetaPath.parse("MDM")
MPM = MetaPath.parse("MPM")


class TestConstruction:
    def test_name_rendering(self):
        assert MetaGraph([[MAM, MDM]]).name == "(MAM&MDM)"
        assert MetaGraph([[MAM], [MDM]]).name == "(MAM)>(MDM)"

    def test_custom_name(self):
        assert MetaGraph([[MAM]], name="co-star").name == "co-star"

    def test_endpoints(self):
        graph = MetaGraph([[MAM, MDM]])
        assert graph.source_type == "M"
        assert graph.target_type == "M"
        assert graph.endpoints_match("M")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetaGraph([])
        with pytest.raises(ValueError):
            MetaGraph([[]])

    def test_mismatched_branch_endpoints_rejected(self):
        with pytest.raises(ValueError, match="endpoint"):
            MetaGraph([[MAM, MetaPath.parse("MAD")]])

    def test_non_chaining_stages_rejected(self):
        with pytest.raises(ValueError, match="chain"):
            MetaGraph([[MetaPath.parse("MAD")], [MetaPath.parse("MAM")]])

    def test_equality_and_hash(self):
        assert MetaGraph([[MAM, MDM]]) == MetaGraph([[MAM, MDM]])
        assert hash(MetaGraph([[MAM]])) == hash(MetaGraph([[MAM]]))
        assert MetaGraph([[MAM]]) != MetaGraph([[MDM]])

    def test_symmetry(self):
        assert MetaGraph([[MAM, MDM]]).is_symmetric()
        # Mirrored stage sequence: (MAM)>(MDM)>(MAM) reads the same both ways.
        assert MetaGraph([[MAM], [MDM], [MAM]]).is_symmetric()
        # (MAM)>(MDM) does not: its reverse is (MDM)>(MAM).
        assert not MetaGraph([[MAM], [MDM]]).is_symmetric()
        assert not MetaGraph([[MetaPath.parse("MAD")]]).is_symmetric()

    def test_validate_against_schema(self):
        hin = movie_hin()
        MetaGraph([[MAM, MDM]]).validate(hin.schema())
        with pytest.raises(ValueError):
            MetaGraph([[MetaPath(["M", "X", "M"])]]).validate(hin.schema())


class TestAdjacency:
    def test_single_branch_degenerates_to_metapath(self):
        hin = movie_hin()
        via_graph = metagraph_adjacency(hin, MetaGraph([[MAM]])).toarray()
        via_path = metapath_adjacency(hin, MAM).toarray()
        assert np.allclose(via_graph, via_path)

    def test_conjunction_is_hadamard(self):
        hin = movie_hin()
        conj = metagraph_adjacency(
            hin, MetaGraph([[MAM, MDM]]), remove_self_paths=False
        ).toarray()
        a = metapath_adjacency(hin, MAM, remove_self_paths=False).toarray()
        b = metapath_adjacency(hin, MDM, remove_self_paths=False).toarray()
        assert np.allclose(conj, a * b)

    def test_conjunction_is_subset_of_each_branch(self):
        hin = movie_hin()
        conj = metagraph_binary_adjacency(hin, MetaGraph([[MAM, MPM]])).toarray()
        a = metapath_adjacency(hin, MAM).toarray() > 0
        b = metapath_adjacency(hin, MPM).toarray() > 0
        assert not (conj.astype(bool) & ~(a & b)).any()

    def test_hand_checked_conjunction(self):
        # Fig. 1 graph: M1,M2 share actor A1 AND director D1 — the only
        # movie pair sharing both an actor and a director.
        hin = movie_hin()
        conj = metagraph_binary_adjacency(hin, MetaGraph([[MAM, MDM]])).toarray()
        expected = np.zeros((4, 4))
        expected[0, 1] = expected[1, 0] = 1.0
        expected[2, 3] = expected[3, 2] = 1.0  # M3,M4: actor A? check below
        # M3 stars A1? edges: stars M:[0,1,2,0,1,3] A:[0,0,0,1,1,1] so
        # M3(idx2)-A1(0); M4(idx3)-A2(1).  They share no actor => no edge.
        expected[2, 3] = expected[3, 2] = 0.0
        assert np.allclose(conj, expected)

    def test_staged_composition(self):
        hin = movie_hin()
        staged = metagraph_adjacency(
            hin, MetaGraph([[MAM], [MDM]]), remove_self_paths=False
        ).toarray()
        a = metapath_adjacency(hin, MAM, remove_self_paths=False).toarray()
        b = metapath_adjacency(hin, MDM, remove_self_paths=False).toarray()
        assert np.allclose(staged, a @ b)

    def test_self_paths_removed_by_default(self):
        hin = movie_hin()
        counts = metagraph_adjacency(hin, MetaGraph([[MAM, MDM]]))
        assert np.allclose(counts.diagonal(), 0.0)


class TestPathSim:
    def test_single_branch_matches_metapath_pathsim(self):
        hin = movie_hin()
        via_graph = metagraph_pathsim(hin, MetaGraph([[MAM]])).toarray()
        via_path = pathsim_matrix(hin, MAM).toarray()
        assert np.allclose(via_graph, via_path)

    def test_bounds_and_symmetry(self):
        hin = movie_hin()
        scores = metagraph_pathsim(hin, MetaGraph([[MAM, MDM]]))
        if scores.nnz:
            assert scores.data.min() > 0
            assert scores.data.max() <= 1.0 + 1e-12
        assert abs(scores - scores.T).max() < 1e-12

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            metagraph_pathsim(movie_hin(), MetaGraph([[MetaPath.parse("MAD")]]))


class TestTopK:
    def test_top_k_sizes(self):
        hin = movie_hin()
        lists = top_k_metagraph_neighbors(hin, MetaGraph([[MAM, MDM]]), k=2)
        assert len(lists) == 4
        assert all(entry.size <= 2 for entry in lists)

    def test_bad_k(self):
        with pytest.raises(ValueError):
            top_k_metagraph_neighbors(movie_hin(), MetaGraph([[MAM]]), k=0)
