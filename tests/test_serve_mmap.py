"""The zero-copy (mmap) store tier: equivalence, corruption, accounting.

Four properties of the :mod:`repro.hin.cache` sidecar tier + the engine
integration:

1. **mmap ≡ npz equivalence** — a product loaded through the mapped
   sidecars is bit-identical (structure, values, dtype) to the npz copy.
2. **Corruption handling** — a corrupt/truncated sidecar is silently
   treated as a miss, rebuilt from the npz, and served mapped again; a
   corrupt *npz* is a miss regardless of sidecar health (the archive
   stays the single source of truth), and a rewritten npz invalidates
   old sidecars via its stat identity.
3. **Resident accounting** — mapped entries register ~0 heap bytes in
   the LRU budget (``resident_nbytes``), never get evicted to "free"
   page-cache memory, and the engine's ``stats()`` reports them under
   ``mapped_products`` / ``mapped_bytes``.
4. **Cross-process sharing** — two worker *processes* over one warm
   store dir each compose zero products and serve mmap-backed operators
   (the multi-process smoke test, run via subprocess for isolation).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hin import HIN, MetaPath
from repro.hin.cache import (
    LRUByteCache,
    ProductStore,
    csr_from_components,
    is_mmap_backed,
    load_mmap_arrays,
    nbytes_of,
    resident_nbytes,
    save_mmap_arrays,
)
from repro.hin.engine import CommutingEngine
from repro.hin.io import hin_content_hash

APCPA = MetaPath.parse("APCPA")

KEY = ("A", "P", "C")


def dblp_like_hin(seed: int = 0) -> HIN:
    rng = np.random.default_rng(seed)
    hin = HIN("fixture")
    hin.add_node_type("A", 20)
    hin.add_node_type("P", 40)
    hin.add_node_type("C", 5)
    hin.add_edges(
        "writes", "A", "P",
        rng.integers(0, 20, size=80),
        rng.integers(0, 40, size=80),
    )
    hin.add_edges(
        "published_in", "P", "C",
        np.arange(40),
        rng.integers(0, 5, size=40),
    )
    return hin


def random_csr(seed: int = 0, shape=(13, 9), density: float = 0.3):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape)
    dense[dense > density] = 0.0
    return sp.csr_matrix(dense)


def assert_csr_identical(left, right) -> None:
    left, right = sp.csr_matrix(left), sp.csr_matrix(right)
    assert left.shape == right.shape
    np.testing.assert_array_equal(left.indptr, right.indptr)
    np.testing.assert_array_equal(left.indices, right.indices)
    np.testing.assert_array_equal(left.data, right.data)
    assert left.dtype == right.dtype


def sidecar_files(directory: Path):
    return sorted(directory.glob("product-*.npy"))


# ---------------------------------------------------------------------- #
# 1. mmap ≡ npz equivalence
# ---------------------------------------------------------------------- #


class TestMmapEquivalence:
    def test_mapped_load_is_bit_identical_to_npz(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(3)
        assert store.save("hash-a", KEY, matrix)
        mapped = store.load("hash-a", KEY)
        heap = store.load("hash-a", KEY, mmap=False)
        assert is_mmap_backed(mapped)
        assert not is_mmap_backed(heap)
        assert_csr_identical(mapped, heap)
        assert_csr_identical(mapped, matrix)

    def test_mapped_matrix_is_read_only_but_fully_usable(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(4)
        store.save("hash-a", KEY, matrix)
        mapped = store.load("hash-a", KEY)
        with pytest.raises((ValueError, TypeError)):
            mapped.data[0] = 99.0
        # The read paths the engine and serving tier rely on all work.
        assert mapped.has_sorted_indices
        assert_csr_identical(mapped[np.array([1, 3])], matrix[np.array([1, 3])])
        np.testing.assert_allclose(
            (mapped @ mapped.T).toarray(), (matrix @ matrix.T).toarray()
        )
        copied = mapped.copy()
        copied.data[:] = 1.0  # copies are private and writable

    def test_store_level_mmap_opt_out(self, tmp_path):
        store = ProductStore(tmp_path, mmap=False)
        matrix = random_csr(5)
        store.save("hash-a", KEY, matrix)
        loaded = store.load("hash-a", KEY)
        assert loaded is not None and not is_mmap_backed(loaded)
        assert sidecar_files(tmp_path) == []  # no sidecars ever written

    def test_empty_product_round_trips(self, tmp_path):
        store = ProductStore(tmp_path)
        empty = sp.csr_matrix((7, 4))
        store.save("hash-a", KEY, empty)
        loaded = store.load("hash-a", KEY)
        assert loaded is not None
        assert loaded.nnz == 0 and loaded.shape == (7, 4)


# ---------------------------------------------------------------------- #
# 2. Corruption and staleness
# ---------------------------------------------------------------------- #


class TestCorruption:
    def test_corrupt_sidecar_is_rebuilt_from_npz(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(6)
        store.save("hash-a", KEY, matrix)
        for victim in sidecar_files(tmp_path):
            victim.write_bytes(b"not an npy file")
        recovered = store.load("hash-a", KEY)  # no raise
        assert recovered is not None
        assert_csr_identical(recovered, matrix)
        # ... and the tier healed: the rebuilt sidecars serve mapped.
        assert is_mmap_backed(recovered)
        assert is_mmap_backed(store.load("hash-a", KEY))

    def test_truncated_sidecar_is_a_miss_then_rewritten(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(7, shape=(40, 30))
        store.save("hash-a", KEY, matrix)
        for victim in sidecar_files(tmp_path):
            payload = victim.read_bytes()
            victim.write_bytes(payload[: len(payload) // 2])
        recovered = store.load("hash-a", KEY)
        assert recovered is not None
        assert_csr_identical(recovered, matrix)
        assert is_mmap_backed(store.load("hash-a", KEY))

    def test_corrupt_manifest_is_a_miss_then_rewritten(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(8)
        store.save("hash-a", KEY, matrix)
        for manifest in tmp_path.glob("*.mmap.json"):
            manifest.write_text("{not json")
        recovered = store.load("hash-a", KEY)
        assert recovered is not None and is_mmap_backed(recovered)
        assert_csr_identical(recovered, matrix)

    def test_corrupt_npz_is_a_miss_even_with_healthy_sidecars(self, tmp_path):
        """The npz is the single source of truth: intact sidecars must
        not resurrect a product whose durable archive is gone."""
        store = ProductStore(tmp_path)
        matrix = random_csr(9)
        store.save("hash-a", KEY, matrix)
        store.path_for("hash-a", KEY).write_bytes(b"corrupted beyond repair")
        assert store.load("hash-a", KEY) is None
        assert store.save("hash-a", KEY, matrix)  # rewritten
        assert_csr_identical(store.load("hash-a", KEY), matrix)

    def test_rewritten_npz_invalidates_old_sidecars(self, tmp_path):
        """Stat-identity check: after the archive is atomically replaced
        with a different product, stale sidecars are never served."""
        store = ProductStore(tmp_path)
        old = random_csr(10)
        store.save("hash-a", KEY, old)
        new = random_csr(11)
        assert new.nnz != old.nnz  # genuinely different payloads
        # Re-save through a mmap-blind handle so the sidecars stay stale.
        ProductStore(tmp_path, mmap=False).save("hash-a", KEY, new)
        served = store.load("hash-a", KEY)
        assert_csr_identical(served, new)
        assert is_mmap_backed(served)  # rebuilt, not the stale generation

    def test_manifest_with_wrong_json_shape_is_a_miss(self, tmp_path):
        """A manifest that decodes to the wrong JSON shape (an int, a
        list) must read as a miss, not raise — and heal on reload."""
        store = ProductStore(tmp_path)
        matrix = random_csr(20)
        store.save("hash-a", KEY, matrix)
        for manifest in tmp_path.glob("*.mmap.json"):
            manifest.write_text("3")  # valid JSON, wrong shape
        recovered = store.load("hash-a", KEY)
        assert recovered is not None and is_mmap_backed(recovered)
        assert_csr_identical(recovered, matrix)

    def test_generic_sidecars_reject_mismatched_expected_meta(self, tmp_path):
        save_mmap_arrays(
            tmp_path, "unit", {"x": np.arange(5)}, meta={"owner": "a"}
        )
        assert load_mmap_arrays(tmp_path, "unit", {"owner": "b"}) is None
        loaded = load_mmap_arrays(tmp_path, "unit", {"owner": "a"})
        assert loaded is not None
        meta, arrays = loaded
        assert meta["owner"] == "a"
        np.testing.assert_array_equal(arrays["x"], np.arange(5))


# ---------------------------------------------------------------------- #
# 3. Resident-bytes accounting
# ---------------------------------------------------------------------- #


class TestResidentAccounting:
    def test_resident_nbytes_zero_for_mapped_full_for_heap(self, tmp_path):
        store = ProductStore(tmp_path)
        matrix = random_csr(12)
        store.save("hash-a", KEY, matrix)
        mapped = store.load("hash-a", KEY)
        heap = store.load("hash-a", KEY, mmap=False)
        assert resident_nbytes(mapped) == 0
        assert resident_nbytes(heap) == nbytes_of(heap) > 0
        assert nbytes_of(mapped) == nbytes_of(heap)  # true size unchanged

    def test_csr_from_components_is_zero_copy(self):
        matrix = random_csr(13)
        rebuilt = csr_from_components(
            matrix.data, matrix.indices, matrix.indptr, matrix.shape
        )
        assert rebuilt.data is matrix.data
        assert rebuilt.indices is matrix.indices
        assert rebuilt.indptr is matrix.indptr
        assert rebuilt.has_sorted_indices

    def test_mapped_entries_survive_any_budget(self, tmp_path):
        """A mapped product registers at 0 bytes, so even budget=0 keeps
        it cached — dropping it would free no heap."""
        hin = dblp_like_hin(0)
        warm = CommutingEngine(hin, cache_dir=str(tmp_path))
        warm.counts(APCPA)  # compose + write through

        engine = CommutingEngine(
            hin, cache_dir=str(tmp_path), memory_budget=0
        )
        served = engine.counts(APCPA)
        assert is_mmap_backed(served)
        assert engine.compose_log == []  # loaded, not composed
        stats = engine.stats()
        assert stats["mapped_products"] >= 1
        assert stats["mapped_bytes"] > 0
        assert stats["resident_bytes"] == 0
        # Served again from cache, still zero compositions.
        engine.counts(APCPA)
        assert engine.compose_log == []

    def test_engine_budget_counts_only_heap_bytes(self, tmp_path):
        hin = dblp_like_hin(1)
        warm = CommutingEngine(hin, cache_dir=str(tmp_path))
        warm.counts(APCPA)

        engine = CommutingEngine(hin, cache_dir=str(tmp_path))
        engine.counts(APCPA)
        stats = engine.stats()
        # The product is mapped; only derived heap views may be resident.
        assert stats["mapped_bytes"] > 0
        assert stats["resident_bytes"] < stats["mapped_bytes"] + nbytes_of(
            warm.counts(APCPA)
        )

    def test_lru_cache_never_evicts_zero_byte_entries(self):
        cache = LRUByteCache(budget=10)
        cache.put("mapped", "value", nbytes=0)
        cache.put("heap", np.zeros(100), nbytes=800)
        assert "mapped" in cache
        assert "heap" not in cache  # over budget, evicted
        assert cache.resident_bytes == 0


# ---------------------------------------------------------------------- #
# 4. Cross-process sharing (multi-process smoke test)
# ---------------------------------------------------------------------- #

_WORKER_SCRIPT = """
import json, sys
import numpy as np
from repro.hin import HIN, MetaPath
from repro.hin.cache import is_mmap_backed
from repro.hin.engine import CommutingEngine

rng = np.random.default_rng(0)
hin = HIN("fixture")
hin.add_node_type("A", 20)
hin.add_node_type("P", 40)
hin.add_node_type("C", 5)
hin.add_edges("writes", "A", "P",
              rng.integers(0, 20, size=80), rng.integers(0, 40, size=80))
hin.add_edges("published_in", "P", "C",
              np.arange(40), rng.integers(0, 5, size=40))

engine = CommutingEngine(hin, cache_dir=sys.argv[1])
counts = engine.counts(MetaPath.parse("APCPA"))
print(json.dumps({
    "composed": len(engine.compose_log),
    "mapped": bool(is_mmap_backed(counts)),
    "stats": {k: int(v) for k, v in engine.stats().items()},
    "checksum": float(counts.data.sum()),
}))
"""


class TestCrossProcessSharing:
    def _run_worker(self, store_dir: Path) -> dict:
        result = subprocess.run(
            [sys.executable, "-c", _WORKER_SCRIPT, str(store_dir)],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=Path(__file__).resolve().parent.parent,
        )
        assert result.returncode == 0, result.stderr
        return json.loads(result.stdout.strip().splitlines()[-1])

    def test_two_processes_share_one_store_without_recomposition(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "PYTHONPATH",
            str(Path(__file__).resolve().parent.parent / "src"),
        )
        # Warm the store in this process (the "first worker of the
        # cluster" composes and writes through)...
        hin = dblp_like_hin(0)
        warm = CommutingEngine(hin, cache_dir=str(tmp_path))
        reference = warm.counts(APCPA)
        assert len(warm.compose_log) > 0

        # ... then two fresh worker processes serve from it: zero
        # compositions each, operators mapped, identical payloads.
        first = self._run_worker(tmp_path)
        second = self._run_worker(tmp_path)
        for report in (first, second):
            assert report["composed"] == 0
            assert report["stats"]["composed_products"] == 0
            assert report["mapped"] is True
            assert report["stats"]["mapped_products"] >= 1
            assert report["stats"]["resident_bytes"] == 0
            assert report["checksum"] == pytest.approx(
                float(reference.data.sum())
            )
