"""The serving subsystem: batched equivalence, scheduler, admission.

What must hold:

1. **Request semantics** — empty/duplicate/out-of-range/float id arrays
   behave identically (results *and* error messages) on the sequential
   path, the batched union path, and through the server.
2. **Batched equivalence** — ``forward_many`` / ``predict_nodes_batch``
   answer bit-identically to per-request calls; a bad request in a
   planner batch is answered with its own error without perturbing the
   others.
3. **Server behavior** — concurrent queries through
   :class:`repro.serve.ModelServer` match sequential ``ModelHandle``
   answers bit-exactly; the micro-batcher actually coalesces; the
   bounded queue sheds load with :class:`ServerOverloaded`; stats
   report latency/throughput/batch shape; ``stop`` fails pending work
   instead of wedging callers.
4. **Zero-copy serving** — a bundle loaded mapped answers exactly like
   the heap load, sidecars are rebuilt when the bundle is rewritten,
   and :class:`ProcessReplicaServer` replicas (each mapping the same
   sidecars) agree with the parent.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import api
from repro.api import ConCHEstimator, ModelHandle
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.cache import is_mmap_backed
from repro.serve import (
    BatchPlanner,
    ModelServer,
    ProcessReplicaServer,
    ServeClient,
    ServerOverloaded,
)


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(scope="module")
def bundle_path(dblp_tiny, tiny_config, tmp_path_factory):
    split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
    estimator = ConCHEstimator(
        api.Pipeline(dblp_tiny, config=tiny_config).data, tiny_config
    ).fit(split)
    path = tmp_path_factory.mktemp("bundle") / "conch.npz"
    estimator.save(path)
    return path


@pytest.fixture(scope="module")
def handle(bundle_path):
    return ModelHandle.load(bundle_path)


@pytest.fixture(scope="module")
def heap_handle(bundle_path):
    return ModelHandle.load(bundle_path, mmap=False)


def request_mix(handle, count: int = 24):
    """A deterministic spread of request shapes (sizes 1..5, dups)."""
    rng = np.random.default_rng(7)
    requests = []
    for index in range(count):
        size = 1 + index % 5
        ids = rng.integers(0, handle.num_objects, size=size)
        if index % 3 == 0 and size > 1:
            ids[-1] = ids[0]  # guaranteed duplicate
        requests.append(ids.astype(np.int64))
    return requests


# ---------------------------------------------------------------------- #
# 1. Request semantics
# ---------------------------------------------------------------------- #


class TestRequestSemantics:
    def test_empty_request(self, handle):
        labels = handle.predict_nodes(np.array([], dtype=np.int64))
        assert labels.shape == (0,)
        proba = handle.predict_proba_nodes([])
        assert proba.shape == (0, handle.data.num_classes)

    def test_duplicates_answered_per_slot_in_input_order(self, handle):
        ids = np.array([5, 2, 5, 5, 2])
        labels = handle.predict_nodes(ids)
        assert labels.shape == (5,)
        assert labels[0] == labels[2] == labels[3]
        assert labels[1] == labels[4]
        unique = handle.predict_nodes(np.array([5, 2]))
        np.testing.assert_array_equal(labels, unique[[0, 1, 0, 0, 1]])

    def test_out_of_range_and_negative_raise_index_error(self, handle):
        message = f"node ids out of range [0, {handle.num_objects})"
        with pytest.raises(IndexError) as excinfo:
            handle.predict_nodes([0, handle.num_objects])
        assert str(excinfo.value) == message
        with pytest.raises(IndexError) as excinfo:
            handle.predict_nodes([-1])
        assert str(excinfo.value) == message

    def test_float_ids_raise_type_error(self, handle):
        with pytest.raises(TypeError, match="node ids must be integers"):
            handle.predict_nodes([1.5])

    def test_two_dimensional_input_is_flattened(self, handle):
        grid = np.array([[0, 1], [2, 3]])
        np.testing.assert_array_equal(
            handle.predict_nodes(grid), handle.predict_nodes([0, 1, 2, 3])
        )


# ---------------------------------------------------------------------- #
# 2. Batched (union-slice) equivalence
# ---------------------------------------------------------------------- #


class TestBatchedEquivalence:
    def test_predict_nodes_batch_matches_sequential_bit_exactly(self, handle):
        requests = request_mix(handle)
        requests.append(np.array([], dtype=np.int64))
        batched = handle.predict_nodes_batch(requests)
        for ids, answer in zip(requests, batched):
            np.testing.assert_array_equal(answer, handle.predict_nodes(ids))

    def test_proba_batch_matches_sequential_to_the_ulp(self, handle):
        """Labels are bit-exact; probabilities agree to ~1 ulp — BLAS
        picks different blocking for different union-slice shapes, the
        same tolerance standard the full-forward conformance suite uses
        (`test_api_estimators.test_predict_nodes_matches_full_forward`)."""
        requests = request_mix(handle, count=8)
        batched = handle.predict_proba_nodes_batch(requests)
        for ids, answer in zip(requests, batched):
            np.testing.assert_allclose(
                answer, handle.predict_proba_nodes(ids),
                rtol=1e-12, atol=1e-14,
            )

    def test_single_request_through_batch_path_is_bit_exact(self, handle):
        """With one request the union IS the request: no shape change,
        so even the float payloads are bit-identical."""
        ids = np.array([5, 2, 5])
        np.testing.assert_array_equal(
            handle.forward_many([ids])[0], handle._sliced_forward(ids)
        )

    def test_forward_many_rejects_any_invalid_request(self, handle):
        with pytest.raises(IndexError):
            handle.forward_many([np.array([0]), np.array([10 ** 9])])

    def test_planner_isolates_errors_per_request(self, handle):
        requests = [
            np.array([3, 3]),
            np.array([handle.num_objects + 5]),   # out of range
            (np.array([1]), True),                # proba request
            np.array([0.5]),                      # wrong dtype
        ]
        answers = BatchPlanner(handle).run(requests)
        np.testing.assert_array_equal(
            answers[0], handle.predict_nodes([3, 3])
        )
        assert isinstance(answers[1], IndexError)
        assert str(answers[1]) == (
            f"node ids out of range [0, {handle.num_objects})"
        )
        np.testing.assert_allclose(
            answers[2], handle.predict_proba_nodes([1]),
            rtol=1e-12, atol=1e-14,
        )
        assert isinstance(answers[3], TypeError)

    def test_planner_all_invalid_batch(self, handle):
        answers = BatchPlanner(handle).run([np.array([-1]), np.array([0.5])])
        assert isinstance(answers[0], IndexError)
        assert isinstance(answers[1], TypeError)


# ---------------------------------------------------------------------- #
# 3. The micro-batching server
# ---------------------------------------------------------------------- #


class TestModelServer:
    def test_concurrent_queries_bit_identical_to_sequential(self, handle):
        requests = request_mix(handle, count=40)
        expected = [handle.predict_nodes(ids) for ids in requests]
        results: dict = {}
        with ModelServer(
            handle, max_batch_size=16, max_wait_ms=10, num_workers=2
        ) as server:
            client = ServeClient(server)

            def issue(index):
                results[index] = client.predict_nodes(requests[index])

            threads = [
                threading.Thread(target=issue, args=(i,))
                for i in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.stats()
        for index, answer in results.items():
            np.testing.assert_array_equal(answer, expected[index])
        assert stats["answered"] == len(requests)
        assert stats["failed"] == 0

    def test_scheduler_actually_coalesces(self, handle):
        requests = request_mix(handle, count=32)
        with ModelServer(
            handle, max_batch_size=16, max_wait_ms=100, num_workers=1
        ) as server:
            client = ServeClient(server)
            answers = client.predict_many(requests)
            stats = server.stats()
        assert len(answers) == len(requests)
        # All 32 were submitted before any result was awaited, so the
        # scheduler must have formed multi-request batches.
        assert stats["batches"] < stats["answered"]
        assert stats["batch_size_max"] > 1

    def test_mixed_label_and_proba_requests_in_one_server(self, handle):
        with ModelServer(handle, max_wait_ms=20) as server:
            label_future = server.submit(np.array([4, 4, 9]))
            proba_future = server.submit(np.array([4, 9]), proba=True)
            np.testing.assert_array_equal(
                label_future.result(10.0), handle.predict_nodes([4, 4, 9])
            )
            np.testing.assert_array_equal(
                proba_future.result(10.0), handle.predict_proba_nodes([4, 9])
            )

    def test_submit_validates_with_the_handle_error_messages(self, handle):
        with ModelServer(handle) as server:
            with pytest.raises(IndexError) as excinfo:
                server.submit([handle.num_objects])
            assert str(excinfo.value) == (
                f"node ids out of range [0, {handle.num_objects})"
            )
            with pytest.raises(TypeError, match="node ids must be integers"):
                server.submit([0.25])
            # Rejected requests never count as admitted.
            assert server.stats()["requests"] == 0

    def test_bounded_queue_sheds_load(self, handle):
        server = ModelServer(
            handle, max_batch_size=1, max_wait_ms=0, max_queue=2,
            num_workers=1,
        )
        original_run = server.planner.run

        def slow_run(requests, **kwargs):
            time.sleep(0.15)
            return original_run(requests, **kwargs)

        server.planner.run = slow_run
        admitted = []
        shed = 0
        with server:
            for _ in range(12):
                try:
                    admitted.append(server.submit(np.array([1])))
                except ServerOverloaded:
                    shed += 1
            answers = [future.result(30.0) for future in admitted]
        assert shed > 0, "a 2-slot queue fed 12 instant submits must shed"
        assert server.stats()["shed"] == shed
        expected = handle.predict_nodes([1])
        for answer in answers:  # everything admitted was still answered
            np.testing.assert_array_equal(answer, expected)

    def test_client_retries_after_shed(self, handle):
        server = ModelServer(
            handle, max_batch_size=4, max_wait_ms=0, max_queue=1,
            num_workers=1,
        )
        original_run = server.planner.run

        def slow_run(requests, **kwargs):
            time.sleep(0.05)
            return original_run(requests, **kwargs)

        server.planner.run = slow_run
        with server:
            client = ServeClient(server, retries=50, backoff_s=0.02)
            answers = client.predict_many(
                [np.array([i % handle.num_objects]) for i in range(8)]
            )
        assert len(answers) == 8
        # The tiny queue forced at least one retry, and none were lost.
        assert client.retried > 0
        assert client.dropped == 0

    def test_stats_shape(self, handle):
        with ModelServer(handle, max_wait_ms=1) as server:
            server.predict_nodes([3])
            stats = server.stats()
        assert stats["requests"] == stats["answered"] == 1
        assert stats["batches"] == 1
        assert stats["throughput_rps"] > 0
        assert set(stats["latency_seconds"]) == {"mean", "p50", "p95", "max"}
        assert stats["latency_seconds"]["max"] >= stats["latency_seconds"]["p50"]

    def test_stop_fails_pending_requests_fast(self, handle):
        server = ModelServer(handle, max_wait_ms=0, num_workers=1)
        server.start()
        server._stop.set()  # wedge the scheduler before submitting
        for thread in server._threads:
            thread.join()
        future = server.submit(np.array([1]))
        server.stop()
        with pytest.raises(RuntimeError, match="server stopped"):
            future.result(1.0)

    def test_submit_before_start_raises(self, handle):
        server = ModelServer(handle)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit([0])


# ---------------------------------------------------------------------- #
# 4. Zero-copy serving
# ---------------------------------------------------------------------- #


class TestMappedBundles:
    def test_mapped_handle_matches_heap_handle_bit_exactly(
        self, handle, heap_handle
    ):
        assert all(is_mmap_backed(op) for op in handle._operators)
        ids = np.arange(handle.num_objects)
        np.testing.assert_array_equal(
            handle.predict_nodes(ids), heap_handle.predict_nodes(ids)
        )
        np.testing.assert_array_equal(
            handle.predict_proba_nodes([0, 3, 3]),
            heap_handle.predict_proba_nodes([0, 3, 3]),
        )

    def test_second_mapped_load_reuses_sidecars(self, bundle_path, handle):
        sidecar_dir = bundle_path.with_name(bundle_path.name + ".mmap")
        before = sorted(p.name for p in sidecar_dir.iterdir())
        again = ModelHandle.load(bundle_path)
        assert sorted(p.name for p in sidecar_dir.iterdir()) == before
        np.testing.assert_array_equal(
            again.predict_nodes([1, 2]), handle.predict_nodes([1, 2])
        )

    def test_rewritten_bundle_invalidates_sidecars(
        self, dblp_tiny, tiny_config, tmp_path
    ):
        split = stratified_split(dblp_tiny.labels, 0.2, seed=1)
        path = tmp_path / "conch.npz"
        first = ConCHEstimator(
            api.Pipeline(dblp_tiny, config=tiny_config).data, tiny_config
        ).fit(split)
        first.save(path)
        ModelHandle.load(path)  # builds sidecars for generation 1

        retrain_config = tiny_config.with_overrides(seed=99, epochs=4)
        second = ConCHEstimator(
            api.Pipeline(dblp_tiny, config=retrain_config).data,
            retrain_config,
        ).fit(split)
        second.save(path)  # atomic replace: new stat identity
        remapped = ModelHandle.load(path)
        reference = ModelHandle.load(path, mmap=False)
        ids = np.arange(remapped.num_objects)
        np.testing.assert_array_equal(
            remapped.predict_proba_nodes(ids),
            reference.predict_proba_nodes(ids),
        )

    def test_process_server_sheds_beyond_max_queue(self, bundle_path):
        """Admission control parity with ModelServer: in-flight requests
        are bounded; overflow sheds instead of growing without bound."""
        import queue as _queue

        server = ProcessReplicaServer(bundle_path, replicas=1, max_queue=1)
        server._processes = [object()]        # pretend started ...
        server._request_queue = _queue.Queue()  # ... with no live replica
        server.submit([0])                      # fills the in-flight slot
        with pytest.raises(ServerOverloaded):
            server.submit([1])
        assert server.shed == 1

    def test_process_replica_server_matches_parent(self, bundle_path, handle):
        requests = request_mix(handle, count=6)
        expected = [handle.predict_nodes(ids) for ids in requests]
        with ProcessReplicaServer(
            bundle_path, replicas=2, max_wait_ms=5
        ) as server:
            futures = [server.submit(ids) for ids in requests]
            answers = [future.result(120.0) for future in futures]
            proba = server.predict_proba_nodes(requests[0], timeout=120.0)
            with pytest.raises(IndexError, match="node ids out of range"):
                server.submit([handle.num_objects])
        for answer, reference in zip(answers, expected):
            np.testing.assert_array_equal(answer, reference)
        np.testing.assert_array_equal(
            proba, handle.predict_proba_nodes(requests[0])
        )
