"""The versioned delta-ingest substrate, layer by layer.

What must hold:

1. **Graph deltas** — :meth:`HIN.apply_delta` bumps the version exactly
   once, records the touched rows per node type, keeps the reverse
   relation the exact transpose, chains the content hash, and is
   invertible (apply + inverse == pristine, bit-exact).
   :meth:`deltas_since` reconstructs the chain or refuses honestly.
2. **Engine equivalence** — after arbitrary mixed add/remove deltas, a
   warm engine's patched products, similarity matrices, and top-k
   neighbor views are bit-identical to a cold engine built on a twin
   graph with the same final edge set; the patch path actually runs
   (the equivalence must not be vacuous full-invalidation).
3. **Context splicing** — :func:`patch_context_batch` equals a cold
   :func:`enumerate_contexts` on the mutated graph, field for field,
   while re-enumerating only dirty-rooted pairs.
4. **Pipeline ingest** — :meth:`Pipeline.ingest` logs ``"patched"``
   stage events and yields artifacts bit-identical to a cold
   :meth:`Pipeline.prepare` on the mutated graph under the same
   embeddings, including across chained deltas.
5. **Live serving** — :meth:`ModelHandle.refresh` bumps the generation
   and answers like a cold handle over the same weights;
   :meth:`ModelServer.ingest` survives a sanitizer-instrumented
   ingest-while-serving stress run with no races, no torn generations,
   and monotonically increasing generations.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.analysis.sanitizer import ThreadSanitizer, instrument
from repro.api import ConCHEstimator, ModelHandle, Pipeline
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.context import enumerate_contexts, patch_context_batch
from repro.hin.engine import get_engine
from repro.hin.graph import EdgeDelta
from repro.hin.io import hin_content_hash
from repro.hin.neighbors import NeighborFilter
from repro.serve import ModelServer

AUTHORS, PAPERS, CONFERENCES = 200, 700, 12


def fresh_dataset():
    """A deterministic DBLP fixture; repeated loads are bit-identical."""
    return load_dataset(
        "dblp",
        config=DBLPConfig(
            num_authors=AUTHORS,
            num_papers=PAPERS,
            num_conferences=CONFERENCES,
        ),
    )


def mixed_delta(hin, rng, num_add, num_remove):
    """A mixed add/remove batch on ``writes`` (removals of live edges)."""
    current = hin.relation_matrix("writes").tocoo()
    pick = rng.choice(current.nnz, size=min(num_remove, current.nnz), replace=False)
    return EdgeDelta(
        "writes",
        add_src=rng.integers(0, AUTHORS, size=num_add),
        add_dst=rng.integers(0, PAPERS, size=num_add),
        remove_src=np.asarray(current.row, dtype=np.int64)[pick],
        remove_dst=np.asarray(current.col, dtype=np.int64)[pick],
    )


def assert_csr_equal(left, right):
    """Bit-exact CSR comparison (structure and values, not closeness)."""
    assert left.shape == right.shape
    np.testing.assert_array_equal(left.indptr, right.indptr)
    np.testing.assert_array_equal(left.indices, right.indices)
    np.testing.assert_array_equal(left.data, right.data)


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=4,
        num_layers=2,
        context_dim=8,
        max_instances=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(scope="module")
def embeddings(tiny_config):
    """Initial embeddings, computed once; valid for every fresh twin."""
    from repro.embedding import metapath2vec_embeddings

    dataset = fresh_dataset()
    return metapath2vec_embeddings(
        dataset.hin,
        dataset.metapaths,
        dim=tiny_config.context_dim,
        num_walks=tiny_config.embed_num_walks,
        walk_length=tiny_config.embed_walk_length,
        epochs=tiny_config.embed_epochs,
        seed=tiny_config.seed,
    )


@pytest.fixture(scope="module")
def trained(tiny_config, embeddings):
    """One estimator fitted on the pristine fixture (weights reused)."""
    dataset = fresh_dataset()
    pipeline = Pipeline(dataset, config=tiny_config)
    pipeline.prepare(embeddings=embeddings)
    split = stratified_split(dataset.labels, 0.2, seed=0)
    return ConCHEstimator(pipeline.data, tiny_config).fit(split)


# ---------------------------------------------------------------------- #
# Layer 1: graph deltas
# ---------------------------------------------------------------------- #


class TestGraphDelta:
    def test_version_touched_rows_and_ledger(self):
        hin = fresh_dataset().hin
        version = hin.version
        delta = EdgeDelta(
            "writes",
            add_src=[3, 5],
            add_dst=[11, 12],
            remove_src=[7],
            remove_dst=[2],
        )
        record = hin.apply_delta(delta)
        assert hin.version == version + 1
        assert (record.prev_version, record.version) == (version, version + 1)
        assert record.relation == "writes"
        np.testing.assert_array_equal(record.touched["A"], [3, 5, 7])
        np.testing.assert_array_equal(record.touched["P"], [2, 11, 12])
        assert record.digest == delta.digest()

    def test_apply_then_inverse_restores_pristine(self):
        pristine, mutated = fresh_dataset().hin, fresh_dataset().hin
        rng = np.random.default_rng(7)
        before = mutated.relation_matrix("writes").copy()
        delta = mixed_delta(mutated, rng, num_add=9, num_remove=6)
        mutated.apply_delta(delta)
        # Only genuinely-new additions must be removed to invert: adding
        # an existing edge is idempotent under binarized storage.
        added = np.asarray(before[delta.add_src, delta.add_dst]).ravel() == 0
        mutated.apply_delta(
            EdgeDelta(
                "writes",
                add_src=delta.remove_src,
                add_dst=delta.remove_dst,
                remove_src=delta.add_src[added],
                remove_dst=delta.add_dst[added],
            )
        )
        assert_csr_equal(
            mutated.relation_matrix("writes"),
            pristine.relation_matrix("writes"),
        )

    def test_reverse_relation_tracks_transpose(self):
        hin = fresh_dataset().hin
        hin.apply_delta(EdgeDelta.additions("writes", [0, 1], [5, 6]))
        forward = hin.relation_matrix("writes")
        assert_csr_equal(
            hin.relation_matrix("writes_rev"),
            forward.T.tocsr(),
        )

    def test_deltas_must_target_forward_relation(self):
        hin = fresh_dataset().hin
        with pytest.raises(ValueError, match="forward relation"):
            hin.apply_delta(EdgeDelta.additions("writes_rev", [0], [0]))
        with pytest.raises(KeyError):
            hin.apply_delta(EdgeDelta.additions("reads", [0], [0]))
        with pytest.raises(IndexError):
            hin.apply_delta(EdgeDelta.additions("writes", [AUTHORS], [0]))

    def test_deltas_since_chain_and_refusal(self):
        hin = fresh_dataset().hin
        base = hin.version
        first = hin.apply_delta(EdgeDelta.additions("writes", [1], [1]))
        second = hin.apply_delta(EdgeDelta.removals("writes", [1], [1]))
        assert hin.deltas_since(hin.version) == []
        chain = hin.deltas_since(base)
        assert [r.version for r in chain] == [first.version, second.version]
        assert hin.deltas_since(hin.version + 1) is None

    def test_content_hash_chains_and_matches_full_rehash(self):
        left, right = fresh_dataset().hin, fresh_dataset().hin
        base = hin_content_hash(left)
        assert base == hin_content_hash(right)
        rng = np.random.default_rng(11)
        for _ in range(3):
            delta = mixed_delta(left, rng, num_add=4, num_remove=2)
            left.apply_delta(delta)
            right.apply_delta(delta)
        assert hin_content_hash(left) != base
        # Same chain on a twin graph -> same hash, however computed.
        assert hin_content_hash(left) == hin_content_hash(right)


# ---------------------------------------------------------------------- #
# Layer 2: engine row-scoped patching
# ---------------------------------------------------------------------- #


class TestEngineDeltaEquivalence:
    @pytest.mark.parametrize("num_add,num_remove", [(1, 0), (3, 2), (9, 6), (20, 13)])
    def test_patched_state_matches_cold_rebuild(self, num_add, num_remove):
        live_ds, cold_ds = fresh_dataset(), fresh_dataset()
        engine = get_engine(live_ds.hin)
        metapaths = live_ds.metapaths
        for metapath in metapaths:  # warm every product and view
            engine.counts(metapath)
            engine.top_k(metapath, k=4, measure="pathsim")

        rng = np.random.default_rng(num_add * 31 + num_remove)
        delta = mixed_delta(live_ds.hin, rng, num_add, num_remove)
        live_ds.hin.apply_delta(delta)
        cold_ds.hin.apply_delta(delta)
        cold = get_engine(cold_ds.hin)

        for metapath in metapaths:
            assert_csr_equal(engine.counts(metapath), cold.counts(metapath))
            assert_csr_equal(
                engine.similarity(metapath, "pathsim"),
                cold.similarity(metapath, "pathsim"),
            )
            live_topk = engine.top_k(metapath, k=4, measure="pathsim")
            cold_topk = cold.top_k(metapath, k=4, measure="pathsim")
            assert len(live_topk) == len(cold_topk)
            for live_row, cold_row in zip(live_topk, cold_topk):
                np.testing.assert_array_equal(live_row, cold_row)

    def test_small_delta_patches_instead_of_recomposing(self):
        dataset = fresh_dataset()
        engine = get_engine(dataset.hin)
        for metapath in dataset.metapaths:
            engine.counts(metapath)
            engine.top_k(metapath, k=4, measure="pathsim")
        dataset.hin.apply_delta(EdgeDelta.additions("writes", [0], [0]))
        engine.counts(dataset.metapaths[0])  # first touch syncs
        stats = engine.stats()
        assert stats["patched_products"] > 0
        assert stats["patched_views"] > 0
        assert stats["patched_rows"] > 0

    def test_repeated_deltas_stay_equivalent(self):
        live_ds, cold_ds = fresh_dataset(), fresh_dataset()
        engine = get_engine(live_ds.hin)
        rng = np.random.default_rng(5)
        for round_index in range(4):
            for metapath in live_ds.metapaths:
                engine.counts(metapath)
            delta = mixed_delta(live_ds.hin, rng, num_add=5, num_remove=3)
            live_ds.hin.apply_delta(delta)
            cold_ds.hin.apply_delta(delta)
        cold = get_engine(cold_ds.hin)
        for metapath in live_ds.metapaths:
            assert_csr_equal(engine.counts(metapath), cold.counts(metapath))


# ---------------------------------------------------------------------- #
# Layer 3: context splicing
# ---------------------------------------------------------------------- #


class TestContextPatch:
    def test_patched_batch_matches_cold_enumeration(self, tiny_config):
        dataset = fresh_dataset()
        hin = dataset.hin
        engine = get_engine(hin)
        neighbor_filter = NeighborFilter(k=tiny_config.k)
        rng = np.random.default_rng(13)
        for metapath in dataset.metapaths:
            old_pairs = neighbor_filter.retained_pairs(
                hin, metapath, rng=np.random.default_rng(0)
            )
            old_batch = enumerate_contexts(
                hin, metapath, old_pairs, tiny_config.max_instances
            )
            delta = mixed_delta(hin, rng, num_add=6, num_remove=4)
            record = hin.apply_delta(delta)
            dirty = engine.dirty_rows(tuple(metapath.node_types), [record])
            pairs = neighbor_filter.retained_pairs(
                hin, metapath, rng=np.random.default_rng(0)
            )
            patched, need, fresh, old_index = patch_context_batch(
                hin, metapath, old_batch, pairs, dirty,
                max_instances=tiny_config.max_instances,
            )
            cold = enumerate_contexts(
                hin, metapath, pairs, tiny_config.max_instances
            )
            np.testing.assert_array_equal(patched.pairs, cold.pairs)
            np.testing.assert_array_equal(
                patched.instance_ids, cold.instance_ids
            )
            np.testing.assert_array_equal(patched.indptr, cold.indptr)
            np.testing.assert_array_equal(
                patched.total_counts, cold.total_counts
            )
            np.testing.assert_array_equal(patched.truncated, cold.truncated)
            # The splice must not be vacuous: kept pairs exist, and the
            # fresh sub-batch covers exactly the re-enumerated ones.
            assert need.shape == (pairs.shape[0],)
            assert fresh.num_pairs == int(need.sum())
            assert np.all(old_index[~need] >= 0)

    def test_new_pairs_are_re_enumerated(self, tiny_config):
        dataset = fresh_dataset()
        hin = dataset.hin
        metapath = dataset.metapaths[0]
        engine = get_engine(hin)
        neighbor_filter = NeighborFilter(k=tiny_config.k)
        old_pairs = neighbor_filter.retained_pairs(
            hin, metapath, rng=np.random.default_rng(0)
        )
        old_batch = enumerate_contexts(
            hin, metapath, old_pairs, tiny_config.max_instances
        )
        record = hin.apply_delta(
            EdgeDelta.additions("writes", [0, 1, 2], [0, 0, 0])
        )
        dirty = engine.dirty_rows(tuple(metapath.node_types), [record])
        pairs = neighbor_filter.retained_pairs(
            hin, metapath, rng=np.random.default_rng(0)
        )
        patched, need, _, old_index = patch_context_batch(
            hin, metapath, old_batch, pairs, dirty,
            max_instances=tiny_config.max_instances,
        )
        assert np.all(need[old_index < 0])
        assert patched.num_pairs == pairs.shape[0]


# ---------------------------------------------------------------------- #
# Layer 4: pipeline ingest
# ---------------------------------------------------------------------- #


class TestPipelineIngest:
    def test_ingest_matches_cold_prepare(self, tiny_config, embeddings):
        live_ds, cold_ds = fresh_dataset(), fresh_dataset()
        live = Pipeline(live_ds, config=tiny_config)
        live.prepare(embeddings=embeddings)

        rng = np.random.default_rng(17)
        delta = mixed_delta(live_ds.hin, rng, num_add=8, num_remove=5)
        events = live.ingest(delta)
        assert [e.stage for e in events] == [
            "discover", "compose", "enumerate", "featurize",
        ]
        assert all(e.action == "patched" for e in events)

        cold_ds.hin.apply_delta(delta)
        cold = Pipeline(cold_ds, config=tiny_config)
        cold.prepare(embeddings=embeddings)

        assert live_ds.hin.version == cold_ds.hin.version
        for live_m, cold_m in zip(
            live.data.metapath_data, cold.data.metapath_data
        ):
            assert_csr_equal(live_m.incidence, cold_m.incidence)
            assert_csr_equal(live_m.neighbor_adj, cold_m.neighbor_adj)
            np.testing.assert_array_equal(
                live_m.context_features, cold_m.context_features
            )

    def test_chained_ingests_stay_equivalent(self, tiny_config, embeddings):
        live_ds, cold_ds = fresh_dataset(), fresh_dataset()
        live = Pipeline(live_ds, config=tiny_config)
        live.prepare(embeddings=embeddings)
        rng = np.random.default_rng(23)
        for _ in range(3):
            delta = mixed_delta(live_ds.hin, rng, num_add=4, num_remove=3)
            live.ingest(delta)
            cold_ds.hin.apply_delta(delta)
        cold = Pipeline(cold_ds, config=tiny_config)
        cold.prepare(embeddings=embeddings)
        for live_m, cold_m in zip(
            live.data.metapath_data, cold.data.metapath_data
        ):
            assert_csr_equal(live_m.incidence, cold_m.incidence)
            np.testing.assert_array_equal(
                live_m.context_features, cold_m.context_features
            )

    def test_ingest_requires_prepared_pipeline(self, tiny_config):
        pipeline = Pipeline(fresh_dataset(), config=tiny_config)
        with pytest.raises(RuntimeError, match="prepare"):
            pipeline.ingest(EdgeDelta.additions("writes", [0], [0]))


# ---------------------------------------------------------------------- #
# Layer 5: live serving
# ---------------------------------------------------------------------- #


class TestServingRefresh:
    def test_refresh_matches_cold_handle(self, tiny_config, embeddings, trained):
        live_ds, cold_ds = fresh_dataset(), fresh_dataset()
        live = Pipeline(live_ds, config=tiny_config)
        live.prepare(embeddings=embeddings)
        handle = ModelHandle(live.data, tiny_config, trained.trainer.model)
        generation = handle.generation

        rng = np.random.default_rng(29)
        delta = mixed_delta(live_ds.hin, rng, num_add=7, num_remove=4)
        live.ingest(delta)
        assert handle.refresh(live.data) == generation + 1

        cold_ds.hin.apply_delta(delta)
        cold = Pipeline(cold_ds, config=tiny_config)
        cold.prepare(embeddings=embeddings)
        cold_handle = ModelHandle(cold.data, tiny_config, trained.trainer.model)

        everyone = np.arange(handle.num_objects)
        np.testing.assert_array_equal(
            handle.predict_nodes(everyone), cold_handle.predict_nodes(everyone)
        )

    def test_refresh_rejects_mismatched_towers(self, tiny_config, embeddings, trained):
        pipeline = Pipeline(fresh_dataset(), config=tiny_config)
        pipeline.prepare(embeddings=embeddings)
        handle = ModelHandle(pipeline.data, tiny_config, trained.trainer.model)
        with pytest.raises(ValueError, match="towers"):
            handle.refresh(pipeline.data.metapath_data[:1])

    def test_server_ingest_reports_patch_and_generation(
        self, tiny_config, embeddings, trained
    ):
        dataset = fresh_dataset()
        pipeline = Pipeline(dataset, config=tiny_config)
        pipeline.prepare(embeddings=embeddings)
        handle = ModelHandle(pipeline.data, tiny_config, trained.trainer.model)
        version = dataset.hin.version
        with ModelServer(handle, max_wait_ms=1, pipeline=pipeline) as server:
            summary = server.ingest(
                EdgeDelta.additions("writes", [0, 1], [3, 4])
            )
            assert summary["generation"] == 1
            assert summary["graph_version"] == version + 1
            assert ("featurize", "patched") in summary["stages"]
            answered = server.predict_nodes(np.arange(8), timeout=10.0)
        np.testing.assert_array_equal(
            answered, handle.predict_nodes(np.arange(8))
        )

    def test_server_ingest_without_pipeline_raises(self, trained):
        with ModelServer(ModelHandle.from_estimator(trained)) as server:
            with pytest.raises(RuntimeError, match="pipeline"):
                server.ingest(EdgeDelta.additions("writes", [0], [0]))


class TestConcurrentIngestWhileServing:
    def test_sanitized_ingest_under_query_load(
        self, tiny_config, embeddings, trained
    ):
        dataset = fresh_dataset()
        pipeline = Pipeline(dataset, config=tiny_config)
        pipeline.prepare(embeddings=embeddings)
        handle = ModelHandle(pipeline.data, tiny_config, trained.trainer.model)
        server = ModelServer(
            handle,
            max_batch_size=8,
            max_wait_ms=1,
            num_workers=2,
            pipeline=pipeline,
        )
        sanitizer = ThreadSanitizer()
        instrument(sanitizer, server)
        instrument(sanitizer, handle)

        stop = threading.Event()
        errors: list = []
        generations: list = [[] for _ in range(3)]
        num_classes = int(dataset.labels.max()) + 1

        def reader(slot: int) -> None:
            rng = np.random.default_rng(slot)
            while not stop.is_set():
                ids = rng.integers(0, handle.num_objects, size=5)
                try:
                    labels = server.predict_nodes(ids, timeout=30.0)
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return
                if labels.shape != (5,) or labels.min() < 0 or (
                    labels.max() >= num_classes
                ):
                    errors.append(AssertionError(f"torn answer: {labels!r}"))
                    return
                generations[slot].append(handle.generation)

        with server:
            threads = [
                threading.Thread(target=reader, args=(slot,), daemon=True)
                for slot in range(3)
            ]
            for thread in threads:
                thread.start()
            rng = np.random.default_rng(99)
            summary = None
            for _ in range(4):
                delta = mixed_delta(dataset.hin, rng, num_add=5, num_remove=2)
                summary = server.ingest(delta)
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

        sanitizer.assert_clean()
        assert not errors
        assert summary["generation"] == 4
        assert handle.generation == 4
        for observed in generations:
            assert observed, "reader thread answered no queries"
            # Generations only ever move forward under concurrent ingest.
            assert all(a <= b for a, b in zip(observed, observed[1:]))
        assert server.stats()["ingests"] == 4
