"""Tests for the alternative similarity measures (HeteSim, JoinSim, cosine)
and their integration with the neighbor filter."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hin import HIN, MetaPath
from repro.hin.adjacency import metapath_adjacency
from repro.hin.neighbors import NeighborFilter, top_k_similarity_neighbors
from repro.hin.pathsim import pathsim_matrix
from repro.hin.similarity import (
    SIMILARITY_MEASURES,
    cosine_commuting_matrix,
    half_commuting_matrix,
    hetesim_matrix,
    joinsim_matrix,
    measure_agreement,
    similarity_matrix,
)
from tests.test_hin_graph import movie_hin

MAM = MetaPath.parse("MAM")
MDM = MetaPath.parse("MDM")


def line_hin() -> HIN:
    """Hand-checkable 3-author / 2-paper chain: a0-p0-a1-p1-a2."""
    hin = HIN(name="line")
    hin.add_node_type("A", 3)
    hin.add_node_type("P", 2)
    hin.add_edges("writes", "A", "P", [0, 1, 1, 2], [0, 0, 1, 1])
    return hin


class TestHeteSim:
    def test_bounds_and_symmetry(self):
        hin = movie_hin()
        scores = hetesim_matrix(hin, MAM)
        assert scores.nnz > 0
        assert (scores.data >= 0).all() and (scores.data <= 1.0).all()
        assert abs(scores - scores.T).max() < 1e-12

    def test_diagonal_absent(self):
        scores = hetesim_matrix(movie_hin(), MAM)
        assert np.allclose(scores.diagonal(), 0.0)

    def test_line_graph_value(self):
        # a0 reaches only p0, a2 reaches only p1: HS(a0, a2) has no overlap.
        # a0 and a1 share p0; a1's distribution is (1/2, 1/2), a0's is (1, 0)
        # so HS(a0, a1) = (1/2) / (1 * sqrt(1/2)) = 1/sqrt(2).
        scores = hetesim_matrix(line_hin(), MetaPath.parse("APA"))
        assert scores[0, 2] == 0.0
        assert scores[0, 1] == pytest.approx(1.0 / np.sqrt(2.0))

    def test_identical_neighborhoods_score_one(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        hin.add_node_type("P", 2)
        # Both authors write both papers: identical distributions.
        hin.add_edges("writes", "A", "P", [0, 0, 1, 1], [0, 1, 0, 1])
        scores = hetesim_matrix(hin, MetaPath.parse("APA"))
        assert scores[0, 1] == pytest.approx(1.0)

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            hetesim_matrix(movie_hin(), MetaPath.parse("MAD"))

    def test_rejects_even_type_count(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        hin.add_edges("knows", "A", "A", [0], [1])
        with pytest.raises(ValueError, match="middle"):
            hetesim_matrix(hin, MetaPath(["A", "A"]))


class TestJoinSim:
    def test_bounds_and_symmetry(self):
        scores = joinsim_matrix(movie_hin(), MAM)
        assert (scores.data > 0).all() and (scores.data <= 1.0).all()
        assert abs(scores - scores.T).max() < 1e-12

    def test_value_against_counts(self):
        hin = movie_hin()
        counts = metapath_adjacency(hin, MAM, remove_self_paths=False)
        scores = joinsim_matrix(hin, MAM)
        u, v = 0, 1
        expected = counts[u, v] / np.sqrt(counts[u, u] * counts[v, v])
        assert scores[u, v] == pytest.approx(expected)

    def test_upper_bounds_pathsim(self):
        # sqrt(ab) <= (a+b)/2, so JoinSim >= PathSim entrywise.
        hin = movie_hin()
        join = joinsim_matrix(hin, MAM).toarray()
        path = pathsim_matrix(hin, MAM).toarray()
        assert (join + 1e-12 >= path).all()

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            joinsim_matrix(movie_hin(), MetaPath.parse("MAD"))


class TestCosineCommuting:
    def test_bounds_and_symmetry(self):
        scores = cosine_commuting_matrix(movie_hin(), MAM)
        assert (scores.data >= 0).all() and (scores.data <= 1.0).all()
        assert abs(scores - scores.T).max() < 1e-12

    def test_detects_structural_equivalence(self):
        # a0 and a2 both write only p0 and p1 — identical APA rows — while
        # a1 writes only p2.  Cosine flags (a0, a2) even though PathSim
        # also connects them; scores must be exactly 1.
        hin = HIN()
        hin.add_node_type("A", 3)
        hin.add_node_type("P", 3)
        hin.add_edges("writes", "A", "P", [0, 0, 2, 2, 1], [0, 1, 0, 1, 2])
        scores = cosine_commuting_matrix(hin, MetaPath.parse("APA"))
        assert scores[0, 2] == pytest.approx(1.0)

    def test_denser_than_pathsim(self):
        # Structural equivalence connects nodes PathSim cannot (no shared
        # path needed), so the support is a superset on the movie graph.
        hin = movie_hin()
        cos = cosine_commuting_matrix(hin, MAM)
        path = pathsim_matrix(hin, MAM)
        assert cos.nnz >= path.nnz


class TestHalfCommuting:
    def test_shape_and_counts(self):
        hin = movie_hin()
        half = half_commuting_matrix(hin, MAM)
        assert half.shape == (4, 2)
        # Full commuting matrix equals half @ half.T for odd-type paths.
        full = metapath_adjacency(hin, MAM, remove_self_paths=False)
        assert abs(sp.csr_matrix(half @ half.T) - full).max() < 1e-12


class TestDispatch:
    def test_all_measures_registered(self):
        hin = movie_hin()
        for measure in SIMILARITY_MEASURES:
            scores = similarity_matrix(hin, MAM, measure)
            assert scores.shape == (4, 4)

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="unknown similarity"):
            similarity_matrix(movie_hin(), MAM, "simrank")

    def test_pathsim_dispatch_matches_direct(self):
        hin = movie_hin()
        via_dispatch = similarity_matrix(hin, MAM, "pathsim").toarray()
        direct = pathsim_matrix(hin, MAM).toarray()
        assert np.allclose(via_dispatch, direct)


class TestNeighborFilterIntegration:
    @pytest.mark.parametrize("strategy", ["hetesim", "joinsim", "cosine"])
    def test_filter_accepts_new_strategies(self, strategy):
        hin = movie_hin()
        lists = NeighborFilter(k=2, strategy=strategy).select(hin, MAM)
        assert len(lists) == 4
        assert all(entry.size <= 2 for entry in lists)

    def test_top_k_function(self):
        lists = top_k_similarity_neighbors(movie_hin(), MAM, k=1, measure="joinsim")
        assert all(entry.size <= 1 for entry in lists)

    def test_top_k_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_similarity_neighbors(movie_hin(), MAM, k=0, measure="hetesim")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            NeighborFilter(k=2, strategy="simrank")

    def test_retained_pairs_under_hetesim(self):
        pairs = NeighborFilter(k=2, strategy="hetesim").retained_pairs(
            movie_hin(), MAM
        )
        assert pairs.shape[1] == 2
        assert (pairs[:, 0] < pairs[:, 1]).all()


class TestMeasureAgreement:
    def test_self_agreement_is_one(self):
        value = measure_agreement(movie_hin(), MAM, "pathsim", "pathsim", k=2)
        assert value == pytest.approx(1.0)

    def test_agreement_in_unit_interval(self):
        value = measure_agreement(movie_hin(), MAM, "pathsim", "cosine", k=2)
        assert 0.0 <= value <= 1.0
