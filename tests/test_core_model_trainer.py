"""End-to-end tests for the ConCH model, trainer, and ablation variants."""

import numpy as np
import pytest

from repro.core import (
    ConCH,
    ConCHConfig,
    ConCHTrainer,
    prepare_conch_data,
    variant_config,
    VARIANTS,
)
from repro.data import DBLPConfig, load_dataset, stratified_split


TINY = DBLPConfig(num_authors=80, num_papers=260, num_conferences=8)
FAST = dict(
    epochs=40,
    patience=40,
    k=3,
    num_layers=1,
    context_dim=16,
    hidden_dim=16,
    out_dim=16,
    attention_dim=8,
    classifier_hidden=8,
    lr=0.01,
    aggregator="mean",
)


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("dblp", config=TINY)


@pytest.fixture(scope="module")
def tiny_split(tiny_dataset):
    return stratified_split(tiny_dataset.labels, 0.2, seed=0)


@pytest.fixture(scope="module")
def prepared(tiny_dataset):
    return prepare_conch_data(tiny_dataset, ConCHConfig(**FAST))


class TestConfig:
    def test_defaults_valid(self):
        ConCHConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ConCHConfig(neighbor_strategy="best")
        with pytest.raises(ValueError):
            ConCHConfig(aggregator="max")
        with pytest.raises(ValueError):
            ConCHConfig(training_mode="distill")
        with pytest.raises(ValueError):
            ConCHConfig(num_layers=0)
        with pytest.raises(ValueError):
            ConCHConfig(lambda_ss=-0.1)
        with pytest.raises(ValueError):
            ConCHConfig(dropout=1.0)

    def test_with_overrides(self):
        cfg = ConCHConfig().with_overrides(k=17)
        assert cfg.k == 17
        assert ConCHConfig().k != 17 or True  # original untouched


class TestVariants:
    def test_all_variants_defined(self):
        assert set(VARIANTS) == {"full", "nc", "rd", "su", "ft", "ew"}

    def test_variant_transformations(self):
        base = ConCHConfig()
        assert not variant_config("nc", base).use_contexts
        assert variant_config("rd", base).neighbor_strategy == "random"
        su = variant_config("su", base)
        assert su.training_mode == "supervised" and su.lambda_ss == 0.0
        assert variant_config("ft", base).training_mode == "finetune"
        assert not variant_config("ew", base).use_attention
        assert variant_config("full", base) is base

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_config("xx", ConCHConfig())


class TestPreparation:
    def test_prepared_structure(self, tiny_dataset, prepared):
        assert prepared.num_objects == tiny_dataset.num_targets
        assert len(prepared.metapath_data) == len(tiny_dataset.metapaths)
        for mp_data in prepared.metapath_data:
            assert mp_data.incidence.shape == (
                prepared.num_objects,
                mp_data.num_contexts,
            )
            assert mp_data.context_features.shape == (
                mp_data.num_contexts,
                prepared.context_dim,
            )
            assert mp_data.neighbor_adj.shape == (
                prepared.num_objects,
                prepared.num_objects,
            )

    def test_preprocess_time_recorded(self, prepared):
        assert prepared.preprocess_seconds > 0

    def test_nc_preparation_skips_context_features(self, tiny_dataset):
        cfg = ConCHConfig(**FAST).with_overrides(use_contexts=False)
        data = prepare_conch_data(tiny_dataset, cfg)
        for mp_data in data.metapath_data:
            np.testing.assert_allclose(mp_data.context_features, 0.0)


class TestModel:
    def test_forward_shapes(self, prepared):
        from repro.autograd import Tensor

        cfg = ConCHConfig(**FAST)
        model = ConCH(
            prepared.feature_dim,
            prepared.context_dim,
            len(prepared.metapath_data),
            prepared.num_classes,
            cfg,
        )
        operators = [m.incidence for m in prepared.metapath_data]
        contexts = [Tensor(m.context_features) for m in prepared.metapath_data]
        logits, z = model(Tensor(prepared.features), operators, contexts)
        assert logits.shape == (prepared.num_objects, prepared.num_classes)
        assert z.shape == (prepared.num_objects, cfg.out_dim)

    def test_operator_count_mismatch(self, prepared):
        from repro.autograd import Tensor

        cfg = ConCHConfig(**FAST)
        model = ConCH(prepared.feature_dim, prepared.context_dim, 3, 4, cfg)
        with pytest.raises(ValueError):
            model.embed(Tensor(prepared.features), [], [])

    def test_needs_at_least_one_metapath(self):
        with pytest.raises(ValueError):
            ConCH(8, 8, 0, 4, ConCHConfig(**FAST))

    def test_attention_weights_exposed(self, prepared):
        from repro.autograd import Tensor

        cfg = ConCHConfig(**FAST)
        model = ConCH(
            prepared.feature_dim,
            prepared.context_dim,
            len(prepared.metapath_data),
            prepared.num_classes,
            cfg,
        )
        assert model.mean_attention_weights() is None
        operators = [m.incidence for m in prepared.metapath_data]
        contexts = [Tensor(m.context_features) for m in prepared.metapath_data]
        model.embed(Tensor(prepared.features), operators, contexts)
        weights = model.mean_attention_weights()
        assert weights.shape == (len(prepared.metapath_data),)
        np.testing.assert_allclose(weights.sum(), 1.0)


class TestTrainer:
    def test_learns_above_chance(self, prepared, tiny_split, tiny_dataset):
        cfg = ConCHConfig(**FAST)
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        scores = trainer.evaluate(tiny_split.test)
        assert scores["micro_f1"] > 1.5 / tiny_dataset.num_classes

    def test_recorder_populated(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST)
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        assert len(trainer.recorder.records) > 0
        assert trainer.recorder.total_seconds > 0

    def test_predict_all_and_subset(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST)
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        all_preds = trainer.predict()
        assert all_preds.shape == (prepared.num_objects,)
        subset = trainer.predict(tiny_split.test)
        np.testing.assert_array_equal(subset, all_preds[tiny_split.test])

    def test_embeddings_shape(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST)
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        z = trainer.embeddings()
        assert z.shape == (prepared.num_objects, cfg.out_dim)

    def test_supervised_mode(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST).with_overrides(
            training_mode="supervised", lambda_ss=0.0
        )
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        assert trainer.evaluate(tiny_split.test)["micro_f1"] > 0.3

    def test_finetune_mode(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST).with_overrides(
            training_mode="finetune", pretrain_epochs=5, epochs=20
        )
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        assert trainer.evaluate(tiny_split.test)["micro_f1"] > 0.3

    def test_nc_variant_trains(self, tiny_dataset, tiny_split):
        cfg = variant_config("nc", ConCHConfig(**FAST))
        data = prepare_conch_data(tiny_dataset, cfg)
        trainer = ConCHTrainer(data, cfg).fit(tiny_split)
        assert trainer.evaluate(tiny_split.test)["micro_f1"] > 0.3

    def test_rd_variant_trains(self, tiny_dataset, tiny_split):
        cfg = variant_config("rd", ConCHConfig(**FAST))
        data = prepare_conch_data(tiny_dataset, cfg)
        trainer = ConCHTrainer(data, cfg).fit(tiny_split)
        assert trainer.evaluate(tiny_split.test)["micro_f1"] > 0.3

    def test_ew_variant_trains(self, prepared, tiny_split):
        cfg = variant_config("ew", ConCHConfig(**FAST))
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        assert trainer.evaluate(tiny_split.test)["micro_f1"] > 0.3

    def test_attention_weights_after_fit(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST)
        trainer = ConCHTrainer(prepared, cfg).fit(tiny_split)
        weights = trainer.attention_weights()
        assert weights.shape == (len(prepared.metapath_data),)

    def test_deterministic_given_seed(self, prepared, tiny_split):
        cfg = ConCHConfig(**FAST).with_overrides(epochs=5, seed=11)
        a = ConCHTrainer(prepared, cfg).fit(tiny_split).predict()
        b = ConCHTrainer(prepared, cfg).fit(tiny_split).predict()
        np.testing.assert_array_equal(a, b)
