"""Tests for the HIN typed graph and schema."""

import numpy as np
import pytest

from repro.hin import HIN, MetaPath, NetworkSchema


def movie_hin() -> HIN:
    """The Fig. 1 example: movies, actors, directors, producers."""
    hin = HIN(name="fig1")
    hin.add_node_type("M", 4)
    hin.add_node_type("A", 2)
    hin.add_node_type("D", 2)
    hin.add_node_type("P", 2)
    # M1,M2,M3 feature A1; M1,M2,M4 feature A2 (0-indexed here).
    hin.add_edges("stars", "M", "A", [0, 1, 2, 0, 1, 3], [0, 0, 0, 1, 1, 1])
    hin.add_edges("directed_by", "M", "D", [0, 1, 2, 3], [0, 0, 1, 1])
    hin.add_edges("produced_by", "M", "P", [1, 2, 2, 3], [0, 0, 1, 1])
    return hin


class TestConstruction:
    def test_node_counts(self):
        hin = movie_hin()
        assert hin.num_nodes("M") == 4
        assert hin.total_nodes == 10

    def test_duplicate_type_rejected(self):
        hin = HIN()
        hin.add_node_type("A", 3)
        with pytest.raises(ValueError):
            hin.add_node_type("A", 5)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            HIN().add_node_type("A", 0)

    def test_unknown_type_in_edges(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        with pytest.raises(KeyError):
            hin.add_edges("r", "A", "B", [0], [0])

    def test_out_of_range_ids(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        hin.add_node_type("B", 2)
        with pytest.raises(IndexError):
            hin.add_edges("r", "A", "B", [5], [0])

    def test_mismatched_edge_arrays(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        hin.add_node_type("B", 2)
        with pytest.raises(ValueError):
            hin.add_edges("r", "A", "B", [0, 1], [0])

    def test_duplicate_relation_rejected(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            hin.add_edges("stars", "M", "A", [0], [0])

    def test_duplicate_edges_collapse_to_binary(self):
        hin = HIN()
        hin.add_node_type("A", 2)
        hin.add_node_type("B", 2)
        hin.add_edges("r", "A", "B", [0, 0, 0], [1, 1, 1])
        assert hin.relation_matrix("r")[0, 1] == 1.0

    def test_reverse_relation_registered(self):
        hin = movie_hin()
        forward = hin.relation_matrix("stars")
        backward = hin.relation_matrix("stars_rev")
        np.testing.assert_allclose(forward.toarray().T, backward.toarray())

    def test_is_heterogeneous(self):
        assert movie_hin().is_heterogeneous()
        homo = HIN()
        homo.add_node_type("X", 3)
        homo.add_edges("link", "X", "X", [0, 1], [1, 2])
        assert not homo.is_heterogeneous()


class TestAccessors:
    def test_adjacency_union(self):
        hin = movie_hin()
        adj = hin.adjacency("M", "A")
        assert adj.shape == (4, 2)
        assert adj.nnz == 6

    def test_adjacency_missing_pair(self):
        hin = movie_hin()
        with pytest.raises(KeyError):
            hin.adjacency("A", "D")

    def test_has_adjacency(self):
        hin = movie_hin()
        assert hin.has_adjacency("M", "A")
        assert hin.has_adjacency("A", "M")  # via reverse
        assert not hin.has_adjacency("A", "D")

    def test_features_roundtrip(self):
        hin = movie_hin()
        feats = np.arange(8, dtype=float).reshape(4, 2)
        hin.set_features("M", feats)
        np.testing.assert_allclose(hin.features("M"), feats)

    def test_features_wrong_rows(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            hin.set_features("M", np.zeros((3, 2)))

    def test_missing_features_raise(self):
        with pytest.raises(KeyError):
            movie_hin().features("M")

    def test_labels_roundtrip(self):
        hin = movie_hin()
        hin.set_labels("M", np.array([0, 1, 0, 2]))
        np.testing.assert_array_equal(hin.labels("M"), [0, 1, 0, 2])

    def test_labels_wrong_shape(self):
        hin = movie_hin()
        with pytest.raises(ValueError):
            hin.set_labels("M", np.array([0, 1]))


class TestSchema:
    def test_schema_edges(self):
        schema = movie_hin().schema()
        assert schema.are_connected("M", "A")
        assert schema.are_connected("A", "M")
        assert not schema.are_connected("A", "D")

    def test_validate_metapath_ok(self):
        schema = movie_hin().schema()
        schema.validate_metapath(["M", "A", "M"])

    def test_validate_metapath_bad_step(self):
        schema = movie_hin().schema()
        with pytest.raises(ValueError):
            schema.validate_metapath(["A", "D"])

    def test_validate_metapath_unknown_type(self):
        schema = movie_hin().schema()
        with pytest.raises(ValueError):
            schema.validate_metapath(["M", "Z"])

    def test_validate_too_short(self):
        schema = movie_hin().schema()
        with pytest.raises(ValueError):
            schema.validate_metapath(["M"])

    def test_relations_between(self):
        schema = movie_hin().schema()
        assert "stars" in schema.relations_between("M", "A")

    def test_degree(self):
        schema = movie_hin().schema()
        # M touches stars(+rev), directed_by(+rev), produced_by(+rev).
        assert schema.degree("M") == 6


class TestGlobalProjection:
    def test_offsets_partition_id_space(self):
        hin = movie_hin()
        offsets = hin.global_offsets()
        sizes = sorted(offsets.values())
        assert sizes[0] == 0
        assert max(offsets[t] + hin.num_nodes(t) for t in offsets) == hin.total_nodes

    def test_homogeneous_symmetric(self):
        adj = movie_hin().to_homogeneous()
        assert (adj != adj.T).nnz == 0

    def test_homogeneous_edge_count(self):
        hin = movie_hin()
        adj = hin.to_homogeneous()
        # 6 + 4 + 4 undirected edges -> 28 directed entries.
        assert adj.nnz == 28

    def test_to_networkx(self):
        graph = movie_hin().to_networkx()
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 14
        assert graph.nodes[("M", 0)]["node_type"] == "M"
