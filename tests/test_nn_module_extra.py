"""Additional coverage for nn containers and trainer plumbing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.baselines.base import SemiSupervisedTrainer, TrainSettings
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.nn import Linear, ReLU, Sequential
from repro.nn.module import Module


class TestSequential:
    def test_indexing_and_len(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(2, 4, rng), ReLU(), Linear(4, 1, rng))
        assert len(net) == 3
        assert isinstance(net[1], ReLU)

    def test_forward_chains(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(2, 4, rng), ReLU(), Linear(4, 1, rng))
        out = net(Tensor(np.ones((3, 2))))
        assert out.shape == (3, 1)

    def test_parameters_collected(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(2, 4, rng), Linear(4, 1, rng))
        assert len(net.parameters()) == 4


class TestTrainSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainSettings(lr=0.0)
        with pytest.raises(ValueError):
            TrainSettings(epochs=0)


class TestSemiSupervisedTrainer:
    @pytest.fixture(scope="class")
    def problem(self):
        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(num_authors=60, num_papers=200, num_conferences=8),
        )
        split = stratified_split(dataset.labels, 0.2, seed=0)
        return dataset, split

    def test_trains_simple_linear_model(self, problem):
        dataset, split = problem
        rng = np.random.default_rng(0)
        model = Linear(dataset.features.shape[1], dataset.num_classes, rng)
        x = Tensor(dataset.features)
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(x),
            labels=dataset.labels,
            settings=TrainSettings(epochs=50, patience=50, lr=0.05),
        ).fit(split)
        scores = trainer.evaluate(split.test, dataset.num_classes)
        assert scores["micro_f1"] > 0.4

    def test_recorder_times_are_monotone(self, problem):
        dataset, split = problem
        rng = np.random.default_rng(0)
        model = Linear(dataset.features.shape[1], dataset.num_classes, rng)
        x = Tensor(dataset.features)
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(x),
            labels=dataset.labels,
            settings=TrainSettings(epochs=10, patience=10),
        ).fit(split)
        times = [r.elapsed_seconds for r in trainer.recorder.records]
        assert times == sorted(times)

    def test_early_stopping_restores_best(self, problem):
        dataset, split = problem
        rng = np.random.default_rng(0)
        model = Linear(dataset.features.shape[1], dataset.num_classes, rng)
        x = Tensor(dataset.features)
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(x),
            labels=dataset.labels,
            settings=TrainSettings(epochs=60, patience=5, lr=0.1),
        ).fit(split)
        # After restore, validation score equals the recorded best.
        val_pred = trainer.predict(split.val)
        from repro.eval.metrics import micro_f1

        best = max(r.val_metric for r in trainer.recorder.records)
        assert micro_f1(dataset.labels[split.val], val_pred) == pytest.approx(best)

    def test_predict_all_nodes(self, problem):
        dataset, split = problem
        rng = np.random.default_rng(0)
        model = Linear(dataset.features.shape[1], dataset.num_classes, rng)
        x = Tensor(dataset.features)
        trainer = SemiSupervisedTrainer(
            model,
            forward=lambda m: m(x),
            labels=dataset.labels,
            settings=TrainSettings(epochs=5, patience=5),
        ).fit(split)
        assert trainer.predict().shape == (dataset.num_targets,)
