"""Commuting-matrix engine: equivalence, compose-once, invalidation.

Three properties of :mod:`repro.hin.engine`:

1. **Exact equivalence** — every cached view (counts, diagonal, binary,
   half-path, all four similarity measures, top-k, pair lookup) matches a
   direct, cache-free computation on a fixture HIN.
2. **Compose-once** — a call-count spy on the engine's compose log proves
   each distinct chain product is multiplied together at most once per
   HIN, no matter how many consumers ask for it.
3. **Invalidation** — structurally mutating the HIN (``add_edges``)
   bumps its version and drops the caches, so results reflect the new
   graph.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hin import HIN, MetaPath
from repro.hin.adjacency import metapath_adjacency, metapath_binary_adjacency
from repro.hin.engine import (
    CommutingEngine,
    csr_pair_values,
    csr_row_topk,
    drop_diagonal,
    get_engine,
)
from repro.hin.neighbors import NeighborFilter, top_k_similarity_neighbors
from repro.hin.pathsim import pathsim_matrix, pathsim_pairs, pathsim_single
from repro.hin.similarity import (
    SIMILARITY_MEASURES,
    half_commuting_matrix,
    similarity_matrix,
)


def dblp_like_hin(seed: int = 0) -> HIN:
    """Small random A/P/C network supporting APA, APCPA, APAPA."""
    rng = np.random.default_rng(seed)
    hin = HIN("fixture")
    hin.add_node_type("A", 20)
    hin.add_node_type("P", 40)
    hin.add_node_type("C", 5)
    num_writes = 80
    hin.add_edges(
        "writes", "A", "P",
        rng.integers(0, 20, size=num_writes),
        rng.integers(0, 40, size=num_writes),
    )
    hin.add_edges(
        "published_in", "P", "C",
        np.arange(40),
        rng.integers(0, 5, size=40),
    )
    return hin


def direct_counts(hin: HIN, metapath: MetaPath) -> sp.csr_matrix:
    """Cache-free reference chain product (the seed algorithm)."""
    types = metapath.node_types
    product = hin.adjacency(types[0], types[1])
    for src, dst in zip(types[1:-1], types[2:]):
        product = sp.csr_matrix(product @ hin.adjacency(src, dst))
    product.sort_indices()
    return product


APA = MetaPath.parse("APA")
APCPA = MetaPath.parse("APCPA")


class TestExactEquivalence:
    def test_counts_match_direct_product(self):
        hin = dblp_like_hin()
        engine = get_engine(hin)
        for metapath in (APA, APCPA):
            expected = direct_counts(hin, metapath).toarray()
            np.testing.assert_allclose(
                engine.counts(metapath).toarray(), expected
            )
            np.testing.assert_allclose(
                engine.diagonal(metapath), np.diag(expected)
            )
            no_diag = expected.copy()
            np.fill_diagonal(no_diag, 0.0)
            np.testing.assert_allclose(
                engine.counts(metapath, remove_self_paths=True).toarray(),
                no_diag,
            )
            np.testing.assert_allclose(
                engine.binary(metapath).toarray(), (no_diag > 0).astype(float)
            )

    def test_half_path_matches_direct(self):
        hin = dblp_like_hin()
        direct = sp.csr_matrix(
            hin.adjacency("A", "P") @ hin.adjacency("P", "C")
        ).toarray()
        np.testing.assert_allclose(
            half_commuting_matrix(hin, APCPA).toarray(), direct
        )

    def test_pathsim_matches_reference_single(self):
        hin = dblp_like_hin()
        scores = pathsim_matrix(hin, APCPA)
        for u in range(5):
            for v in range(5):
                if u == v:
                    continue
                assert scores[u, v] == pytest.approx(
                    pathsim_single(hin, APCPA, u, v)
                )

    def test_all_measures_match_direct_formulas(self):
        hin = dblp_like_hin()
        counts = direct_counts(hin, APCPA).toarray()
        diag = np.diag(counts)
        n = counts.shape[0]

        # PathSim / JoinSim direct formulas.
        with np.errstate(divide="ignore", invalid="ignore"):
            arith = diag[:, None] + diag[None, :]
            ps = np.where(arith > 0, 2.0 * counts / arith, 0.0)
            geom = np.sqrt(np.outer(diag, diag))
            js = np.where(geom > 0, counts / geom, 0.0)
        np.fill_diagonal(ps, 0.0)
        np.fill_diagonal(js, 0.0)
        np.testing.assert_allclose(
            similarity_matrix(hin, APCPA, "pathsim").toarray(), ps
        )
        np.testing.assert_allclose(
            similarity_matrix(hin, APCPA, "joinsim").toarray(),
            np.clip(js, 0.0, 1.0),
        )

        # Cosine of commuting-matrix rows.
        norms = np.linalg.norm(counts, axis=1)
        safe = np.where(norms > 0, norms, 1.0)
        unit = counts / safe[:, None]
        cos = np.clip(unit @ unit.T, 0.0, 1.0)
        np.fill_diagonal(cos, 0.0)
        np.testing.assert_allclose(
            similarity_matrix(hin, APCPA, "cosine").toarray(), cos, atol=1e-12
        )

        # HeteSim: cosine of row-normalized half-path reachability.
        ap = hin.adjacency("A", "P").toarray()
        pc = hin.adjacency("P", "C").toarray()
        for hop in (ap, pc):
            sums = hop.sum(axis=1, keepdims=True)
            hop /= np.where(sums > 0, sums, 1.0)
        reach = ap @ pc
        norms = np.linalg.norm(reach, axis=1, keepdims=True)
        reach /= np.where(norms > 0, norms, 1.0)
        hs = np.clip(reach @ reach.T, 0.0, 1.0)
        np.fill_diagonal(hs, 0.0)
        np.testing.assert_allclose(
            similarity_matrix(hin, APCPA, "hetesim").toarray(), hs, atol=1e-12
        )
        assert n == hin.num_nodes("A")

    def test_top_k_matches_per_row_reference(self):
        """Vectorized top-k equals a per-row loop with deterministic ties.

        (The seed loop broke ties *at the k boundary* arbitrarily via
        ``argpartition``; the engine kernel always prefers the lower
        column id, so the reference here sorts by ``(-value, column)``.)
        """
        hin = dblp_like_hin()

        def reference_top_k(matrix, k):
            matrix = matrix.tocsr()
            result = []
            for row in range(matrix.shape[0]):
                start, stop = matrix.indptr[row], matrix.indptr[row + 1]
                cols = matrix.indices[start:stop]
                vals = matrix.data[start:stop]
                order = np.lexsort((cols, -vals))
                result.append(cols[order][:k])
            return result

        for measure in SIMILARITY_MEASURES:
            reference = similarity_matrix(hin, APCPA, measure)
            for k in (1, 3, 7, 100):
                expected = reference_top_k(reference, k)
                actual = top_k_similarity_neighbors(hin, APCPA, k, measure)
                assert len(actual) == len(expected)
                for got, want in zip(actual, expected):
                    np.testing.assert_array_equal(got, want)

    def test_pathsim_pairs_matches_matrix_lookup(self):
        hin = dblp_like_hin()
        rng = np.random.default_rng(1)
        n = hin.num_nodes("A")
        pairs = np.stack(
            [rng.integers(0, n, size=50), rng.integers(0, n, size=50)], axis=1
        )
        matrix = pathsim_matrix(hin, APCPA).toarray()
        expected = np.array(
            [0.0 if u == v else matrix[u, v] for u, v in pairs]
        )
        np.testing.assert_allclose(
            pathsim_pairs(hin, APCPA, pairs), expected
        )

    def test_wrappers_return_owned_copies(self):
        hin = dblp_like_hin()
        first = metapath_adjacency(hin, APA, remove_self_paths=False)
        first.data[:] = -1.0  # vandalize the returned copy
        second = metapath_adjacency(hin, APA, remove_self_paths=False)
        assert (second.data >= 0).all()
        binary = metapath_binary_adjacency(hin, APA)
        binary.data[:] = 7.0
        assert (metapath_binary_adjacency(hin, APA).data == 1.0).all()


class TestComposeOnce:
    def test_each_chain_composed_at_most_once(self):
        hin = dblp_like_hin()
        engine = get_engine(hin)
        nf = NeighborFilter(k=3)
        # Hammer every consumer that historically recomputed products.
        for _ in range(3):
            pathsim_matrix(hin, APCPA)
            similarity_matrix(hin, APCPA, "joinsim")
            similarity_matrix(hin, APCPA, "cosine")
            metapath_adjacency(hin, APCPA)
            metapath_binary_adjacency(hin, APCPA)
            half_commuting_matrix(hin, APCPA)
            nf.retained_pairs(hin, APCPA)
            pathsim_pairs(hin, APCPA, np.array([[0, 1], [2, 3]]))
        keys = engine.compose_log
        assert len(keys) == len(set(keys)), f"recomposed products: {keys}"

    def test_pathsim_and_joinsim_share_one_product(self):
        """The seed bug: counts and diagonal each ran the full chain."""
        hin = dblp_like_hin()
        engine = get_engine(hin)
        pathsim_matrix(hin, APCPA)
        composed_after_pathsim = len(engine.compose_log)
        similarity_matrix(hin, APCPA, "joinsim")
        pathsim_matrix(hin, APCPA)
        # JoinSim and a repeated PathSim add zero new compositions.
        assert len(engine.compose_log) == composed_after_pathsim
        assert len(engine.compose_log) == len(set(engine.compose_log))

    def test_prefix_shared_with_half_path(self):
        """Composing APCPA materializes the APC half; HeteSim/half reuse it."""
        hin = dblp_like_hin()
        engine = get_engine(hin)
        engine.counts(APCPA)
        before = len(engine.compose_log)
        engine.half(APCPA)
        assert len(engine.compose_log) == before
        assert ("A", "P", "C") in engine.compose_log

    def test_base_adjacency_cached(self):
        hin = dblp_like_hin()
        engine = get_engine(hin)
        calls = []
        original = HIN.adjacency

        def spy(self, src, dst):
            calls.append((src, dst))
            return original(self, src, dst)

        try:
            HIN.adjacency = spy
            for _ in range(4):
                engine.chain(APCPA)
                engine.counts(APA)
        finally:
            HIN.adjacency = original
        assert len(calls) == len(set(calls)), f"re-unioned relations: {calls}"

    def test_get_engine_is_shared_per_hin(self):
        hin = dblp_like_hin()
        assert get_engine(hin) is get_engine(hin)
        other = dblp_like_hin()
        assert get_engine(other) is not get_engine(hin)


class TestInvalidation:
    def test_mutation_bumps_version(self):
        hin = HIN()
        v0 = hin.version
        hin.add_node_type("X", 3)
        assert hin.version > v0
        v1 = hin.version
        hin.add_edges("e", "X", "X", [0, 1], [1, 2])
        assert hin.version > v1

    def test_add_edges_invalidates_cached_products(self):
        hin = dblp_like_hin()
        stale = pathsim_matrix(hin, APA).toarray()
        engine = get_engine(hin)
        assert engine.stats()["cached_products"] > 0

        # A new relation changes the A-P union adjacency, hence APA.
        rng = np.random.default_rng(99)
        hin.add_edges(
            "reviews", "A", "P",
            rng.integers(0, 20, size=30),
            rng.integers(0, 40, size=30),
        )
        fresh = pathsim_matrix(hin, APA).toarray()
        fresh_direct = CommutingEngine(hin)  # cache-free reference engine
        np.testing.assert_allclose(
            fresh, fresh_direct.similarity(APA, "pathsim").toarray()
        )
        assert not np.allclose(stale, fresh)

    def test_explicit_invalidate_clears_state(self):
        hin = dblp_like_hin()
        engine = get_engine(hin)
        engine.counts(APCPA)
        assert engine.stats()["cached_products"] > 0
        engine.invalidate()
        stats = engine.stats()
        assert stats["cached_products"] == 0
        assert stats["cached_views"] == 0
        assert stats["cached_base"] == 0


class TestVectorizedKernels:
    def test_drop_diagonal_preserves_csr_and_offdiagonal(self):
        rng = np.random.default_rng(3)
        dense = rng.random((12, 12))
        dense[dense < 0.6] = 0.0
        np.fill_diagonal(dense, rng.random(12))
        matrix = sp.csr_matrix(dense)
        dropped = drop_diagonal(matrix)
        assert isinstance(dropped, sp.csr_matrix)
        assert dropped.has_sorted_indices
        expected = dense.copy()
        np.fill_diagonal(expected, 0.0)
        np.testing.assert_allclose(dropped.toarray(), expected)
        assert dropped.nnz == (expected != 0).sum()  # structurally absent
        # Original untouched.
        np.testing.assert_allclose(matrix.toarray(), dense)

    def test_drop_diagonal_rectangular(self):
        matrix = sp.csr_matrix(np.arange(12, dtype=float).reshape(3, 4))
        dropped = drop_diagonal(matrix).toarray()
        expected = np.arange(12, dtype=float).reshape(3, 4)
        np.fill_diagonal(expected, 0.0)
        np.testing.assert_allclose(dropped, expected)

    def test_csr_row_topk_handles_empty_rows_and_ties(self):
        dense = np.array(
            [
                [0.0, 0.0, 0.0],
                [0.5, 0.5, 0.5],
                [0.1, 0.9, 0.0],
            ]
        )
        lists = csr_row_topk(sp.csr_matrix(dense), 2)
        np.testing.assert_array_equal(lists[0], [])
        np.testing.assert_array_equal(lists[1], [0, 1])  # ties by column id
        np.testing.assert_array_equal(lists[2], [1, 0])

    def test_csr_row_topk_rejects_bad_k(self):
        with pytest.raises(ValueError):
            csr_row_topk(sp.csr_matrix((2, 2)), 0)

    def test_csr_pair_values_hits_misses_and_bounds(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        matrix = sp.csr_matrix(dense)
        values = csr_pair_values(
            matrix, np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1])
        )
        np.testing.assert_allclose(values, [0.0, 2.0, 3.0, 0.0])
        with pytest.raises(IndexError):
            csr_pair_values(matrix, np.array([2]), np.array([0]))
        empty = csr_pair_values(
            sp.csr_matrix((3, 3)), np.array([0]), np.array([1])
        )
        np.testing.assert_allclose(empty, [0.0])
