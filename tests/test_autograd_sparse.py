"""Tests for the sparse-dense autograd bridge and graph normalizations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, gradcheck, sparse_matmul
from repro.autograd.sparse import normalize_adjacency, row_normalize


class TestSparseMatmul:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.matrix = sp.random(6, 4, density=0.5, random_state=0, format="csr")

    def test_forward_matches_dense(self):
        x = Tensor(self.rng.normal(size=(4, 3)))
        out = sparse_matmul(self.matrix, x)
        np.testing.assert_allclose(out.data, self.matrix.toarray() @ x.data)

    def test_backward_gradcheck(self):
        x = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda a: sparse_matmul(self.matrix, a), [x])

    def test_vector_operand(self):
        x = Tensor(self.rng.normal(size=4), requires_grad=True)
        out = sparse_matmul(self.matrix, x)
        assert out.shape == (6,)
        gradcheck(lambda a: sparse_matmul(self.matrix, a), [x])

    def test_rejects_dense_matrix(self):
        with pytest.raises(TypeError):
            sparse_matmul(np.eye(3), Tensor(np.ones((3, 2))))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            sparse_matmul(self.matrix, Tensor(np.ones((5, 2))))

    def test_grad_not_recorded_for_constant(self):
        x = Tensor(np.ones((4, 2)))
        out = sparse_matmul(self.matrix, x)
        assert not out.requires_grad


class TestNormalizeAdjacency:
    def test_symmetric_normalization_rows(self):
        adj = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        norm = normalize_adjacency(adj)  # A + I has degree 2 everywhere
        np.testing.assert_allclose(norm.toarray(), np.full((2, 2), 0.5))

    def test_without_self_loops(self):
        adj = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        norm = normalize_adjacency(adj, add_self_loops=False)
        np.testing.assert_allclose(norm.toarray(), [[0, 1], [1, 0]])

    def test_isolated_node_no_nan(self):
        adj = sp.csr_matrix((3, 3))
        norm = normalize_adjacency(adj, add_self_loops=False)
        assert np.all(np.isfinite(norm.toarray()))

    def test_self_loop_keeps_isolated_node_connected(self):
        adj = sp.csr_matrix((2, 2))
        norm = normalize_adjacency(adj, add_self_loops=True)
        np.testing.assert_allclose(norm.toarray(), np.eye(2))

    def test_spectral_radius_at_most_one(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((10, 10)) > 0.6).astype(float)
        dense = np.maximum(dense, dense.T)
        np.fill_diagonal(dense, 0)
        norm = normalize_adjacency(sp.csr_matrix(dense)).toarray()
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-9


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = sp.csr_matrix(np.array([[1, 3], [2, 2]], dtype=float))
        out = row_normalize(matrix).toarray()
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_zero_row_stays_zero(self):
        matrix = sp.csr_matrix(np.array([[0, 0], [1, 1]], dtype=float))
        out = row_normalize(matrix).toarray()
        np.testing.assert_allclose(out[0], [0.0, 0.0])
        np.testing.assert_allclose(out[1], [0.5, 0.5])

    def test_rectangular(self):
        matrix = sp.csr_matrix(np.ones((2, 5)))
        out = row_normalize(matrix).toarray()
        np.testing.assert_allclose(out, np.full((2, 5), 0.2))
