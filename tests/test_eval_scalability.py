"""Tests for the scalability measurement helpers."""

import numpy as np
import pytest

from repro.core.config import ConCHConfig
from repro.core.trainer import prepare_conch_data
from repro.data.dblp import DBLPConfig, make_dblp
from repro.eval.scalability import (
    ScalePoint,
    conch_scaling_sweep,
    format_scaling_table,
    growth_exponent,
    measure_epoch_seconds,
    total_instance_count,
)


def fast_config(**overrides) -> ConCHConfig:
    base = dict(
        context_dim=8,
        hidden_dim=8,
        out_dim=8,
        embed_num_walks=1,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=3,
    )
    base.update(overrides)
    return ConCHConfig(**base)


def tiny_dblp(scale: float = 1.0):
    return make_dblp(
        DBLPConfig(
            num_authors=max(40, int(60 * scale)),
            num_papers=max(120, int(200 * scale)),
            seed=7,
        )
    )


class TestEpochTiming:
    def test_positive_and_finite(self):
        config = fast_config()
        data = prepare_conch_data(tiny_dblp(), config)
        seconds = measure_epoch_seconds(data, config, epochs=2)
        assert 0 < seconds < 60

    def test_bad_epochs(self):
        config = fast_config()
        data = prepare_conch_data(tiny_dblp(), config)
        with pytest.raises(ValueError):
            measure_epoch_seconds(data, config, epochs=0)


class TestInstanceCount:
    def test_counts_positive(self):
        assert total_instance_count(tiny_dblp()) > 0

    def test_counts_grow_with_scale(self):
        small = total_instance_count(tiny_dblp(1.0))
        large = total_instance_count(tiny_dblp(3.0))
        assert large > small


class TestSweep:
    def test_sweep_shapes(self):
        points = conch_scaling_sweep(
            tiny_dblp, scales=[1.0, 2.0], config=fast_config(), epochs=2
        )
        assert len(points) == 2
        assert all(isinstance(p, ScalePoint) for p in points)
        assert points[1].num_targets > points[0].num_targets
        assert all(p.epoch_seconds > 0 for p in points)

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError):
            conch_scaling_sweep(tiny_dblp, scales=[], config=fast_config())

    def test_format_table(self):
        points = [
            ScalePoint(1.0, 100, 500, 0.1, 0.01, 2000),
            ScalePoint(2.0, 200, 1000, 0.2, 0.02, 4000),
        ]
        table = format_scaling_table(points)
        assert "targets" in table
        assert "200" in table
        assert len(table.splitlines()) == 4


class TestGrowthExponent:
    def test_linear_is_one(self):
        sizes = np.array([100, 200, 400, 800], dtype=float)
        assert growth_exponent(sizes, 0.003 * sizes) == pytest.approx(1.0)

    def test_quadratic_is_two(self):
        sizes = np.array([100, 200, 400], dtype=float)
        assert growth_exponent(sizes, 1e-6 * sizes**2) == pytest.approx(2.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            growth_exponent([1.0, 2.0], [0.0, 1.0])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            growth_exponent([1.0], [1.0])
