"""Tests for ConCH components: context features, conv layers, attention,
discriminator (Eqs. 2-13)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor
from repro.core import (
    BipartiteConv,
    Discriminator,
    NeighborConv,
    SemanticAttention,
    build_context_features,
    path_instance_embedding,
    shuffle_features,
)
from repro.core.bipartite_conv import neighbor_adjacency_from_pairs
from repro.core.context_features import context_embedding
from repro.core.discriminator import summary_vector
from repro.core.semantic_attention import EqualWeightFusion
from repro.hin import MetaPath, NeighborFilter, build_bipartite_graph
from repro.hin.context import MetaPathContext
from tests.test_hin_graph import movie_hin


class TestContextFeatures:
    def _embeddings(self):
        hin = movie_hin()
        rng = np.random.default_rng(0)
        return {t: rng.normal(size=(hin.num_nodes(t), 6)) for t in hin.node_types}

    def test_instance_embedding_is_mean(self):
        emb = self._embeddings()
        mp = MetaPath.parse("MAM")
        instance = (0, 1, 2)
        expected = (emb["M"][0] + emb["A"][1] + emb["M"][2]) / 3.0
        np.testing.assert_allclose(
            path_instance_embedding(instance, mp, emb), expected
        )

    def test_instance_length_mismatch(self):
        emb = self._embeddings()
        with pytest.raises(ValueError):
            path_instance_embedding((0, 1), MetaPath.parse("MAM"), emb)

    def test_context_embedding_is_mean_over_instances(self):
        emb = self._embeddings()
        mp = MetaPath.parse("MAM")
        ctx = MetaPathContext(u=0, v=1, instances=[(0, 0, 1), (0, 1, 1)])
        expected = 0.5 * (
            path_instance_embedding((0, 0, 1), mp, emb)
            + path_instance_embedding((0, 1, 1), mp, emb)
        )
        np.testing.assert_allclose(context_embedding(ctx, mp, emb, 6), expected)

    def test_empty_context_falls_back_to_endpoints(self):
        emb = self._embeddings()
        mp = MetaPath.parse("MAM")
        ctx = MetaPathContext(u=0, v=1, instances=[])
        expected = 0.5 * (emb["M"][0] + emb["M"][1])
        np.testing.assert_allclose(context_embedding(ctx, mp, emb, 6), expected)

    def test_build_features_matrix(self):
        hin = movie_hin()
        emb = self._embeddings()
        graph = build_bipartite_graph(
            hin, MetaPath.parse("MAM"), NeighborFilter(k=2),
            enumerate_instances=True,
        )
        feats = build_context_features(graph, emb)
        assert feats.shape == (graph.num_contexts, 6)
        assert np.all(np.isfinite(feats))

    def test_build_requires_instances(self):
        hin = movie_hin()
        graph = build_bipartite_graph(hin, MetaPath.parse("MAM"), NeighborFilter(k=2))
        with pytest.raises(ValueError):
            build_context_features(graph, self._embeddings())

    def test_missing_type_embeddings(self):
        hin = movie_hin()
        graph = build_bipartite_graph(
            hin, MetaPath.parse("MAM"), NeighborFilter(k=2),
            enumerate_instances=True,
        )
        with pytest.raises(KeyError):
            build_context_features(graph, {"M": np.zeros((4, 6))})


class TestBipartiteConv:
    def test_equations_with_identity_weights_gauss_seidel(self):
        """With W1..W4 = I, Eqs. 4-5 reduce to explicit sums we can check."""
        rng = np.random.default_rng(0)
        conv = BipartiteConv(2, 2, 2, rng)
        for name in ("w1", "w2", "w3", "w4"):
            getattr(conv, name).data[...] = np.eye(2)
        # Two objects, one context linking them.
        incidence = sp.csr_matrix(np.array([[1.0], [1.0]]))
        h_x = Tensor(np.array([[1.0, 0.0], [0.0, 2.0]]))
        h_c = Tensor(np.array([[3.0, 3.0]]))
        new_x, new_c = conv(incidence, h_x, h_c)
        # Eq. 4: ReLU((h_u + h_v) + h_c) = [1+0+3, 0+2+3] = [4, 5].
        np.testing.assert_allclose(new_c.data, [[4.0, 5.0]])
        # Eq. 5 (Gauss-Seidel: consumes the NEW context): ReLU(h_c' + h_x).
        np.testing.assert_allclose(new_x.data, [[5.0, 5.0], [4.0, 7.0]])

    def test_equations_with_identity_weights_jacobi(self):
        rng = np.random.default_rng(0)
        conv = BipartiteConv(2, 2, 2, rng, jacobi=True)
        for name in ("w1", "w2", "w3", "w4"):
            getattr(conv, name).data[...] = np.eye(2)
        incidence = sp.csr_matrix(np.array([[1.0], [1.0]]))
        h_x = Tensor(np.array([[1.0, 0.0], [0.0, 2.0]]))
        h_c = Tensor(np.array([[3.0, 3.0]]))
        new_x, new_c = conv(incidence, h_x, h_c)
        np.testing.assert_allclose(new_c.data, [[4.0, 5.0]])
        # Jacobi: object update uses the OLD context embedding.
        np.testing.assert_allclose(new_x.data, [[4.0, 3.0], [3.0, 5.0]])

    def test_output_shapes(self):
        rng = np.random.default_rng(0)
        conv = BipartiteConv(5, 3, 7, rng)
        incidence = sp.csr_matrix(np.ones((4, 2)))
        new_x, new_c = conv(incidence, Tensor(np.ones((4, 5))), Tensor(np.ones((2, 3))))
        assert new_x.shape == (4, 7)
        assert new_c.shape == (2, 7)

    def test_gradients_flow(self):
        rng = np.random.default_rng(0)
        conv = BipartiteConv(3, 3, 4, rng)
        incidence = sp.csr_matrix(np.array([[1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]))
        h_x = Tensor(rng.normal(size=(3, 3)))
        h_c = Tensor(rng.normal(size=(2, 3)))
        new_x, new_c = conv(incidence, h_x, h_c)
        (new_x.sum() + new_c.sum()).backward()
        for p in conv.parameters():
            assert p.grad is not None

    def test_empty_context_set(self):
        rng = np.random.default_rng(0)
        conv = BipartiteConv(3, 3, 4, rng)
        incidence = sp.csr_matrix((2, 0))
        new_x, new_c = conv(incidence, Tensor(np.ones((2, 3))), Tensor(np.zeros((0, 3))))
        assert new_x.shape == (2, 4)
        assert new_c.shape == (0, 4)

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        conv = BipartiteConv(3, 3, 4, rng)
        incidence = sp.csr_matrix((2, 5))
        with pytest.raises(ValueError):
            conv(incidence, Tensor(np.ones((2, 3))), Tensor(np.ones((4, 3))))

    def test_mean_vs_sum_aggregator(self):
        rng = np.random.default_rng(0)
        sum_conv = BipartiteConv(2, 2, 2, rng, aggregator="sum")
        mean_conv = BipartiteConv(2, 2, 2, np.random.default_rng(0), aggregator="mean")
        incidence = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        h_x = Tensor(np.ones((2, 2)))
        h_c = Tensor(np.ones((2, 2)))
        sum_x, _ = sum_conv(incidence, h_x, h_c)
        mean_x, _ = mean_conv(incidence, h_x, h_c)
        # Mean aggregation halves the context contribution (degree 2).
        assert sum_x.data.sum() != mean_x.data.sum()

    def test_invalid_aggregator(self):
        with pytest.raises(ValueError):
            BipartiteConv(2, 2, 2, np.random.default_rng(0), aggregator="max")


class TestNeighborConv:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        conv = NeighborConv(3, 5, rng)
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        out = conv(adj, Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)

    def test_adjacency_from_pairs(self):
        pairs = np.array([[0, 1], [1, 2]])
        adj = neighbor_adjacency_from_pairs(pairs, 4).toarray()
        assert adj[0, 1] == 1 and adj[1, 0] == 1
        assert adj[1, 2] == 1 and adj[2, 1] == 1
        assert adj[3].sum() == 0

    def test_adjacency_from_no_pairs(self):
        adj = neighbor_adjacency_from_pairs(np.empty((0, 2)), 3)
        assert adj.shape == (3, 3)
        assert adj.nnz == 0


class TestSemanticAttention:
    def test_weights_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        attn = SemanticAttention(4, 3, rng)
        paths = [Tensor(rng.normal(size=(5, 4))) for _ in range(3)]
        z, weights = attn(paths)
        assert z.shape == (5, 4)
        np.testing.assert_allclose(weights.sum(axis=1), np.ones(5))

    def test_single_path_passthrough(self):
        rng = np.random.default_rng(0)
        attn = SemanticAttention(4, 3, rng)
        h = Tensor(np.abs(rng.normal(size=(5, 4))))
        z, weights = attn([h])
        np.testing.assert_allclose(z.data, h.data)
        np.testing.assert_allclose(weights, np.ones((5, 1)))

    def test_empty_paths_rejected(self):
        rng = np.random.default_rng(0)
        attn = SemanticAttention(4, 3, rng)
        with pytest.raises(ValueError):
            attn([])

    def test_mean_weights_available_after_forward(self):
        rng = np.random.default_rng(0)
        attn = SemanticAttention(4, 3, rng)
        assert attn.mean_weights() is None
        paths = [Tensor(rng.normal(size=(5, 4))) for _ in range(2)]
        attn(paths)
        mean = attn.mean_weights()
        assert mean.shape == (2,)
        np.testing.assert_allclose(mean.sum(), 1.0)

    def test_attention_prefers_informative_path(self):
        """Train attention end-to-end: weight should shift to the useful path."""
        from repro.nn import Adam, cross_entropy

        rng = np.random.default_rng(0)
        labels = np.array([0, 0, 1, 1] * 5)
        signal = np.zeros((20, 4))
        signal[labels == 0, 0] = 2.0
        signal[labels == 1, 1] = 2.0
        noise = rng.normal(size=(20, 4))

        attn = SemanticAttention(4, 8, rng)
        from repro.nn import Linear

        head = Linear(4, 2, rng)
        params = attn.parameters() + head.parameters()
        optimizer = Adam(params, lr=0.05)
        for _ in range(150):
            optimizer.zero_grad()
            z, _ = attn([Tensor(signal), Tensor(noise)])
            loss = cross_entropy(head(z), labels)
            loss.backward()
            optimizer.step()
        mean = attn.mean_weights()
        assert mean[0] > 0.6

    def test_equal_weight_fusion(self):
        fusion = EqualWeightFusion()
        a = Tensor(np.full((3, 2), 2.0))
        b = Tensor(np.full((3, 2), 4.0))
        z, weights = fusion([a, b])
        np.testing.assert_allclose(z.data, np.full((3, 2), 3.0))
        np.testing.assert_allclose(weights, np.full((3, 2), 0.5))

    def test_equal_weight_empty_rejected(self):
        with pytest.raises(ValueError):
            EqualWeightFusion()([])


class TestDiscriminator:
    def test_summary_vector_is_mean(self):
        z = Tensor(np.array([[1.0, 3.0], [3.0, 5.0]]))
        np.testing.assert_allclose(summary_vector(z).data, [2.0, 4.0])

    def test_loss_positive_scalar(self):
        rng = np.random.default_rng(0)
        disc = Discriminator(4, rng)
        z_pos = Tensor(rng.normal(size=(6, 4)))
        z_neg = Tensor(rng.normal(size=(6, 4)))
        loss = disc.loss(z_pos, z_neg, summary_vector(z_pos))
        assert loss.data.size == 1
        assert loss.item() > 0

    def test_loss_decreases_with_training(self):
        from repro.nn import Adam

        rng = np.random.default_rng(0)
        disc = Discriminator(4, rng)
        z_pos = Tensor(rng.normal(size=(20, 4)) + 2.0)
        z_neg = Tensor(rng.normal(size=(20, 4)) - 2.0)
        summary = summary_vector(z_pos)
        optimizer = Adam(disc.parameters(), lr=0.05)
        first = disc.loss(z_pos, z_neg, summary).item()
        for _ in range(100):
            optimizer.zero_grad()
            loss = disc.loss(z_pos, z_neg, summary)
            loss.backward()
            optimizer.step()
        assert loss.item() < first

    def test_shuffle_features_permutes(self):
        rng = np.random.default_rng(0)
        feats = np.arange(20, dtype=float).reshape(10, 2)
        shuffled = shuffle_features(feats, rng)
        assert not np.array_equal(shuffled, feats)
        np.testing.assert_allclose(np.sort(shuffled, axis=0), np.sort(feats, axis=0))

    def test_shuffle_never_identity_for_small_n(self):
        feats = np.arange(4, dtype=float).reshape(2, 2)
        for seed in range(30):
            shuffled = shuffle_features(feats, np.random.default_rng(seed))
            assert not np.array_equal(shuffled, feats)
