"""Tests for contest-result statistics (aggregation, significance, wins)."""

import numpy as np
import pytest

from repro.eval.harness import ContestResult
from repro.eval.statistics import (
    PairwiseComparison,
    bootstrap_ci,
    compare_methods,
    count_wins,
    friedman_test,
    mean_ranks,
    mean_std,
    paired_t_test,
    scores_by_contest,
    wilcoxon_signed_rank,
    win_matrix,
)


def result(method, dataset, fraction, micro, macro=None):
    return ContestResult(
        method=method,
        dataset=dataset,
        train_fraction=fraction,
        micro_f1=micro,
        macro_f1=macro if macro is not None else micro,
    )


@pytest.fixture()
def panel():
    """Two datasets × two fractions; A always wins, B middles, C loses."""
    results = []
    for dataset, base in [("dblp", 0.9), ("yelp", 0.8)]:
        for fraction in (0.02, 0.2):
            results.append(result("A", dataset, fraction, base + 0.05))
            results.append(result("B", dataset, fraction, base))
            results.append(result("C", dataset, fraction, base - 0.1))
    return results


class TestAggregates:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std([1, 2, 3]))

    def test_mean_std_empty(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_bootstrap_ci_brackets_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.8, 0.02, size=50)
        low, high = bootstrap_ci(values, seed=1)
        assert low < values.mean() < high
        assert high - low < 0.05

    def test_bootstrap_ci_deterministic(self):
        values = [0.7, 0.72, 0.71, 0.69]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_bootstrap_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestSignificance:
    def test_paired_t_detects_clear_gap(self):
        a = [0.9, 0.91, 0.92, 0.9, 0.91]
        b = [0.8, 0.81, 0.8, 0.79, 0.82]
        statistic, p_value = paired_t_test(a, b)
        assert statistic > 0
        assert p_value < 0.01

    def test_paired_t_identical_is_degenerate(self):
        statistic, p_value = paired_t_test([0.5, 0.6], [0.5, 0.6])
        assert statistic == 0.0
        assert p_value == 1.0

    def test_paired_t_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_wilcoxon_detects_clear_gap(self):
        a = [0.9, 0.91, 0.92, 0.9, 0.91, 0.93, 0.9, 0.92]
        b = [0.8, 0.81, 0.8, 0.79, 0.82, 0.8, 0.81, 0.8]
        _, p_value = wilcoxon_signed_rank(a, b)
        assert p_value < 0.05

    def test_friedman_rejects_on_consistent_ranking(self):
        rng = np.random.default_rng(0)
        contests = 12
        scores = np.column_stack(
            [
                rng.normal(0.9, 0.01, contests),
                rng.normal(0.8, 0.01, contests),
                rng.normal(0.7, 0.01, contests),
            ]
        )
        statistic, p_value = friedman_test(scores)
        assert p_value < 0.01

    def test_friedman_needs_three_methods(self):
        with pytest.raises(ValueError):
            friedman_test(np.ones((5, 2)))

    def test_mean_ranks_ordering(self):
        scores = np.array([[0.9, 0.8, 0.7], [0.95, 0.85, 0.6]])
        ranks = mean_ranks(scores)
        assert ranks[0] == pytest.approx(1.0)
        assert ranks[2] == pytest.approx(3.0)

    def test_mean_ranks_ties_share(self):
        ranks = mean_ranks(np.array([[0.5, 0.5, 0.1]]))
        assert ranks[0] == ranks[1] == pytest.approx(1.5)


class TestContestBookkeeping:
    def test_scores_by_contest_pivot(self, panel):
        table = scores_by_contest(panel)
        assert set(table) == {"dblp@2%", "dblp@20%", "yelp@2%", "yelp@20%"}
        assert table["dblp@2%"]["A"] == pytest.approx(0.95)

    def test_scores_by_contest_bad_metric(self, panel):
        with pytest.raises(ValueError):
            scores_by_contest(panel, metric="auc")

    def test_count_wins(self, panel):
        wins = count_wins(panel)
        assert wins["A"] == 4
        assert wins["B"] == 0
        assert wins["C"] == 0

    def test_count_wins_with_tolerance(self, panel):
        wins = count_wins(panel, tie_tolerance=0.06)
        assert wins["A"] == 4
        assert wins["B"] == 4   # within 0.05 of A everywhere
        assert wins["C"] == 0

    def test_compare_methods(self, panel):
        comparison = compare_methods(panel, "A", "C")
        assert isinstance(comparison, PairwiseComparison)
        assert comparison.contests == 4
        assert comparison.wins_a == 4
        assert comparison.wins_b == 0
        assert comparison.mean_gap == pytest.approx(0.15)

    def test_compare_methods_no_overlap(self, panel):
        with pytest.raises(ValueError):
            compare_methods(panel, "A", "Z")

    def test_win_matrix(self, panel):
        methods, matrix = win_matrix(panel)
        a, b, c = (methods.index(m) for m in ("A", "B", "C"))
        assert matrix[a, b] == 4 and matrix[a, c] == 4
        assert matrix[b, a] == 0 and matrix[b, c] == 4
        assert np.trace(matrix) == 0

    def test_win_matrix_antisymmetric_total(self, panel):
        # i-beats-j and j-beats-i cannot both count the same contest.
        methods, matrix = win_matrix(panel)
        n_contests = 4
        for i in range(len(methods)):
            for j in range(len(methods)):
                if i != j:
                    assert matrix[i, j] + matrix[j, i] <= n_contests
