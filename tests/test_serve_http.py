"""The HTTP tier: wire-fidelity, errors, hot cache, adaptive batching.

What must hold:

1. **Wire equivalence** — answers over HTTP are *bit-identical* to
   in-process :meth:`ModelHandle.predict_nodes` /
   ``predict_proba_nodes`` (JSON doubles round-trip exactly via
   shortest-repr), empty batches keep their ``(0, C)`` shape, and
   concurrent fan-out through :class:`HttpServeClient.predict_many`
   still matches per-request sequential answers.
2. **Error fidelity** — a bad request over HTTP raises the *same*
   exception type with the *same message* as the in-process path;
   load-shed maps to 503 and comes back as
   :class:`ServerOverloaded`, driving the client's bounded retry.
3. **Hot-query cache** — repeats hit (``cache_hits``), labels and
   proba key separately, hits return private copies, and ``ingest``'s
   generation swap atomically invalidates the cache.
4. **Adaptive micro-batching** — the effective wait follows the
   documented law (cap with no signal, scaled inter-arrival when busy,
   zero when sparse) and the end-to-end answers stay equivalent.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.api import ConCHEstimator, ModelHandle
from repro.core import ConCHConfig
from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.hin.graph import EdgeDelta
from repro.serve import (
    HttpServeClient,
    HttpServer,
    ModelServer,
    ServerOverloaded,
)


@pytest.fixture(scope="module")
def dblp_tiny():
    return load_dataset(
        "dblp",
        config=DBLPConfig(num_authors=80, num_papers=250, num_conferences=8),
    )


@pytest.fixture(scope="module")
def tiny_config():
    return ConCHConfig(
        k=3,
        num_layers=2,
        context_dim=8,
        embed_num_walks=2,
        embed_walk_length=8,
        embed_epochs=1,
        epochs=8,
        patience=5,
    )


@pytest.fixture(scope="module")
def bundle_path(dblp_tiny, tiny_config, tmp_path_factory):
    split = stratified_split(dblp_tiny.labels, 0.2, seed=0)
    estimator = ConCHEstimator(
        api.Pipeline(dblp_tiny, config=tiny_config).data, tiny_config
    ).fit(split)
    path = tmp_path_factory.mktemp("bundle") / "conch.npz"
    estimator.save(path)
    return path


@pytest.fixture(scope="module")
def handle(bundle_path):
    return ModelHandle.load(bundle_path)


@pytest.fixture()
def http_stack(handle):
    """A fresh server + facade + client per test (clean counters)."""
    server = ModelServer(
        handle,
        max_batch_size=16,
        max_wait_ms=1,
        max_queue=64,
        num_workers=2,
        hot_cache_size=32,
    ).start()
    http = HttpServer(server).start()
    client = HttpServeClient(http.url, timeout=30.0)
    yield server, http, client
    http.stop()
    server.stop()


def request_mix(handle, count: int = 24):
    """A deterministic spread of request shapes (sizes 1..5, dups)."""
    rng = np.random.default_rng(7)
    requests = []
    for index in range(count):
        size = 1 + index % 5
        ids = rng.integers(0, handle.num_objects, size=size)
        if index % 3 == 0 and size > 1:
            ids[-1] = ids[0]
        requests.append(ids.astype(np.int64))
    return requests


# ---------------------------------------------------------------------- #
# 1. Wire equivalence
# ---------------------------------------------------------------------- #


class TestWireEquivalence:
    def test_labels_bit_identical(self, http_stack, handle):
        _, _, client = http_stack
        for ids in request_mix(handle, 12):
            np.testing.assert_array_equal(
                client.predict_nodes(ids), handle.predict_nodes(ids)
            )

    def test_proba_bit_identical(self, http_stack, handle):
        # Sequential single requests form batches of one, and JSON
        # doubles round-trip via shortest-repr: exact equality, no rtol.
        _, _, client = http_stack
        for ids in request_mix(handle, 8):
            np.testing.assert_array_equal(
                client.predict_proba_nodes(ids),
                handle.predict_proba_nodes(ids),
            )

    def test_empty_request_keeps_shapes(self, http_stack, handle):
        _, _, client = http_stack
        labels = client.predict_nodes([])
        assert labels.shape == (0,)
        assert labels.dtype == np.int64
        proba = client.predict_proba_nodes([])
        assert proba.shape == (0, handle.data.num_classes)
        assert proba.dtype == np.float64

    def test_concurrent_fanout_matches_handle(self, http_stack, handle):
        server, _, client = http_stack
        requests = request_mix(handle, 16)
        results = client.predict_many(requests)
        for ids, result in zip(requests, results):
            np.testing.assert_array_equal(result, handle.predict_nodes(ids))
        assert server.stats()["batches"] >= 1

    def test_answers_carry_the_generation_tag(self, http_stack, handle):
        _, _, client = http_stack
        body = client._request("POST", "/predict", {"ids": [1]})
        assert body["generation"] == handle.generation


# ---------------------------------------------------------------------- #
# 2. Error fidelity
# ---------------------------------------------------------------------- #


class TestErrorFidelity:
    def test_out_of_range_message_identical(self, http_stack, handle):
        _, _, client = http_stack
        bad = np.array([handle.num_objects + 5])
        with pytest.raises(IndexError) as over_wire:
            client.predict_nodes(bad)
        with pytest.raises(IndexError) as in_process:
            handle.predict_nodes(bad)
        assert str(over_wire.value) == str(in_process.value)

    def test_float_ids_message_identical(self, http_stack, handle):
        # The facade hands JSON-decoded ids to submit undigested, so the
        # float reaches the same check_ids and raises the same TypeError.
        _, _, client = http_stack
        with pytest.raises(TypeError) as over_wire:
            client.predict_nodes([1.5, 2.5])
        with pytest.raises(TypeError) as in_process:
            handle.predict_nodes([1.5, 2.5])
        assert str(over_wire.value) == str(in_process.value)

    def test_unknown_route_is_404(self, http_stack):
        _, _, client = http_stack
        with pytest.raises(LookupError, match="no route"):
            client._request("GET", "/nope")

    def test_malformed_json_is_400(self, http_stack):
        _, http, _ = http_stack
        request = urllib.request.Request(
            http.url + "/predict", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400
        payload = json.loads(err.value.read().decode("utf-8"))
        assert payload["error"]["type"] == "ValueError"

    def test_missing_ids_field_is_400(self, http_stack):
        _, _, client = http_stack
        with pytest.raises(ValueError, match='"ids"'):
            client._request("POST", "/predict", {"nodes": [1]})

    def test_overload_is_503_and_client_retries(self, http_stack, monkeypatch):
        server, _, client = http_stack
        original = server.submit
        state = {"rejections": 2}

        def flaky(ids, proba=False):
            if state["rejections"] > 0:
                state["rejections"] -= 1
                raise ServerOverloaded("request queue full (64 pending)")
            return original(ids, proba=proba)

        monkeypatch.setattr(server, "submit", flaky)
        result = client.predict_nodes([1])
        np.testing.assert_array_equal(
            result, server.handle.predict_nodes(np.array([1]))
        )
        assert client.retried == 2
        assert client.dropped == 0

    def test_overload_exhausts_retries_as_server_overloaded(
        self, http_stack, monkeypatch
    ):
        server, http, _ = http_stack

        def always_shed(ids, proba=False):
            raise ServerOverloaded("request queue full (64 pending)")

        monkeypatch.setattr(server, "submit", always_shed)
        client = HttpServeClient(http.url, retries=1, backoff_s=0.001)
        with pytest.raises(ServerOverloaded, match="queue full"):
            client.predict_nodes([1])
        assert client.dropped == 1

    def test_stats_and_health_over_the_wire(self, http_stack):
        _, _, client = http_stack
        client.predict_nodes([1])
        stats = client.stats()
        for key in (
            "requests",
            "answered",
            "cache_hits",
            "hot_cache_entries",
            "effective_wait_ms",
            "throughput_rps",
        ):
            assert key in stats
        assert stats["requests"] >= 1
        assert client.healthz()


# ---------------------------------------------------------------------- #
# 3. Hot-query cache
# ---------------------------------------------------------------------- #


class TestHotCache:
    def test_repeat_hits_and_kind_isolation(self, http_stack, handle):
        server, _, client = http_stack
        ids = [4, 9]
        first = client.predict_nodes(ids)
        second = client.predict_nodes(ids)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, handle.predict_nodes(ids))
        assert server.stats()["cache_hits"] == 1
        # proba keys separately: same ids, no cross-kind hit…
        proba = client.predict_proba_nodes(ids)
        np.testing.assert_array_equal(proba, handle.predict_proba_nodes(ids))
        assert server.stats()["cache_hits"] == 1
        # …but the proba repeat now hits its own entry.
        client.predict_proba_nodes(ids)
        assert server.stats()["cache_hits"] == 2

    def test_cache_returns_private_copies(self, handle):
        server = ModelServer(handle, max_wait_ms=0, hot_cache_size=8).start()
        try:
            first = server.predict_nodes([3], timeout=10.0)
            first[:] = -1  # vandalize the caller's copy
            again = server.predict_nodes([3], timeout=10.0)
            np.testing.assert_array_equal(
                again, handle.predict_nodes(np.array([3]))
            )
        finally:
            server.stop()

    def test_eviction_respects_capacity(self, handle):
        server = ModelServer(handle, max_wait_ms=0, hot_cache_size=4).start()
        try:
            for node in range(10):
                server.predict_nodes([node], timeout=10.0)
            assert server.stats()["hot_cache_entries"] == 4
        finally:
            server.stop()

    def test_default_off(self, handle):
        server = ModelServer(handle, max_wait_ms=0).start()
        try:
            server.predict_nodes([1], timeout=10.0)
            server.predict_nodes([1], timeout=10.0)
            stats = server.stats()
            assert stats["cache_hits"] == 0
            assert stats["hot_cache_entries"] == 0
        finally:
            server.stop()


# ---------------------------------------------------------------------- #
# 4. Live ingest over HTTP (generation swap + cache invalidation)
# ---------------------------------------------------------------------- #


class TestHttpIngest:
    @pytest.fixture(scope="class")
    def live_stack(self, tiny_config):
        # A private dataset twin: ingest mutates the graph, so the
        # module-scoped fixtures must not be shared into this class.
        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(
                num_authors=80, num_papers=250, num_conferences=8
            ),
        )
        pipeline = api.Pipeline(dataset, config=tiny_config)
        split = stratified_split(dataset.labels, 0.2, seed=0)
        estimator = ConCHEstimator(pipeline.data, tiny_config).fit(split)
        handle = ModelHandle(pipeline.data, tiny_config, estimator.trainer.model)
        server = ModelServer(
            handle, max_wait_ms=1, hot_cache_size=32, pipeline=pipeline
        ).start()
        http = HttpServer(server).start()
        client = HttpServeClient(http.url)
        yield server, http, client, pipeline
        http.stop()
        server.stop()

    def test_ingest_bumps_generation_and_clears_cache(self, live_stack):
        server, _, client, pipeline = live_stack
        ids = [2, 7]
        client.predict_nodes(ids)
        client.predict_nodes(ids)
        assert server.stats()["cache_hits"] == 1
        assert server.stats()["hot_cache_entries"] >= 1
        generation_before = server.handle.generation
        summary = client.ingest(EdgeDelta.additions("writes", [0, 1], [3, 4]))
        assert summary["generation"] == generation_before + 1
        assert summary["graph_version"] == pipeline.dataset.hin.version
        assert summary["stages"]  # the patched stage actions, as pairs
        assert server.stats()["hot_cache_entries"] == 0
        # Post-swap answers come from the new generation and agree with
        # the in-process path over the mutated graph.
        after = client.predict_nodes(ids)
        np.testing.assert_array_equal(
            after, server.handle.predict_nodes(np.array(ids))
        )
        body = client._request("POST", "/predict", {"ids": [1]})
        assert body["generation"] == generation_before + 1


# ---------------------------------------------------------------------- #
# 5. Adaptive micro-batching
# ---------------------------------------------------------------------- #


class TestAdaptiveWait:
    def test_effective_wait_law(self, handle):
        server = ModelServer(
            handle, max_batch_size=32, max_wait_ms=50.0, adaptive_wait=True
        )
        # No traffic signal yet: fall back to the configured cap.
        assert server._effective_wait_s() == pytest.approx(0.05)
        with server._lock:
            server._arrival_ewma_s = 0.001
        # Busy: wait ≈ (batch-1) gaps = 31 ms, still under the cap.
        assert server._effective_wait_s() == pytest.approx(0.031)
        with server._lock:
            server._arrival_ewma_s = 0.004
        # The derived wait saturates at the cap.
        assert server._effective_wait_s() == pytest.approx(0.05)
        with server._lock:
            server._arrival_ewma_s = 0.2
        # Sparse: no companion can arrive inside the cap — serve now.
        assert server._effective_wait_s() == 0.0

    def test_static_mode_ignores_the_signal(self, handle):
        server = ModelServer(handle, max_wait_ms=5.0)
        with server._lock:
            server._arrival_ewma_s = 0.5
        assert server._effective_wait_s() == pytest.approx(0.005)

    def test_adaptive_end_to_end_equivalence(self, handle):
        server = ModelServer(
            handle, max_wait_ms=2, adaptive_wait=True, num_workers=2
        ).start()
        try:
            requests = request_mix(handle, 10)
            futures = [server.submit(ids) for ids in requests]
            for ids, future in zip(requests, futures):
                np.testing.assert_array_equal(
                    future.result(10.0), handle.predict_nodes(ids)
                )
            stats = server.stats()
            assert stats["adaptive_wait"] is True
            assert stats["interarrival_ewma_ms"] is not None
            assert stats["effective_wait_ms"] <= 2.0
        finally:
            server.stop()
