"""Tests for the markdown report generator."""

import pytest

from repro.eval.harness import ContestResult
from repro.eval.reporting import (
    markdown_pairwise_section,
    markdown_report,
    markdown_score_table,
    markdown_win_summary,
)


def result(method, dataset, fraction, micro):
    return ContestResult(
        method=method,
        dataset=dataset,
        train_fraction=fraction,
        micro_f1=micro,
        macro_f1=micro,
    )


@pytest.fixture()
def panel():
    rows = []
    for fraction, a, b in [(0.02, 0.95, 0.90), (0.20, 0.97, 0.96)]:
        rows.append(result("ConCH", "dblp", fraction, a))
        rows.append(result("HAN", "dblp", fraction, b))
    return rows


class TestScoreTable:
    def test_structure(self, panel):
        table = markdown_score_table(panel)
        lines = table.splitlines()
        assert lines[0].startswith("| method |")
        assert "dblp@2%" in lines[0] and "dblp@20%" in lines[0]
        assert len(lines) == 4  # header + separator + 2 methods

    def test_winner_bolded(self, panel):
        table = markdown_score_table(panel)
        assert "**0.9500**" in table
        assert "**0.9000**" not in table

    def test_no_bold_option(self, panel):
        table = markdown_score_table(panel, bold_winners=False)
        assert "**" not in table

    def test_missing_cell_rendered(self, panel):
        panel.append(result("MAGNN", "dblp", 0.02, 0.93))  # absent at 20%
        table = markdown_score_table(panel)
        magnn_row = next(l for l in table.splitlines() if "MAGNN" in l)
        assert "—" in magnn_row

    def test_contests_sorted_by_fraction(self, panel):
        header = markdown_score_table(panel).splitlines()[0]
        assert header.index("dblp@2%") < header.index("dblp@20%")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            markdown_score_table([])


class TestWinSummary:
    def test_counts(self, panel):
        summary = markdown_win_summary(panel)
        assert "**ConCH**: 2/2" in summary
        assert "**HAN**: 0/2" in summary

    def test_tie_tolerance(self, panel):
        summary = markdown_win_summary(panel, tie_tolerance=0.02)
        assert "**HAN**: 1/2" in summary


class TestPairwiseSection:
    def test_structure(self, panel):
        section = markdown_pairwise_section(panel, "ConCH")
        lines = section.splitlines()
        assert lines[0].startswith("| ConCH vs |")
        assert any("HAN" in line for line in lines[2:])
        assert "+0.0300" in section  # mean gap

    def test_unknown_reference(self, panel):
        with pytest.raises(ValueError):
            markdown_pairwise_section(panel, "Nobody")


class TestFullReport:
    def test_contains_all_sections(self, panel):
        report = markdown_report(panel, "Table I analogue", reference="ConCH")
        assert report.startswith("# Table I analogue")
        assert "| method |" in report
        assert "Contests won" in report
        assert "| ConCH vs |" in report
        assert report.endswith("\n")

    def test_reference_optional(self, panel):
        report = markdown_report(panel, "T")
        assert "| ConCH vs |" not in report
