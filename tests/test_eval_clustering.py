"""Tests for k-means and the clustering agreement metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.clustering import (
    adjusted_rand_index,
    clustering_report,
    kmeans,
    normalized_mutual_information,
    purity,
    silhouette_score,
)

labelings = st.lists(st.integers(0, 4), min_size=2, max_size=60)


class TestNMI:
    def test_identical_is_one(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_ids_is_one(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_constant_vs_varied_is_zero(self):
        a = np.zeros(6, dtype=int)
        b = np.array([0, 1, 0, 1, 0, 1])
        assert normalized_mutual_information(a, b) == 0.0

    def test_both_constant_is_one(self):
        a = np.zeros(5, dtype=int)
        b = np.ones(5, dtype=int) * 3
        assert normalized_mutual_information(a, b) == 1.0

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, size=5000)
        b = rng.integers(0, 3, size=5000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.zeros(3, int), np.zeros(4, int))

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([-1, 0]), np.array([0, 1]))

    @settings(max_examples=40, deadline=None)
    @given(labelings, st.integers(0, 10))
    def test_symmetric(self, labels, shift):
        a = np.array(labels)
        b = np.roll(a, shift)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    @settings(max_examples=40, deadline=None)
    @given(labelings)
    def test_bounded_and_self_perfect(self, labels):
        a = np.array(labels)
        value = normalized_mutual_information(a, a)
        assert value == pytest.approx(1.0)
        b = np.zeros_like(a)
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0


class TestARI:
    def test_identical_is_one(self):
        labels = np.array([0, 1, 1, 0, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([1, 1, 2, 2, 0, 0])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=5000)
        b = rng.integers(0, 4, size=5000)
        assert abs(adjusted_rand_index(a, b)) < 0.01

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0]), np.array([0]))

    @settings(max_examples=40, deadline=None)
    @given(labelings, st.integers(0, 10))
    def test_symmetric_and_bounded_above(self, labels, shift):
        a = np.array(labels)
        b = np.roll(a, shift)
        forward = adjusted_rand_index(a, b)
        backward = adjusted_rand_index(b, a)
        assert forward == pytest.approx(backward)
        assert forward <= 1.0 + 1e-12


class TestPurity:
    def test_perfect_clusters(self):
        truth = np.array([0, 0, 1, 1])
        clusters = np.array([1, 1, 0, 0])
        assert purity(truth, clusters) == 1.0

    def test_single_cluster_majority(self):
        truth = np.array([0, 0, 0, 1])
        clusters = np.zeros(4, dtype=int)
        assert purity(truth, clusters) == pytest.approx(0.75)

    @settings(max_examples=40, deadline=None)
    @given(labelings)
    def test_bounds(self, labels):
        truth = np.array(labels)
        clusters = np.arange(truth.size)  # singleton clusters: purity 1
        assert purity(truth, clusters) == 1.0
        num_classes = truth.max() + 1
        constant = np.zeros_like(truth)
        assert purity(truth, constant) >= 1.0 / max(1, num_classes)


class TestKMeans:
    def blobs(self, seed=0, per=30, centers=((0, 0), (10, 10), (-10, 10))):
        rng = np.random.default_rng(seed)
        points, truth = [], []
        for index, center in enumerate(centers):
            points.append(rng.normal(0, 0.5, size=(per, 2)) + np.array(center))
            truth.extend([index] * per)
        return np.concatenate(points), np.array(truth)

    def test_recovers_separated_blobs(self):
        points, truth = self.blobs()
        result = kmeans(points, 3, seed=0)
        assert normalized_mutual_information(truth, result.labels) == pytest.approx(1.0)
        assert adjusted_rand_index(truth, result.labels) == pytest.approx(1.0)

    def test_inertia_zero_when_k_equals_n(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_center_is_mean(self):
        points, _ = self.blobs()
        result = kmeans(points, 1, seed=0)
        assert np.allclose(result.centers[0], points.mean(axis=0))

    def test_all_clusters_populated(self):
        points, _ = self.blobs()
        result = kmeans(points, 5, seed=3)
        assert np.unique(result.labels).size == 5

    def test_deterministic_for_seed(self):
        points, _ = self.blobs()
        a = kmeans(points, 3, seed=7)
        b = kmeans(points, 3, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_rejects_bad_k(self):
        points = np.zeros((4, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    def test_more_restarts_never_hurt_inertia(self):
        points, _ = self.blobs(seed=2, per=20)
        one = kmeans(points, 4, seed=5, n_init=1)
        many = kmeans(points, 4, seed=5, n_init=8)
        assert many.inertia <= one.inertia + 1e-9


class TestSilhouette:
    def test_well_separated_blobs_score_high(self):
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [rng.normal(0, 0.2, size=(20, 2)), rng.normal(10, 0.2, size=(20, 2))]
        )
        labels = np.repeat([0, 1], 20)
        assert silhouette_score(points, labels) > 0.9

    def test_bad_assignment_scores_negative(self):
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [rng.normal(0, 0.2, size=(20, 2)), rng.normal(10, 0.2, size=(20, 2))]
        )
        # Swap half of each blob into the other cluster.
        labels = np.repeat([0, 1], 20)
        labels[:10] = 1
        labels[20:30] = 0
        assert silhouette_score(points, labels) < 0.1

    def test_bounded(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 3))
        labels = rng.integers(0, 3, size=30)
        if np.unique(labels).size < 2:
            labels[0] = (labels[0] + 1) % 3
        value = silhouette_score(points, labels)
        assert -1.0 <= value <= 1.0

    def test_singleton_clusters_score_zero(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0], [5.1, 5.1]])
        labels = np.array([0, 1, 1])
        # Point 0 is a singleton (contributes 0); the pair scores high.
        value = silhouette_score(points, labels)
        assert 0.0 < value < 1.0

    def test_rejects_single_cluster(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(4, dtype=int))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((4, 2)), np.zeros(3, dtype=int))


class TestClusteringReport:
    def test_report_on_separable_embeddings(self):
        rng = np.random.default_rng(0)
        truth = np.repeat(np.arange(3), 25)
        prototypes = np.eye(3) * 8.0
        embeddings = prototypes[truth] + rng.normal(0, 0.3, size=(75, 3))
        report = clustering_report(embeddings, truth, 3, seed=0)
        assert report["nmi"] > 0.95
        assert report["ari"] > 0.95
        assert report["purity"] > 0.95
        assert report["inertia"] > 0.0

    def test_rejects_misaligned_inputs(self):
        with pytest.raises(ValueError):
            clustering_report(np.zeros((4, 2)), np.zeros(5, int), 2)
