"""Tests for metrics, tables, timing, and the contest harness."""

import numpy as np
import pytest

from repro.data import DBLPConfig, load_dataset, stratified_split
from repro.eval import (
    ContestResult,
    ConvergenceRecorder,
    accuracy,
    confusion_matrix,
    f1_scores,
    format_contest_table,
    format_table,
    macro_f1,
    micro_f1,
    run_contest,
    run_method_on_split,
    summarize_results,
)
from repro.eval.harness import MethodOutput


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1])
        assert micro_f1(y, y) == 1.0
        assert macro_f1(y, y) == 1.0
        assert accuracy(y, y) == 1.0

    def test_micro_equals_accuracy_single_label(self):
        y_true = np.array([0, 1, 2, 0, 1])
        y_pred = np.array([0, 2, 2, 0, 0])
        assert micro_f1(y_true, y_pred) == accuracy(y_true, y_pred)

    def test_confusion_matrix_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(y_true, y_pred)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_f1_hand_computed(self):
        # Class 0: precision 1/1, recall 1/2 -> F1 = 2/3.
        # Class 1: precision 2/3, recall 2/2 -> F1 = 0.8.
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        scores = f1_scores(y_true, y_pred)
        np.testing.assert_allclose(scores, [2 / 3, 0.8])
        assert macro_f1(y_true, y_pred) == pytest.approx((2 / 3 + 0.8) / 2)

    def test_absent_class_counts_as_zero(self):
        y_true = np.array([0, 0])
        y_pred = np.array([0, 0])
        assert macro_f1(y_true, y_pred, num_classes=3) == pytest.approx(1.0 / 3)

    def test_never_predicted_class(self):
        y_true = np.array([0, 1])
        y_pred = np.array([0, 0])
        scores = f1_scores(y_true, y_pred)
        assert scores[1] == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            micro_f1(np.array([0, 1]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            micro_f1(np.array([]), np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            micro_f1(np.zeros((2, 2), dtype=int), np.zeros((2, 2), dtype=int))


class TestRecorder:
    def test_records_accumulate(self):
        recorder = ConvergenceRecorder(method="x")
        recorder.start()
        recorder.log(0, 1.0, 0.5)
        recorder.log(1, 0.5, 0.7)
        assert len(recorder.records) == 2
        assert recorder.best_val == 0.7
        assert recorder.total_seconds >= 0

    def test_time_to_reach(self):
        recorder = ConvergenceRecorder()
        recorder.start()
        recorder.log(0, 1.0, 0.3)
        recorder.log(1, 0.5, 0.8)
        assert recorder.time_to_reach(0.5) is not None
        assert recorder.time_to_reach(0.99) is None

    def test_curve_pairs(self):
        recorder = ConvergenceRecorder()
        recorder.start()
        recorder.log(0, 1.0, 0.4)
        curve = recorder.curve()
        assert len(curve) == 1
        assert curve[0][1] == 0.4

    def test_empty_recorder(self):
        recorder = ConvergenceRecorder()
        assert recorder.total_seconds == 0.0
        assert np.isnan(recorder.best_val)


class TestTables:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1.5, "x"], [2.25, "y"]])
        assert "1.5000" in text
        assert "x" in text

    def test_format_table_title(self):
        text = format_table(["a"], [[1.0]], title="Table I")
        assert text.startswith("Table I")

    def test_contest_table_marks_winner(self):
        results = {
            "m1": {"c1": 0.9, "c2": 0.5},
            "m2": {"c1": 0.8, "c2": 0.7},
        }
        text = format_contest_table(results, ["m1", "m2"], ["c1", "c2"])
        assert "0.9000*" in text
        assert "0.7000*" in text

    def test_contest_table_missing_cell(self):
        results = {"m1": {"c1": 0.9}}
        text = format_contest_table(results, ["m1", "m2"], ["c1"])
        assert "-" in text


def _oracle_method(dataset, split, seed):
    """A fake method that predicts perfectly (for harness plumbing tests)."""
    return MethodOutput(test_predictions=dataset.labels[split.test].copy())


def _chance_method(dataset, split, seed):
    rng = np.random.default_rng(seed)
    return MethodOutput(
        test_predictions=rng.integers(0, dataset.num_classes, size=split.test.size)
    )


def _bad_shape_method(dataset, split, seed):
    return MethodOutput(test_predictions=np.zeros(3, dtype=int))


class TestHarness:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset(
            "dblp", config=DBLPConfig(num_authors=60, num_papers=200, num_conferences=8)
        )

    def test_run_method_on_split(self, dataset):
        split = stratified_split(dataset.labels, 0.2)
        scores = run_method_on_split(_oracle_method, dataset, split)
        assert scores["micro_f1"] == 1.0
        assert scores["seconds"] >= 0

    def test_bad_prediction_shape_rejected(self, dataset):
        split = stratified_split(dataset.labels, 0.2)
        with pytest.raises(ValueError):
            run_method_on_split(_bad_shape_method, dataset, split)

    def test_run_contest_grid(self, dataset):
        results = run_contest(
            {"oracle": _oracle_method, "chance": _chance_method},
            dataset,
            train_fractions=[0.1, 0.2],
            repeats=2,
        )
        assert len(results) == 4  # 2 methods x 2 fractions
        oracle = [r for r in results if r.method == "oracle"]
        assert all(r.micro_f1 == 1.0 for r in oracle)
        chance = [r for r in results if r.method == "chance"]
        assert all(r.micro_f1 < 0.6 for r in chance)

    def test_contest_id(self):
        result = ContestResult("m", "dblp", 0.05, 0.9, 0.8)
        assert result.contest_id == "dblp@5%"

    def test_summarize_results(self, dataset):
        results = run_contest(
            {"oracle": _oracle_method}, dataset, train_fractions=[0.1]
        )
        table = summarize_results(results)
        assert table["oracle"]["dblp@10%"] == 1.0

    def test_summarize_bad_metric(self):
        with pytest.raises(ValueError):
            summarize_results([], metric="auc")

    def test_repeats_share_splits_across_methods(self, dataset):
        """Both methods must see identical splits (paper protocol)."""
        seen = {}

        def spy(name):
            def method(ds, split, seed):
                seen.setdefault(name, []).append(split.train.tolist())
                return MethodOutput(test_predictions=ds.labels[split.test].copy())

            return method

        run_contest(
            {"a": spy("a"), "b": spy("b")}, dataset,
            train_fractions=[0.1], repeats=2,
        )
        assert seen["a"] == seen["b"]
