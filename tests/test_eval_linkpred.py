"""Tests for the link-prediction holdout protocol and ranking metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dblp import DBLPConfig, make_dblp
from repro.embedding.pte import pte_embeddings
from repro.eval.linkpred import (
    average_precision,
    holdout_relation_split,
    link_prediction_report,
    roc_auc,
    score_pairs,
)


@pytest.fixture(scope="module")
def dblp():
    return make_dblp(DBLPConfig(num_authors=100, num_papers=320, seed=2))


@pytest.fixture(scope="module")
def forward_relation(dblp):
    return next(
        r.name for r in dblp.hin.relations if not r.name.endswith("_rev")
    )


class TestROCAUC:
    def test_perfect_separation(self):
        assert roc_auc(np.array([3.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_inverted_separation(self):
        assert roc_auc(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 0.0

    def test_all_tied_is_half(self):
        assert roc_auc(np.ones(5), np.ones(7)) == pytest.approx(0.5)

    def test_interleaved(self):
        # pos {1, 3}, neg {0, 2}: pairs won = (1>0) + (3>0) + (3>2) = 3 of 4.
        assert roc_auc(np.array([1.0, 3.0]), np.array([0.0, 2.0])) == pytest.approx(0.75)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([]), np.array([1.0]))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=30),
        st.lists(st.floats(-100, 100), min_size=1, max_size=30),
    )
    def test_complement_symmetry(self, pos, neg):
        pos, neg = np.array(pos), np.array(neg)
        forward = roc_auc(pos, neg)
        backward = roc_auc(neg, pos)
        assert forward + backward == pytest.approx(1.0)
        assert 0.0 <= forward <= 1.0

    # Scores on a coarse grid so an affine transform cannot merge two
    # distinct values through float rounding (which would change ties).
    grid_scores = st.lists(
        st.floats(-100, 100).map(lambda x: round(x, 2)), min_size=1, max_size=30
    )

    @settings(max_examples=40, deadline=None)
    @given(grid_scores, grid_scores, st.floats(0.5, 10), st.floats(-5, 5))
    def test_invariant_to_monotone_transform(self, pos, neg, scale, shift):
        pos, neg = np.array(pos), np.array(neg)
        base = roc_auc(pos, neg)
        transformed = roc_auc(pos * scale + shift, neg * scale + shift)
        assert transformed == pytest.approx(base)


class TestAveragePrecision:
    def test_perfect_ranking_is_one(self):
        assert average_precision(np.array([5.0, 4.0]), np.array([1.0, 2.0])) == 1.0

    def test_worst_ranking(self):
        # Positives ranked 3rd and 4th of 4: AP = mean(1/3, 2/4).
        ap = average_precision(np.array([1.0, 0.5]), np.array([3.0, 2.0]))
        assert ap == pytest.approx(0.5 * (1.0 / 3.0 + 2.0 / 4.0))

    def test_bounded_by_auc_relationship(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(1.0, 1.0, size=50)
        neg = rng.normal(0.0, 1.0, size=50)
        ap = average_precision(pos, neg)
        assert 0.0 < ap <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_precision(np.array([1.0]), np.array([]))


class TestScorePairs:
    def test_dot_scores(self):
        emb = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        pairs = np.array([[0, 2], [1, 2]])
        assert np.allclose(score_pairs(emb, pairs, op="dot"), [1.0, 2.0])

    def test_cosine_is_normalized(self):
        emb = np.array([[2.0, 0.0], [4.0, 0.0], [0.0, 1.0]])
        pairs = np.array([[0, 1], [0, 2]])
        scores = score_pairs(emb, pairs, op="cosine")
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.0)

    def test_rejects_bad_shapes_and_op(self):
        emb = np.zeros((3, 2))
        with pytest.raises(ValueError):
            score_pairs(emb, np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError):
            score_pairs(emb, np.zeros((2, 2), dtype=int), op="l2")

    def test_context_table_scores_destination_side(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0]])
        context = np.array([[0.0, 2.0], [3.0, 0.0]])
        pairs = np.array([[0, 1], [1, 0]])
        scores = score_pairs(emb, pairs, context_embeddings=context)
        # u from emb, v from context: [1,0]·[3,0]=3 and [0,1]·[0,2]=2.
        assert np.allclose(scores, [3.0, 2.0])

    def test_context_table_shape_mismatch_raises(self):
        emb = np.zeros((3, 2))
        with pytest.raises(ValueError):
            score_pairs(
                emb,
                np.zeros((1, 2), dtype=int),
                context_embeddings=np.zeros((3, 4)),
            )


class TestHoldoutSplit:
    def test_edge_counts_balance(self, dblp, forward_relation):
        full = dblp.hin.relation_matrix(forward_relation).nnz
        split = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=0)
        reduced = split.hin.relation_matrix(forward_relation).nnz
        assert reduced + split.positives.shape[0] == full
        assert split.positives.shape[0] == max(1, round(0.2 * full))

    def test_other_relations_untouched(self, dblp, forward_relation):
        split = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=0)
        for relation in dblp.hin.relations:
            if relation.name.endswith("_rev") or relation.name == forward_relation:
                continue
            original = dblp.hin.relation_matrix(relation.name)
            reduced = split.hin.relation_matrix(relation.name)
            assert (original != reduced).nnz == 0

    def test_features_and_labels_preserved(self, dblp, forward_relation):
        split = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=0)
        for node_type in dblp.hin.node_types:
            assert split.hin.num_nodes(node_type) == dblp.hin.num_nodes(node_type)
            if dblp.hin.has_features(node_type):
                assert np.array_equal(
                    split.hin.features(node_type), dblp.hin.features(node_type)
                )
        assert np.array_equal(
            split.hin.labels(dblp.target_type), dblp.hin.labels(dblp.target_type)
        )

    def test_negatives_are_nonedges_and_type_correct(self, dblp, forward_relation):
        hin = dblp.hin
        split = holdout_relation_split(
            hin, forward_relation, 0.2, negatives_per_positive=2, seed=0
        )
        assert split.negatives.shape[0] == 2 * split.positives.shape[0]
        relation = hin.relation_info(forward_relation)
        offsets = hin.global_offsets()
        matrix = hin.relation_matrix(forward_relation).tocsr()
        src_lo = offsets[relation.src_type]
        dst_lo = offsets[relation.dst_type]
        for u, v in split.negatives:
            s, d = u - src_lo, v - dst_lo
            assert 0 <= s < hin.num_nodes(relation.src_type)
            assert 0 <= d < hin.num_nodes(relation.dst_type)
            assert matrix[s, d] == 0

    def test_negatives_unique(self, dblp, forward_relation):
        split = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=0)
        seen = {tuple(pair) for pair in split.negatives.tolist()}
        assert len(seen) == split.negatives.shape[0]

    def test_rejects_bad_arguments(self, dblp, forward_relation):
        with pytest.raises(ValueError):
            holdout_relation_split(dblp.hin, forward_relation, 0.0)
        with pytest.raises(ValueError):
            holdout_relation_split(dblp.hin, forward_relation + "_rev", 0.2)
        with pytest.raises(ValueError):
            holdout_relation_split(
                dblp.hin, forward_relation, 0.2, negatives_per_positive=0
            )

    def test_deterministic_for_seed(self, dblp, forward_relation):
        a = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=5)
        b = holdout_relation_split(dblp.hin, forward_relation, 0.2, seed=5)
        assert np.array_equal(a.positives, b.positives)
        assert np.array_equal(a.negatives, b.negatives)


class TestEndToEnd:
    def test_pte_beats_random_embeddings(self, dblp):
        # published_at (paper -> conference) is venue-driven and therefore
        # the most predictable relation in the synthetic DBLP.
        split = holdout_relation_split(dblp.hin, "published_at", 0.2, seed=0)
        vertex, context = pte_embeddings(
            split.hin, dim=32, epochs=20, seed=0, return_context=True
        )
        rng = np.random.default_rng(0)
        random = rng.normal(size=vertex.shape)
        learned_report = link_prediction_report(
            vertex, split, context_embeddings=context
        )
        random_report = link_prediction_report(random, split)
        assert learned_report["auc"] > 0.65
        assert learned_report["auc"] > random_report["auc"] + 0.1
        assert learned_report["ap"] > random_report["ap"]
