"""Per-rule fixture tests for the ``repro.analysis`` static checkers.

Each rule gets seeded-violation fixtures written to ``tmp_path`` and the
analyzer must (a) flag them with the right rule id at the right line and
(b) stay silent on the compliant twin.  The CLI contract (exit codes,
``--json``, ``--rules``) is exercised through ``python -m
repro.analysis`` subprocesses — the same invocation the gate test and CI
use.
"""

import json
import os
import re
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisCache,
    AnalysisResult,
    Finding,
    SourceFile,
    analyze_paths,
    collect_guarded,
    default_rules,
    iter_python_files,
)
from repro.analysis.core import fingerprint_stage_markers
from repro.analysis.rules import (
    BlockingUnderLockRule,
    CSRCanonicalRule,
    DeltaDisciplineRule,
    DeterminismRule,
    FingerprintCompletenessRule,
    FutureResolutionRule,
    LockDisciplineRule,
    LockOrderRule,
    UnusedSuppressionRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def run_rule(rule, path: Path):
    source = SourceFile(path, path.read_text())
    return list(rule.check(source))


# ---------------------------------------------------------------------- #
# lock-discipline
# ---------------------------------------------------------------------- #


class TestLockDiscipline:
    def test_unguarded_read_and_write_flagged(self, tmp_path):
        path = write(tmp_path, "bad_lock.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def bump(self):
                    self.total += 1

                def peek(self):
                    return self.total
        """)
        findings = run_rule(LockDisciplineRule(), path)
        assert [f.rule for f in findings] == ["lock-discipline"] * 2
        assert sorted(f.line for f in findings) == [9, 12]
        assert all("'self.total'" in f.message for f in findings)

    def test_guarded_access_clean(self, tmp_path):
        path = write(tmp_path, "good_lock.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self.total += 1

                def snapshot(self):
                    with self._lock:
                        return {"total": self.total}
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_init_is_exempt(self, tmp_path):
        # __init__ builds the object before it is shared; annotated
        # assignments there must not self-flag.
        path = write(tmp_path, "init_exempt.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []  # guarded-by: _lock
                    self.items.append(1)
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_nested_function_does_not_inherit_lock_scope(self, tmp_path):
        # A closure may run on another thread after the with-block exits;
        # the checker must treat its accesses as unguarded.
        path = write(tmp_path, "closure.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0  # guarded-by: _lock

                def deferred(self):
                    with self._lock:
                        def later():
                            return self.value
                        return later
        """)
        findings = run_rule(LockDisciplineRule(), path)
        assert len(findings) == 1
        assert "'self.value'" in findings[0].message

    def test_other_class_same_attr_name_not_flagged(self, tmp_path):
        path = write(tmp_path, "two_classes.py", """\
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

            class Plain:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_suppression_silences_one_line(self, tmp_path):
        path = write(tmp_path, "suppressed.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def racy_probe(self):
                    return self.total  # repro: ignore[lock-discipline]
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_collect_guarded_matches_static_view(self, tmp_path):
        # The runtime sanitizer and the static rule must read the same
        # annotations off the real classes.
        from repro.hin.cache import LRUByteCache
        from repro.serve.server import ModelServer

        cache_guarded = collect_guarded(LRUByteCache)
        assert cache_guarded.get("_entries") == "_lock"
        assert cache_guarded.get("hits") == "_lock"
        server_guarded = collect_guarded(ModelServer)
        assert server_guarded.get("_counters") == "_lock"
        assert server_guarded.get("_latencies") == "_lock"


# ---------------------------------------------------------------------- #
# fingerprint-completeness
# ---------------------------------------------------------------------- #


FP_HEADER = textwrap.dedent("""\
    STAGE_FIELDS = {
        "discover": (),
        "compose": ("neighbor_strategy",),
        "enumerate": ("k", "seed"),
        "fit": ("*",),
    }
    _STAGE_ORDER = ("discover", "compose", "enumerate", "fit")
""")


def write_fp(tmp_path: Path, name: str, body: str) -> Path:
    """A fixture module carrying its own STAGE_FIELDS plus ``body``."""
    path = tmp_path / name
    path.write_text(FP_HEADER + textwrap.dedent(body))
    return path


class TestFingerprintCompleteness:
    def test_unkeyed_config_read_flagged(self, tmp_path):
        path = write_fp(tmp_path, "under_keyed.py", """\

            class Pipeline:
                def enumerate(self):  # fingerprint-stage: enumerate
                    k = self.config.k
                    return k, self.config.max_instances
        """)
        findings = run_rule(FingerprintCompletenessRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "fingerprint-completeness"
        assert "'max_instances'" in findings[0].message
        assert "'enumerate'" in findings[0].message

    def test_cumulative_fields_cover_earlier_stages(self, tmp_path):
        # enumerate may read compose's fields: fingerprints are cumulative.
        path = write_fp(tmp_path, "cumulative.py", """\

            class Pipeline:
                def enumerate(self):  # fingerprint-stage: enumerate
                    return self.config.k, self.config.neighbor_strategy
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_star_stage_covers_everything(self, tmp_path):
        path = write_fp(tmp_path, "star.py", """\

            class Pipeline:
                def fit(self):  # fingerprint-stage: fit
                    return self.config.epochs, self.config.anything_at_all
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_perf_knobs_exempt(self, tmp_path):
        # cache_dir/cache_memory_budget change where/how fast, never what.
        path = write_fp(tmp_path, "perf_knob.py", """\

            class Pipeline:
                def compose(self):  # fingerprint-stage: compose
                    return self.config.neighbor_strategy, self.config.cache_dir
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_config_alias_reads_tracked(self, tmp_path):
        # `config = self.config` then `config.field` is the repo idiom.
        path = write_fp(tmp_path, "alias.py", """\

            class Pipeline:
                def compose(self):  # fingerprint-stage: compose
                    config = self.config
                    return config.use_contexts
        """)
        findings = run_rule(FingerprintCompletenessRule(), path)
        assert len(findings) == 1
        assert "'use_contexts'" in findings[0].message

    def test_marker_parser_reads_multiline_defs(self, tmp_path):
        path = write_fp(tmp_path, "multiline.py", """\

            class Pipeline:
                def featurize(  # fingerprint-stage: fit
                    self,
                    verbose=False,
                ):
                    return self.config.whatever
        """)
        source = SourceFile(path, path.read_text())
        assert fingerprint_stage_markers(source) == {"featurize": "fit"}

    def test_real_pipeline_has_all_stage_markers(self):
        pipeline_py = REPO_ROOT / "src" / "repro" / "api" / "pipeline.py"
        source = SourceFile(pipeline_py, pipeline_py.read_text())
        markers = fingerprint_stage_markers(source)
        assert set(markers.values()) >= {
            "discover", "compose", "enumerate", "featurize", "fit",
        }


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #


class TestDeterminism:
    def test_module_level_global_rng_flagged(self, tmp_path):
        path = write(tmp_path, "global_rng.py", """\
            import numpy as np

            WEIGHTS = np.random.rand(8)
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "determinism"
        assert findings[0].line == 3

    def test_unseeded_default_rng_flagged_anywhere(self, tmp_path):
        path = write(tmp_path, "unseeded.py", """\
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                return rng.random()
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_seeded_rng_in_function_clean(self, tmp_path):
        path = write(tmp_path, "seeded.py", """\
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """)
        assert run_rule(DeterminismRule(), path) == []

    def test_wall_clock_in_key_builder_flagged(self, tmp_path):
        path = write(tmp_path, "clock_key.py", """\
            import time

            def cache_key(name):
                return f"{name}-{time.time()}"

            def is_stale(age):
                return time.time() - age > 60.0
        """)
        findings = run_rule(DeterminismRule(), path)
        # Only the key builder is flagged; is_stale legitimately uses the
        # clock (TTL checks are about time, not identity).
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "cache_key" in findings[0].message

    def test_unsorted_json_dumps_in_fingerprint_flagged(self, tmp_path):
        path = write(tmp_path, "unsorted.py", """\
            import json

            def config_fingerprint(payload):
                return json.dumps(payload)

            def render(payload):
                return json.dumps(payload)
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_sorted_json_dumps_clean(self, tmp_path):
        path = write(tmp_path, "sorted.py", """\
            import json

            def config_fingerprint(payload):
                return json.dumps(payload, sort_keys=True)
        """)
        assert run_rule(DeterminismRule(), path) == []


# ---------------------------------------------------------------------- #
# csr-canonical
# ---------------------------------------------------------------------- #


class TestCSRCanonical:
    def test_raw_component_construction_flagged(self, tmp_path):
        path = write(tmp_path, "raw_csr.py", """\
            import scipy.sparse as sp

            def rebuild(data, indices, indptr, shape):
                return sp.csr_matrix((data, indices, indptr), shape=shape)
        """)
        findings = run_rule(CSRCanonicalRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "csr-canonical"

    def test_sort_indices_guard_accepted(self, tmp_path):
        path = write(tmp_path, "sorted_csr.py", """\
            import scipy.sparse as sp

            def rebuild(data, indices, indptr, shape):
                matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
                matrix.sort_indices()
                return matrix
        """)
        assert run_rule(CSRCanonicalRule(), path) == []

    def test_dense_and_coo_style_constructors_clean(self, tmp_path):
        path = write(tmp_path, "other_ctors.py", """\
            import numpy as np
            import scipy.sparse as sp

            def from_dense(dense):
                return sp.csr_matrix(dense)

            def from_coo(values, rows, cols, shape):
                return sp.csr_matrix((values, (rows, cols)), shape=shape)

            def empty(shape):
                return sp.csr_matrix(shape, dtype=np.float64)
        """)
        assert run_rule(CSRCanonicalRule(), path) == []


# ---------------------------------------------------------------------- #
# delta-discipline
# ---------------------------------------------------------------------- #


class TestDeltaDiscipline:
    def test_direct_store_into_edge_storage_flagged(self, tmp_path):
        path = write(tmp_path, "bad_store.py", """\
            def poke(hin):
                hin.relation_matrix("writes").data[:] = 2.0
                hin._biadjacency["writes"] = None
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"] * 2
        assert sorted(f.line for f in findings) == [2, 3]
        assert all("apply_delta" in f.message for f in findings)

    def test_aliased_inplace_mutation_flagged(self, tmp_path):
        path = write(tmp_path, "bad_alias.py", """\
            def poke(hin):
                matrix = hin.relation_matrix("writes")
                coo = matrix.tocoo()
                coo.sum_duplicates()
                matrix.data += 1.0
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"] * 2
        assert sorted(f.line for f in findings) == [4, 5]
        assert any("sum_duplicates" in f.message for f in findings)

    def test_copy_dealiases_and_hin_body_is_exempt(self, tmp_path):
        path = write(tmp_path, "clean_delta.py", """\
            class HIN:
                def _rebuild(self, relation, matrix):
                    self._biadjacency[relation] = matrix
                    self._biadjacency[relation].sum_duplicates()

            def safe(hin):
                matrix = hin.relation_matrix("writes").copy()
                matrix.data[:] = 2.0
                matrix.sum_duplicates()
                alias = hin.relation_matrix("writes")
                alias = alias.copy()
                alias.setdiag(0.0)
        """)
        assert run_rule(DeltaDisciplineRule(), path) == []

    def test_inline_suppression_respected(self, tmp_path):
        path = write(tmp_path, "suppressed.py", """\
            def poke(hin):
                hin.relation_matrix("writes").data[:] = 2.0  # repro: ignore[delta-discipline]
        """)
        assert run_rule(DeltaDisciplineRule(), path) == []

    def test_mutation_in_compound_statement_reported_once(self, tmp_path):
        path = write(tmp_path, "compound.py", """\
            def poke(hin, flag):
                matrix = hin.relation_matrix("writes")
                if flag:
                    matrix.sum_duplicates()
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"]
        assert findings[0].line == 4


# ---------------------------------------------------------------------- #
# lock-order (project-wide, over the call graph)
# ---------------------------------------------------------------------- #


class TestLockOrder:
    def test_inversion_cycle_across_two_classes_flagged(self, tmp_path):
        write(tmp_path, "inverted.py", """\
            import threading

            class Alpha:
                def __init__(self, beta):
                    self._alpha_lock = threading.Lock()
                    self.beta = beta

                def grant(self):
                    with self._alpha_lock:
                        self.beta.settle()

                def reload(self):
                    with self._alpha_lock:
                        return 1

            class Beta:
                def __init__(self, alpha):
                    self._beta_lock = threading.Lock()
                    self.alpha = alpha

                def settle(self):
                    with self._beta_lock:
                        return 2

                def revoke(self):
                    with self._beta_lock:
                        self.alpha.reload()
        """)
        result = analyze_paths([tmp_path], rules=[LockOrderRule()])
        assert [f.rule for f in result.findings] == ["lock-order"]
        message = result.findings[0].message
        assert "Alpha._alpha_lock" in message
        assert "Beta._beta_lock" in message
        assert "cycle" in message

    def test_consistent_acquisition_order_clean(self, tmp_path):
        # Same shape, but Beta calls back *before* taking its own lock:
        # every path acquires alpha-then-beta, so the order graph is
        # acyclic.
        write(tmp_path, "ordered.py", """\
            import threading

            class Alpha:
                def __init__(self, beta):
                    self._alpha_lock = threading.Lock()
                    self.beta = beta

                def grant(self):
                    with self._alpha_lock:
                        self.beta.settle()

                def reload(self):
                    with self._alpha_lock:
                        return 1

            class Beta:
                def __init__(self, alpha):
                    self._beta_lock = threading.Lock()
                    self.alpha = alpha

                def settle(self):
                    with self._beta_lock:
                        return 2

                def revoke(self):
                    self.alpha.reload()
                    with self._beta_lock:
                        return 3
        """)
        result = analyze_paths([tmp_path], rules=[LockOrderRule()])
        assert result.findings == []

    def test_suppressed_witness_edge_breaks_cycle(self, tmp_path):
        write(tmp_path, "waived.py", """\
            import threading

            class Alpha:
                def __init__(self, beta):
                    self._alpha_lock = threading.Lock()
                    self.beta = beta

                def grant(self):
                    with self._alpha_lock:
                        self.beta.settle()  # repro: ignore[lock-order]

                def reload(self):
                    with self._alpha_lock:
                        return 1

            class Beta:
                def __init__(self, alpha):
                    self._beta_lock = threading.Lock()
                    self.alpha = alpha

                def settle(self):
                    with self._beta_lock:
                        return 2

                def revoke(self):
                    with self._beta_lock:
                        self.alpha.reload()
        """)
        result = analyze_paths([tmp_path], rules=[LockOrderRule()])
        assert result.findings == []


# ---------------------------------------------------------------------- #
# blocking-under-lock (project-wide, through call chains)
# ---------------------------------------------------------------------- #


class TestBlockingUnderLock:
    def test_direct_blocking_under_guarded_lock_flagged(self, tmp_path):
        write(tmp_path, "hot.py", """\
            import threading
            import time

            class Hot:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = {}  # guarded-by: _lock

                def persist(self):
                    with self._lock:
                        time.sleep(0.05)
        """)
        result = analyze_paths([tmp_path], rules=[BlockingUnderLockRule()])
        assert [f.rule for f in result.findings] == ["blocking-under-lock"]
        assert result.findings[0].line == 11
        assert "sleep" in result.findings[0].message
        assert "Hot._lock" in result.findings[0].message

    def test_blocking_one_call_graph_hop_away_flagged(self, tmp_path):
        # The sleep lives in _spill; only the *call* happens under the
        # lock — single-file pattern matching cannot see this one.
        write(tmp_path, "spool.py", """\
            import threading
            import time

            class Spool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.rows = []  # guarded-by: _lock

                def flush(self):
                    with self._lock:
                        self._spill(self.rows)

                def _spill(self, rows):
                    time.sleep(0.01)
                    return rows
        """)
        result = analyze_paths([tmp_path], rules=[BlockingUnderLockRule()])
        assert [f.rule for f in result.findings] == ["blocking-under-lock"]
        finding = result.findings[0]
        assert finding.line == 11  # the call site under the lock
        assert "sleep" in finding.message
        assert "_spill" in finding.message

    def test_call_outside_critical_section_clean(self, tmp_path):
        write(tmp_path, "cool.py", """\
            import threading
            import time

            class Cool:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.rows = []  # guarded-by: _lock

                def flush(self):
                    with self._lock:
                        rows = list(self.rows)
                    self._spill(rows)

                def _spill(self, rows):
                    time.sleep(0.01)
                    return rows
        """)
        result = analyze_paths([tmp_path], rules=[BlockingUnderLockRule()])
        assert result.findings == []

    def test_unguarded_lock_not_flagged(self, tmp_path):
        # Only '# guarded-by:' locks are hot-path contracts; a private
        # lock with no guarded state may legitimately cover slow work.
        write(tmp_path, "plain.py", """\
            import threading
            import time

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()

                def persist(self):
                    with self._lock:
                        time.sleep(0.05)
        """)
        result = analyze_paths([tmp_path], rules=[BlockingUnderLockRule()])
        assert result.findings == []


# ---------------------------------------------------------------------- #
# future-resolution (path-sensitive, exception edges included)
# ---------------------------------------------------------------------- #


class TestFutureResolution:
    def test_future_stranded_only_on_exception_edge_flagged(self, tmp_path):
        # The happy path resolves; the ValueError edge jumps over
        # _finish into a swallowing handler and returns the raw future.
        path = write(tmp_path, "strand.py", """\
            class ComputeFuture:
                def _finish(self, value):
                    self.value = value

            def launch(job):
                future = ComputeFuture()
                try:
                    value = job()
                    future._finish(value)
                except ValueError:
                    pass
                return future
        """)
        findings = run_rule(FutureResolutionRule(), path)
        assert [f.rule for f in findings] == ["future-resolution"]
        assert findings[0].line == 6  # anchored at the creation
        assert "'future'" in findings[0].message

    def test_resolving_exception_handler_clean(self, tmp_path):
        path = write(tmp_path, "settled.py", """\
            class ComputeFuture:
                def _finish(self, value):
                    self.value = value

                def set_exception(self, exc):
                    self.exc = exc

            def launch(job):
                future = ComputeFuture()
                try:
                    value = job()
                    future._finish(value)
                except ValueError as exc:
                    future.set_exception(exc)
                return future
        """)
        assert run_rule(FutureResolutionRule(), path) == []

    def test_handoff_to_owner_clean(self, tmp_path):
        # Stored into a registry: the owner resolves it later.
        path = write(tmp_path, "handoff.py", """\
            class ComputeFuture:
                def set_result(self, value):
                    self.value = value

            def launch(registry, job):
                future = ComputeFuture()
                registry["job"] = future
                return future
        """)
        assert run_rule(FutureResolutionRule(), path) == []

    def test_raise_path_is_not_a_strand(self, tmp_path):
        # Leaving by raise is fine: the caller never received the future.
        path = write(tmp_path, "raises.py", """\
            class ComputeFuture:
                def _finish(self, value):
                    self.value = value

            def launch(job):
                future = ComputeFuture()
                if job is None:
                    raise ValueError("no job")
                future._finish(job())
                return future
        """)
        assert run_rule(FutureResolutionRule(), path) == []

    def test_publish_without_stop_recheck_flagged(self, tmp_path):
        # The PR-8 race, distilled: stop() drains _pending, then submit's
        # publish lands on a dead queue — nothing ever settles the future.
        path = write(tmp_path, "miniserver.py", """\
            import queue
            import threading

            class ReplyFuture:
                def set_exception(self, exc):
                    self.exc = exc

            class MiniServer:
                def __init__(self):
                    self._stop = threading.Event()
                    self._work_queue = queue.Queue()
                    self._pending = {}

                def _fail_pending(self):
                    for future in self._pending.values():
                        future.set_exception(RuntimeError("stopped"))

                def submit(self, key, payload):
                    future = ReplyFuture()
                    self._pending[key] = future
                    self._work_queue.put_nowait((key, payload))
                    return future
        """)
        findings = run_rule(FutureResolutionRule(), path)
        assert [f.rule for f in findings] == ["future-resolution"]
        assert "self._work_queue" in findings[0].message
        assert "stop" in findings[0].message

    def test_publish_with_stop_recheck_clean(self, tmp_path):
        path = write(tmp_path, "fixedserver.py", """\
            import queue
            import threading

            class ReplyFuture:
                def set_exception(self, exc):
                    self.exc = exc

            class MiniServer:
                def __init__(self):
                    self._stop = threading.Event()
                    self._work_queue = queue.Queue()
                    self._pending = {}

                def _fail_pending(self):
                    for future in self._pending.values():
                        future.set_exception(RuntimeError("stopped"))

                def submit(self, key, payload):
                    future = ReplyFuture()
                    self._pending[key] = future
                    self._work_queue.put_nowait((key, payload))
                    if self._stop.is_set():
                        self._fail_pending()
                    return future
        """)
        assert run_rule(FutureResolutionRule(), path) == []

    def test_reverting_pr8_stop_recheck_is_caught(self):
        # Regression gate: the real server must be clean today, and
        # deleting ProcessReplicaServer.submit's post-put stop re-check
        # (the PR-8 fix) must be caught statically.
        server_py = REPO_ROOT / "src" / "repro" / "serve" / "server.py"
        text = server_py.read_text()
        assert run_rule(FutureResolutionRule(), server_py) == []
        recheck = re.compile(
            r"        if self\._stop\.is_set\(\):\n"
            r"(?:            #.*\n)*"
            r"            self\._fail_pending\(\)\n"
            r"(?=        return future\n)"
        )
        reverted, count = recheck.subn("", text)
        assert count == 1, "ProcessReplicaServer.submit re-check not found"
        source = SourceFile(server_py, reverted)
        findings = list(FutureResolutionRule().check(source))
        assert any(
            f.rule == "future-resolution" and "_request_queue" in f.message
            for f in findings
        )


# ---------------------------------------------------------------------- #
# unused-suppression (audit over the usage record)
# ---------------------------------------------------------------------- #


class TestUnusedSuppression:
    def test_dead_suppression_flagged_on_full_run(self, tmp_path):
        write(tmp_path, "dead.py", "VALUE = 1  # repro: ignore[determinism]\n")
        result = analyze_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["unused-suppression"]
        assert result.findings[0].severity == "warning"
        assert result.findings[0].line == 1
        assert not result.ok

    def test_used_suppression_not_flagged(self, tmp_path):
        write(tmp_path, "used.py", (
            "import numpy as np\n"
            "X = np.random.rand(2)  # repro: ignore[determinism]\n"
        ))
        result = analyze_paths([tmp_path])
        assert result.ok

    def test_named_suppression_skipped_when_rule_filtered(self, tmp_path):
        # lock-discipline never ran, so no verdict is possible on a
        # suppression naming it — the audit must stay silent.
        write(tmp_path, "maybe.py",
              "VALUE = 1  # repro: ignore[lock-discipline]\n")
        result = analyze_paths(
            [tmp_path], rules=[DeterminismRule(), UnusedSuppressionRule()]
        )
        assert result.ok

    def test_blanket_suppression_needs_full_rule_set(self, tmp_path):
        write(tmp_path, "blanket.py", "VALUE = 1  # repro: ignore\n")
        filtered = analyze_paths(
            [tmp_path], rules=[DeterminismRule(), UnusedSuppressionRule()]
        )
        assert filtered.ok
        full = analyze_paths([tmp_path])
        assert [f.rule for f in full.findings] == ["unused-suppression"]


# ---------------------------------------------------------------------- #
# Analysis cache (content-hash keyed, cold vs warm)
# ---------------------------------------------------------------------- #


class TestAnalysisCache:
    def test_cold_then_warm_identical_findings(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        write(tree, "bad.py", "import numpy as np\nX = np.random.rand(2)\n")
        cache_path = tmp_path / "cache.json"
        cold_cache = AnalysisCache(cache_path)
        cold = analyze_paths([tree], cache=cold_cache)
        assert (cold_cache.hits, cold_cache.misses) == (0, 1)
        assert cache_path.is_file()
        warm_cache = AnalysisCache(cache_path)
        warm = analyze_paths([tree], cache=warm_cache)
        assert (warm_cache.hits, warm_cache.misses) == (1, 0)
        assert [f.to_dict() for f in warm.findings] \
            == [f.to_dict() for f in cold.findings]

    def test_content_change_invalidates_entry(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        target = write(
            tree, "bad.py", "import numpy as np\nX = np.random.rand(2)\n"
        )
        cache_path = tmp_path / "cache.json"
        analyze_paths([tree], cache=AnalysisCache(cache_path))
        target.write_text("VALUE = 1\n")
        cache = AnalysisCache(cache_path)
        result = analyze_paths([tree], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert result.ok

    def test_rule_set_change_invalidates_entry(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        write(tree, "fine.py", "VALUE = 1\n")
        cache_path = tmp_path / "cache.json"
        analyze_paths([tree], cache=AnalysisCache(cache_path))
        cache = AnalysisCache(cache_path)
        analyze_paths([tree], rules=[DeterminismRule()], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)


# ---------------------------------------------------------------------- #
# Framework behavior
# ---------------------------------------------------------------------- #


class TestFramework:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        result = analyze_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.ok

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "mod.py").write_text("x = 1\n")
        write(tmp_path, "mod.py", "x = 1\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["mod.py"]
        assert "__pycache__" not in str(files[0])

    def test_findings_sorted_and_serializable(self, tmp_path):
        write(tmp_path, "b.py", "import numpy as np\nX = np.random.rand(2)\n")
        write(tmp_path, "a.py", "import numpy as np\nY = np.random.rand(2)\n")
        result = analyze_paths([tmp_path])
        files = [f.file for f in result.findings]
        assert files == sorted(files)
        payload = result.to_dict()
        assert payload["ok"] is False
        assert payload["files_scanned"] == 2
        json.dumps(payload)  # round-trips

    def test_blanket_ignore_suppresses_all_rules(self, tmp_path):
        write(tmp_path, "any.py", """\
import numpy as np
X = np.random.rand(2)  # repro: ignore
""")
        result = analyze_paths([tmp_path])
        assert result.ok

    def test_default_rules_expose_all_repo_checkers(self):
        ids = {rule.rule_id for rule in default_rules()}
        assert ids == {
            "lock-discipline",
            "fingerprint-completeness",
            "determinism",
            "csr-canonical",
            "delta-discipline",
            "lock-order",
            "blocking-under-lock",
            "future-resolution",
            "unused-suppression",
        }


# ---------------------------------------------------------------------- #
# CLI: python -m repro.analysis
# ---------------------------------------------------------------------- #


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True, text=True, cwd=cwd or REPO_ROOT, env=env,
    )


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path):
        write(tmp_path, "fine.py", "VALUE = 1\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_violation_exits_one_with_location(self, tmp_path):
        bad = write(
            tmp_path, "bad.py",
            "import numpy as np\nX = np.random.rand(2)\n",
        )
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert f"{bad}:2: [determinism]" in proc.stdout

    def test_json_output_is_machine_readable(self, tmp_path):
        write(tmp_path, "bad.py", "import numpy as np\nX = np.random.rand(2)\n")
        proc = run_cli(str(tmp_path), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["seconds"] >= 0

    def test_rules_filter_and_unknown_rule(self, tmp_path):
        write(tmp_path, "bad.py", "import numpy as np\nX = np.random.rand(2)\n")
        only_csr = run_cli(str(tmp_path), "--rules", "csr-canonical")
        assert only_csr.returncode == 0  # determinism hit filtered out
        unknown = run_cli(str(tmp_path), "--rules", "no-such-rule")
        assert unknown.returncode == 2
        assert "unknown rule" in unknown.stderr

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "lock-discipline", "fingerprint-completeness",
            "determinism", "csr-canonical", "lock-order",
            "blocking-under-lock", "future-resolution",
            "unused-suppression",
        ):
            assert rule_id in proc.stdout

    def test_sarif_output_structure(self, tmp_path):
        bad = write(
            tmp_path, "bad.py",
            "import numpy as np\nX = np.random.rand(2)\n",
        )
        proc = run_cli(str(tmp_path), "--sarif", "--no-cache")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        rule_ids = [entry["id"] for entry in driver["rules"]]
        assert "determinism" in rule_ids  # catalog lists rules that ran
        sarif_result = run["results"][0]
        assert sarif_result["ruleId"] == "determinism"
        assert rule_ids[sarif_result["ruleIndex"]] == "determinism"
        assert sarif_result["level"] == "error"
        location = sarif_result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("bad.py")
        assert location["region"]["startLine"] == 2
        assert str(bad).replace("\\", "/") \
            == location["artifactLocation"]["uri"]

    def test_sarif_and_json_mutually_exclusive(self, tmp_path):
        write(tmp_path, "fine.py", "VALUE = 1\n")
        proc = run_cli(str(tmp_path), "--sarif", "--json")
        assert proc.returncode == 2

    def test_cache_flags_round_trip(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        write(tree, "fine.py", "VALUE = 1\n")
        cache_file = tmp_path / "cache.json"
        first = run_cli(str(tree), "--json", "--cache", str(cache_file))
        assert json.loads(first.stdout)["cache"] == {"hits": 0, "misses": 1}
        second = run_cli(str(tree), "--json", "--cache", str(cache_file))
        assert json.loads(second.stdout)["cache"] == {"hits": 1, "misses": 0}
        uncached = run_cli(str(tree), "--json", "--no-cache")
        assert "cache" not in json.loads(uncached.stdout)
