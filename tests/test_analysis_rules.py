"""Per-rule fixture tests for the ``repro.analysis`` static checkers.

Each rule gets seeded-violation fixtures written to ``tmp_path`` and the
analyzer must (a) flag them with the right rule id at the right line and
(b) stay silent on the compliant twin.  The CLI contract (exit codes,
``--json``, ``--rules``) is exercised through ``python -m
repro.analysis`` subprocesses — the same invocation the gate test and CI
use.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisResult,
    Finding,
    SourceFile,
    analyze_paths,
    collect_guarded,
    default_rules,
    iter_python_files,
)
from repro.analysis.core import fingerprint_stage_markers
from repro.analysis.rules import (
    CSRCanonicalRule,
    DeltaDisciplineRule,
    DeterminismRule,
    FingerprintCompletenessRule,
    LockDisciplineRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def run_rule(rule, path: Path):
    source = SourceFile(path, path.read_text())
    return list(rule.check(source))


# ---------------------------------------------------------------------- #
# lock-discipline
# ---------------------------------------------------------------------- #


class TestLockDiscipline:
    def test_unguarded_read_and_write_flagged(self, tmp_path):
        path = write(tmp_path, "bad_lock.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def bump(self):
                    self.total += 1

                def peek(self):
                    return self.total
        """)
        findings = run_rule(LockDisciplineRule(), path)
        assert [f.rule for f in findings] == ["lock-discipline"] * 2
        assert sorted(f.line for f in findings) == [9, 12]
        assert all("'self.total'" in f.message for f in findings)

    def test_guarded_access_clean(self, tmp_path):
        path = write(tmp_path, "good_lock.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self.total += 1

                def snapshot(self):
                    with self._lock:
                        return {"total": self.total}
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_init_is_exempt(self, tmp_path):
        # __init__ builds the object before it is shared; annotated
        # assignments there must not self-flag.
        path = write(tmp_path, "init_exempt.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []  # guarded-by: _lock
                    self.items.append(1)
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_nested_function_does_not_inherit_lock_scope(self, tmp_path):
        # A closure may run on another thread after the with-block exits;
        # the checker must treat its accesses as unguarded.
        path = write(tmp_path, "closure.py", """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0  # guarded-by: _lock

                def deferred(self):
                    with self._lock:
                        def later():
                            return self.value
                        return later
        """)
        findings = run_rule(LockDisciplineRule(), path)
        assert len(findings) == 1
        assert "'self.value'" in findings[0].message

    def test_other_class_same_attr_name_not_flagged(self, tmp_path):
        path = write(tmp_path, "two_classes.py", """\
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

            class Plain:
                def __init__(self):
                    self.total = 0

                def bump(self):
                    self.total += 1
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_suppression_silences_one_line(self, tmp_path):
        path = write(tmp_path, "suppressed.py", """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0  # guarded-by: _lock

                def racy_probe(self):
                    return self.total  # repro: ignore[lock-discipline]
        """)
        assert run_rule(LockDisciplineRule(), path) == []

    def test_collect_guarded_matches_static_view(self, tmp_path):
        # The runtime sanitizer and the static rule must read the same
        # annotations off the real classes.
        from repro.hin.cache import LRUByteCache
        from repro.serve.server import ModelServer

        cache_guarded = collect_guarded(LRUByteCache)
        assert cache_guarded.get("_entries") == "_lock"
        assert cache_guarded.get("hits") == "_lock"
        server_guarded = collect_guarded(ModelServer)
        assert server_guarded.get("_counters") == "_lock"
        assert server_guarded.get("_latencies") == "_lock"


# ---------------------------------------------------------------------- #
# fingerprint-completeness
# ---------------------------------------------------------------------- #


FP_HEADER = textwrap.dedent("""\
    STAGE_FIELDS = {
        "discover": (),
        "compose": ("neighbor_strategy",),
        "enumerate": ("k", "seed"),
        "fit": ("*",),
    }
    _STAGE_ORDER = ("discover", "compose", "enumerate", "fit")
""")


def write_fp(tmp_path: Path, name: str, body: str) -> Path:
    """A fixture module carrying its own STAGE_FIELDS plus ``body``."""
    path = tmp_path / name
    path.write_text(FP_HEADER + textwrap.dedent(body))
    return path


class TestFingerprintCompleteness:
    def test_unkeyed_config_read_flagged(self, tmp_path):
        path = write_fp(tmp_path, "under_keyed.py", """\

            class Pipeline:
                def enumerate(self):  # fingerprint-stage: enumerate
                    k = self.config.k
                    return k, self.config.max_instances
        """)
        findings = run_rule(FingerprintCompletenessRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "fingerprint-completeness"
        assert "'max_instances'" in findings[0].message
        assert "'enumerate'" in findings[0].message

    def test_cumulative_fields_cover_earlier_stages(self, tmp_path):
        # enumerate may read compose's fields: fingerprints are cumulative.
        path = write_fp(tmp_path, "cumulative.py", """\

            class Pipeline:
                def enumerate(self):  # fingerprint-stage: enumerate
                    return self.config.k, self.config.neighbor_strategy
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_star_stage_covers_everything(self, tmp_path):
        path = write_fp(tmp_path, "star.py", """\

            class Pipeline:
                def fit(self):  # fingerprint-stage: fit
                    return self.config.epochs, self.config.anything_at_all
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_perf_knobs_exempt(self, tmp_path):
        # cache_dir/cache_memory_budget change where/how fast, never what.
        path = write_fp(tmp_path, "perf_knob.py", """\

            class Pipeline:
                def compose(self):  # fingerprint-stage: compose
                    return self.config.neighbor_strategy, self.config.cache_dir
        """)
        assert run_rule(FingerprintCompletenessRule(), path) == []

    def test_config_alias_reads_tracked(self, tmp_path):
        # `config = self.config` then `config.field` is the repo idiom.
        path = write_fp(tmp_path, "alias.py", """\

            class Pipeline:
                def compose(self):  # fingerprint-stage: compose
                    config = self.config
                    return config.use_contexts
        """)
        findings = run_rule(FingerprintCompletenessRule(), path)
        assert len(findings) == 1
        assert "'use_contexts'" in findings[0].message

    def test_marker_parser_reads_multiline_defs(self, tmp_path):
        path = write_fp(tmp_path, "multiline.py", """\

            class Pipeline:
                def featurize(  # fingerprint-stage: fit
                    self,
                    verbose=False,
                ):
                    return self.config.whatever
        """)
        source = SourceFile(path, path.read_text())
        assert fingerprint_stage_markers(source) == {"featurize": "fit"}

    def test_real_pipeline_has_all_stage_markers(self):
        pipeline_py = REPO_ROOT / "src" / "repro" / "api" / "pipeline.py"
        source = SourceFile(pipeline_py, pipeline_py.read_text())
        markers = fingerprint_stage_markers(source)
        assert set(markers.values()) >= {
            "discover", "compose", "enumerate", "featurize", "fit",
        }


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #


class TestDeterminism:
    def test_module_level_global_rng_flagged(self, tmp_path):
        path = write(tmp_path, "global_rng.py", """\
            import numpy as np

            WEIGHTS = np.random.rand(8)
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "determinism"
        assert findings[0].line == 3

    def test_unseeded_default_rng_flagged_anywhere(self, tmp_path):
        path = write(tmp_path, "unseeded.py", """\
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                return rng.random()
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert "default_rng" in findings[0].message

    def test_seeded_rng_in_function_clean(self, tmp_path):
        path = write(tmp_path, "seeded.py", """\
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
        """)
        assert run_rule(DeterminismRule(), path) == []

    def test_wall_clock_in_key_builder_flagged(self, tmp_path):
        path = write(tmp_path, "clock_key.py", """\
            import time

            def cache_key(name):
                return f"{name}-{time.time()}"

            def is_stale(age):
                return time.time() - age > 60.0
        """)
        findings = run_rule(DeterminismRule(), path)
        # Only the key builder is flagged; is_stale legitimately uses the
        # clock (TTL checks are about time, not identity).
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "cache_key" in findings[0].message

    def test_unsorted_json_dumps_in_fingerprint_flagged(self, tmp_path):
        path = write(tmp_path, "unsorted.py", """\
            import json

            def config_fingerprint(payload):
                return json.dumps(payload)

            def render(payload):
                return json.dumps(payload)
        """)
        findings = run_rule(DeterminismRule(), path)
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_sorted_json_dumps_clean(self, tmp_path):
        path = write(tmp_path, "sorted.py", """\
            import json

            def config_fingerprint(payload):
                return json.dumps(payload, sort_keys=True)
        """)
        assert run_rule(DeterminismRule(), path) == []


# ---------------------------------------------------------------------- #
# csr-canonical
# ---------------------------------------------------------------------- #


class TestCSRCanonical:
    def test_raw_component_construction_flagged(self, tmp_path):
        path = write(tmp_path, "raw_csr.py", """\
            import scipy.sparse as sp

            def rebuild(data, indices, indptr, shape):
                return sp.csr_matrix((data, indices, indptr), shape=shape)
        """)
        findings = run_rule(CSRCanonicalRule(), path)
        assert len(findings) == 1
        assert findings[0].rule == "csr-canonical"

    def test_sort_indices_guard_accepted(self, tmp_path):
        path = write(tmp_path, "sorted_csr.py", """\
            import scipy.sparse as sp

            def rebuild(data, indices, indptr, shape):
                matrix = sp.csr_matrix((data, indices, indptr), shape=shape)
                matrix.sort_indices()
                return matrix
        """)
        assert run_rule(CSRCanonicalRule(), path) == []

    def test_dense_and_coo_style_constructors_clean(self, tmp_path):
        path = write(tmp_path, "other_ctors.py", """\
            import numpy as np
            import scipy.sparse as sp

            def from_dense(dense):
                return sp.csr_matrix(dense)

            def from_coo(values, rows, cols, shape):
                return sp.csr_matrix((values, (rows, cols)), shape=shape)

            def empty(shape):
                return sp.csr_matrix(shape, dtype=np.float64)
        """)
        assert run_rule(CSRCanonicalRule(), path) == []


# ---------------------------------------------------------------------- #
# delta-discipline
# ---------------------------------------------------------------------- #


class TestDeltaDiscipline:
    def test_direct_store_into_edge_storage_flagged(self, tmp_path):
        path = write(tmp_path, "bad_store.py", """\
            def poke(hin):
                hin.relation_matrix("writes").data[:] = 2.0
                hin._biadjacency["writes"] = None
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"] * 2
        assert sorted(f.line for f in findings) == [2, 3]
        assert all("apply_delta" in f.message for f in findings)

    def test_aliased_inplace_mutation_flagged(self, tmp_path):
        path = write(tmp_path, "bad_alias.py", """\
            def poke(hin):
                matrix = hin.relation_matrix("writes")
                coo = matrix.tocoo()
                coo.sum_duplicates()
                matrix.data += 1.0
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"] * 2
        assert sorted(f.line for f in findings) == [4, 5]
        assert any("sum_duplicates" in f.message for f in findings)

    def test_copy_dealiases_and_hin_body_is_exempt(self, tmp_path):
        path = write(tmp_path, "clean_delta.py", """\
            class HIN:
                def _rebuild(self, relation, matrix):
                    self._biadjacency[relation] = matrix
                    self._biadjacency[relation].sum_duplicates()

            def safe(hin):
                matrix = hin.relation_matrix("writes").copy()
                matrix.data[:] = 2.0
                matrix.sum_duplicates()
                alias = hin.relation_matrix("writes")
                alias = alias.copy()
                alias.setdiag(0.0)
        """)
        assert run_rule(DeltaDisciplineRule(), path) == []

    def test_inline_suppression_respected(self, tmp_path):
        path = write(tmp_path, "suppressed.py", """\
            def poke(hin):
                hin.relation_matrix("writes").data[:] = 2.0  # repro: ignore[delta-discipline]
        """)
        assert run_rule(DeltaDisciplineRule(), path) == []

    def test_mutation_in_compound_statement_reported_once(self, tmp_path):
        path = write(tmp_path, "compound.py", """\
            def poke(hin, flag):
                matrix = hin.relation_matrix("writes")
                if flag:
                    matrix.sum_duplicates()
        """)
        findings = run_rule(DeltaDisciplineRule(), path)
        assert [f.rule for f in findings] == ["delta-discipline"]
        assert findings[0].line == 4


# ---------------------------------------------------------------------- #
# Framework behavior
# ---------------------------------------------------------------------- #


class TestFramework:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def oops(:\n")
        result = analyze_paths([tmp_path])
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.ok

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "mod.py").write_text("x = 1\n")
        write(tmp_path, "mod.py", "x = 1\n")
        files = iter_python_files([tmp_path])
        assert [p.name for p in files] == ["mod.py"]
        assert "__pycache__" not in str(files[0])

    def test_findings_sorted_and_serializable(self, tmp_path):
        write(tmp_path, "b.py", "import numpy as np\nX = np.random.rand(2)\n")
        write(tmp_path, "a.py", "import numpy as np\nY = np.random.rand(2)\n")
        result = analyze_paths([tmp_path])
        files = [f.file for f in result.findings]
        assert files == sorted(files)
        payload = result.to_dict()
        assert payload["ok"] is False
        assert payload["files_scanned"] == 2
        json.dumps(payload)  # round-trips

    def test_blanket_ignore_suppresses_all_rules(self, tmp_path):
        write(tmp_path, "any.py", """\
import numpy as np
X = np.random.rand(2)  # repro: ignore
""")
        result = analyze_paths([tmp_path])
        assert result.ok

    def test_default_rules_expose_five_repo_checkers(self):
        ids = {rule.rule_id for rule in default_rules()}
        assert ids == {
            "lock-discipline",
            "fingerprint-completeness",
            "determinism",
            "csr-canonical",
            "delta-discipline",
        }


# ---------------------------------------------------------------------- #
# CLI: python -m repro.analysis
# ---------------------------------------------------------------------- #


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        capture_output=True, text=True, cwd=cwd or REPO_ROOT, env=env,
    )


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path):
        write(tmp_path, "fine.py", "VALUE = 1\n")
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_violation_exits_one_with_location(self, tmp_path):
        bad = write(
            tmp_path, "bad.py",
            "import numpy as np\nX = np.random.rand(2)\n",
        )
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert f"{bad}:2: [determinism]" in proc.stdout

    def test_json_output_is_machine_readable(self, tmp_path):
        write(tmp_path, "bad.py", "import numpy as np\nX = np.random.rand(2)\n")
        proc = run_cli(str(tmp_path), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["seconds"] >= 0

    def test_rules_filter_and_unknown_rule(self, tmp_path):
        write(tmp_path, "bad.py", "import numpy as np\nX = np.random.rand(2)\n")
        only_csr = run_cli(str(tmp_path), "--rules", "csr-canonical")
        assert only_csr.returncode == 0  # determinism hit filtered out
        unknown = run_cli(str(tmp_path), "--rules", "no-such-rule")
        assert unknown.returncode == 2
        assert "unknown rule" in unknown.stderr

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "lock-discipline", "fingerprint-completeness",
            "determinism", "csr-canonical",
        ):
            assert rule_id in proc.stdout
