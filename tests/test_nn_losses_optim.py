"""Tests for losses, optimizers, and early stopping."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    Adam,
    EarlyStopping,
    Linear,
    SGD,
    binary_cross_entropy_with_logits,
    cross_entropy,
    l2_penalty,
    mean_squared_error,
)
from repro.nn.module import Module, Parameter


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 1.0, 0.0]]))
        labels = np.array([0])
        loss = cross_entropy(logits, labels).item()
        expected = -np.log(np.exp(2.0) / np.exp([2.0, 1.0, 0.0]).sum())
        assert abs(loss - expected) < 1e-10

    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0])).item()
        assert abs(loss - np.log(3)) < 1e-10

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
        labels = np.array([0, 1, 2, 3, 1])
        gradcheck(lambda a: cross_entropy(a, labels), [logits])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((0, 3))), np.array([], dtype=int))

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = cross_entropy(logits, np.array([0, 1])).item()
        assert loss < 1e-10


class TestBCEWithLogits:
    def test_matches_manual(self):
        logits = Tensor(np.array([0.5, -1.0]))
        targets = np.array([1.0, 0.0])
        loss = binary_cross_entropy_with_logits(logits, targets).item()
        p = 1 / (1 + np.exp(-logits.data))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert abs(loss - expected) < 1e-10

    def test_stable_at_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0])).item()
        assert np.isfinite(loss)
        assert loss < 1e-10

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=6), requires_grad=True)
        targets = np.array([1.0, 0.0, 1.0, 1.0, 0.0, 0.0])
        gradcheck(lambda a: binary_cross_entropy_with_logits(a, targets), [logits])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(Tensor(np.zeros(3)), np.zeros(4))


class TestOtherLosses:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mean_squared_error(pred, np.array([0.0, 0.0])).item() == 2.5

    def test_l2_penalty_value(self):
        params = [Parameter(np.array([3.0, 4.0]))]
        assert l2_penalty(params, 0.1).item() == pytest.approx(2.5)

    def test_l2_penalty_zero_weight_returns_none(self):
        assert l2_penalty([Parameter(np.ones(2))], 0.0) is None

    def test_l2_penalty_no_params_returns_none(self):
        assert l2_penalty([], 1.0) is None


class TestOptimizers:
    def test_sgd_minimizes_quadratic(self):
        x = Parameter(np.array([5.0]))
        opt = SGD([x], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        assert abs(x.data[0]) < 1e-4

    def test_sgd_momentum_faster_on_ravine(self):
        def run(momentum):
            x = Parameter(np.array([5.0, 5.0]))
            opt = SGD([x], lr=0.02, momentum=momentum)
            scale = Tensor(np.array([1.0, 25.0]))
            for _ in range(50):
                opt.zero_grad()
                (x * x * scale).sum().backward()
                opt.step()
            return np.abs(x.data).sum()

        assert run(0.9) < run(0.0)

    def test_adam_minimizes_quadratic(self):
        x = Parameter(np.array([3.0, -2.0]))
        opt = Adam([x], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (x * x).sum().backward()
            opt.step()
        assert np.abs(x.data).max() < 1e-3

    def test_weight_decay_shrinks_weights(self):
        x = Parameter(np.array([1.0]))
        opt = SGD([x], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (x * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert x.data[0] < 1.0

    def test_skips_params_without_grad(self):
        x = Parameter(np.array([1.0]))
        y = Parameter(np.array([2.0]))
        opt = Adam([x, y], lr=0.1)
        (x * x).sum().backward()
        opt.step()
        assert y.data[0] == 2.0

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            Adam([])
        with pytest.raises(ValueError):
            SGD([])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=-1.0)

    def test_adam_bias_correction_first_step(self):
        # After one step from zero moments, update should be ~lr * sign(grad).
        x = Parameter(np.array([1.0]))
        opt = Adam([x], lr=0.1)
        (x * 2.0).sum().backward()
        opt.step()
        assert x.data[0] == pytest.approx(0.9, abs=1e-6)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=3, mode="max")
        assert not stopper.step(0.9, epoch=0)
        assert not stopper.step(0.5, epoch=1)
        assert not stopper.step(0.5, epoch=2)
        assert stopper.step(0.5, epoch=3)

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.step(0.5, epoch=0)
        stopper.step(0.4, epoch=1)
        assert not stopper.step(0.6, epoch=2)  # improvement
        assert not stopper.step(0.5, epoch=3)
        assert stopper.step(0.5, epoch=4)

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        stopper.step(1.0, epoch=0)
        assert not stopper.step(0.5, epoch=1)
        assert stopper.step(0.6, epoch=2)

    def test_restores_best_weights(self):
        rng = np.random.default_rng(0)
        model = Linear(2, 2, rng)
        stopper = EarlyStopping(patience=10, mode="max")
        stopper.step(1.0, model, epoch=0)
        best = model.weight.data.copy()
        model.weight.data[...] = 0.0
        stopper.step(0.5, model, epoch=1)
        stopper.restore(model)
        np.testing.assert_allclose(model.weight.data, best)

    def test_tracks_best_epoch(self):
        stopper = EarlyStopping(patience=5, mode="max")
        stopper.step(0.3, epoch=0)
        stopper.step(0.9, epoch=1)
        stopper.step(0.5, epoch=2)
        assert stopper.best_epoch == 1
        assert stopper.best_value == 0.9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")
