"""Tests for random walks, skip-gram, and the embedding methods."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.embedding import (
    SkipGramConfig,
    deepwalk_embeddings,
    metapath2vec_embeddings,
    metapath_walks,
    node2vec_embeddings,
    node2vec_walks,
    train_skipgram,
    uniform_random_walks,
)
from repro.embedding.skipgram import build_pairs
from repro.embedding.metapath2vec import metapath2vec_target_embeddings
from repro.hin import MetaPath
from tests.test_hin_graph import movie_hin


def ring_graph(n=10):
    rows = np.arange(n)
    cols = (rows + 1) % n
    adj = sp.csr_matrix(
        (np.ones(n), (rows, cols)), shape=(n, n)
    )
    return sp.csr_matrix(adj + adj.T)


def two_cliques(size=6):
    """Two disjoint cliques: node embeddings should separate them."""
    n = 2 * size
    dense = np.zeros((n, n))
    dense[:size, :size] = 1
    dense[size:, size:] = 1
    np.fill_diagonal(dense, 0)
    return sp.csr_matrix(dense)


class TestWalks:
    def test_uniform_walks_follow_edges(self):
        adj = ring_graph()
        rng = np.random.default_rng(0)
        walks = uniform_random_walks(adj, num_walks=2, walk_length=5, rng=rng)
        dense = adj.toarray()
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert dense[a, b] == 1

    def test_walk_counts_and_length(self):
        adj = ring_graph(8)
        rng = np.random.default_rng(0)
        walks = uniform_random_walks(adj, num_walks=3, walk_length=4, rng=rng)
        assert len(walks) == 24
        assert all(len(w) == 4 for w in walks)

    def test_sink_node_stops_walk(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        rng = np.random.default_rng(0)
        walks = uniform_random_walks(adj, 1, 10, rng, start_nodes=np.array([0]))
        assert walks[0].tolist() == [0, 1]

    def test_node2vec_walks_follow_edges(self):
        adj = ring_graph()
        rng = np.random.default_rng(0)
        walks = node2vec_walks(adj, 1, 6, rng, p=0.5, q=2.0)
        dense = adj.toarray()
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert dense[a, b] == 1

    def test_node2vec_invalid_pq(self):
        adj = ring_graph()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            node2vec_walks(adj, 1, 5, rng, p=0.0)

    def test_node2vec_high_q_stays_local(self):
        # With q >> 1, return probability dominates -> revisit rate is high.
        adj = ring_graph(20)
        rng = np.random.default_rng(0)
        local = node2vec_walks(adj, 5, 20, rng, p=0.25, q=8.0)
        revisit = np.mean([len(set(w.tolist())) for w in local])
        rng = np.random.default_rng(0)
        explore = node2vec_walks(adj, 5, 20, rng, p=8.0, q=0.25)
        distinct = np.mean([len(set(w.tolist())) for w in explore])
        assert distinct > revisit

    def test_metapath_walks_respect_type_pattern(self):
        hin = movie_hin()
        mp = MetaPath.parse("MAM")
        rng = np.random.default_rng(0)
        walks = metapath_walks(hin, mp, num_walks=2, walk_length=7, rng=rng)
        offsets = hin.global_offsets()

        def type_of(global_id):
            for node_type in hin.node_types:
                start = offsets[node_type]
                if start <= global_id < start + hin.num_nodes(node_type):
                    return node_type
            raise AssertionError("bad id")

        pattern = ["M", "A"]  # cycle for MAM
        for walk in walks:
            for position, node in enumerate(walk):
                assert type_of(node) == pattern[position % 2]

    def test_metapath_walks_start_at_every_source(self):
        hin = movie_hin()
        rng = np.random.default_rng(0)
        walks = metapath_walks(hin, MetaPath.parse("MAM"), 1, 3, rng)
        starts = sorted(w[0] for w in walks)
        offsets = hin.global_offsets()
        assert starts == [offsets["M"] + i for i in range(4)]


class TestSkipGram:
    def test_build_pairs_window(self):
        walks = [np.array([0, 1, 2])]
        centers, contexts = build_pairs(walks, window=1)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_build_pairs_empty(self):
        centers, contexts = build_pairs([np.array([5])], window=2)
        assert centers.size == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SkipGramConfig(dim=0)
        with pytest.raises(ValueError):
            SkipGramConfig(window=0)
        with pytest.raises(ValueError):
            SkipGramConfig(negatives=0)

    def test_training_separates_cliques(self):
        adj = two_cliques(6)
        rng = np.random.default_rng(0)
        walks = uniform_random_walks(adj, num_walks=10, walk_length=10, rng=rng)
        emb = train_skipgram(
            walks, 12, SkipGramConfig(dim=16, epochs=3, seed=0)
        )
        # Cosine similarity within cliques should exceed across cliques.
        norm = emb / np.linalg.norm(emb, axis=1, keepdims=True)
        sims = norm @ norm.T
        within = (sims[:6, :6].sum() - 6) / 30 + (sims[6:, 6:].sum() - 6) / 30
        across = sims[:6, 6:].mean()
        assert within / 2 > across

    def test_unseen_nodes_keep_init(self):
        walks = [np.array([0, 1])]
        emb = train_skipgram(walks, 5, SkipGramConfig(dim=4, epochs=1))
        assert emb.shape == (5, 4)
        assert np.all(np.abs(emb[4]) <= 0.5 / 4 + 1e-12)


class TestEmbeddingMethods:
    def test_deepwalk_shapes(self):
        emb = deepwalk_embeddings(ring_graph(), dim=8, num_walks=2, walk_length=6)
        assert emb.shape == (10, 8)

    def test_node2vec_shapes(self):
        emb = node2vec_embeddings(
            ring_graph(), dim=8, num_walks=2, walk_length=6, p=0.5, q=2.0
        )
        assert emb.shape == (10, 8)

    def test_metapath2vec_per_type_tables(self):
        hin = movie_hin()
        tables = metapath2vec_embeddings(
            hin, [MetaPath.parse("MAM"), MetaPath.parse("MDM")], dim=8,
            num_walks=2, walk_length=6,
        )
        assert set(tables) == {"M", "A", "D", "P"}
        assert tables["M"].shape == (4, 8)
        assert tables["A"].shape == (2, 8)

    def test_metapath2vec_target_only(self):
        hin = movie_hin()
        emb = metapath2vec_target_embeddings(
            hin, MetaPath.parse("MAM"), dim=8, num_walks=2, walk_length=6
        )
        assert emb.shape == (4, 8)

    def test_deterministic(self):
        a = deepwalk_embeddings(ring_graph(), dim=4, num_walks=1, walk_length=5, seed=3)
        b = deepwalk_embeddings(ring_graph(), dim=4, num_walks=1, walk_length=5, seed=3)
        np.testing.assert_allclose(a, b)
