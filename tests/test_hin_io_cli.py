"""Tests for HIN serialization and the run_table1 CLI plumbing."""

import numpy as np
import pytest

from repro.eval.run_table1 import build_methods
from repro.hin.io import load_hin, save_hin
from tests.test_hin_graph import movie_hin


class TestHINSerialization:
    def test_roundtrip_structure(self, tmp_path):
        hin = movie_hin()
        hin.set_features("M", np.arange(16, dtype=float).reshape(4, 4))
        hin.set_labels("M", np.array([0, 1, 2, 0]))
        path = tmp_path / "movie.npz"
        save_hin(hin, path)
        loaded = load_hin(path)

        assert loaded.name == hin.name
        assert loaded.node_types == hin.node_types
        for node_type in hin.node_types:
            assert loaded.num_nodes(node_type) == hin.num_nodes(node_type)
        np.testing.assert_allclose(
            loaded.adjacency("M", "A").toarray(),
            hin.adjacency("M", "A").toarray(),
        )
        np.testing.assert_allclose(loaded.features("M"), hin.features("M"))
        np.testing.assert_array_equal(loaded.labels("M"), hin.labels("M"))

    def test_reverse_relations_regenerated(self, tmp_path):
        hin = movie_hin()
        path = tmp_path / "movie.npz"
        save_hin(hin, path)
        loaded = load_hin(path)
        assert loaded.has_adjacency("A", "M")

    def test_roundtrip_metapath_algebra_identical(self, tmp_path):
        from repro.hin import MetaPath
        from repro.hin.pathsim import pathsim_matrix

        hin = movie_hin()
        path = tmp_path / "movie.npz"
        save_hin(hin, path)
        loaded = load_hin(path)
        original = pathsim_matrix(hin, MetaPath.parse("MAM")).toarray()
        roundtrip = pathsim_matrix(loaded, MetaPath.parse("MAM")).toarray()
        np.testing.assert_allclose(original, roundtrip)

    def test_dataset_generator_roundtrip(self, tmp_path):
        from repro.data import DBLPConfig, load_dataset

        dataset = load_dataset(
            "dblp",
            config=DBLPConfig(num_authors=60, num_papers=200, num_conferences=8),
        )
        path = tmp_path / "dblp.npz"
        save_hin(dataset.hin, path)
        loaded = load_hin(path)
        np.testing.assert_array_equal(loaded.labels("A"), dataset.labels)
        assert loaded.total_edges == dataset.hin.total_edges


class TestRunTable1CLI:
    def test_build_methods_subset(self):
        methods = build_methods(["GCN", "ConCH"], "dblp", epochs=10)
        assert set(methods) == {"GCN", "ConCH"}

    def test_build_methods_all(self):
        methods = build_methods(["all"], "yelp", epochs=10)
        assert "MAGNN" in methods and "ConCH" in methods
        assert len(methods) == 14

    def test_build_methods_unknown(self):
        with pytest.raises(SystemExit):
            build_methods(["Oracle9000"], "dblp", epochs=10)
