"""Legacy setup shim (this environment's pip lacks the wheel package)."""

from setuptools import setup

setup()
